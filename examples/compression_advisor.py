#!/usr/bin/env python
"""The compression advisor across a whole table of differently-shaped columns.

Generates the TPC-H-flavoured shipped-orders workload and, for every lineitem
column, prints the advisor's ranked scheme comparison (measured bits per
value and decompression cost on a sample), then stores the table with the
winning scheme per chunk and reports the end-to-end compression achieved.

This is the "why the richer scheme space matters" demo: different columns
win with different schemes, and several win with *composites* that only
exist because schemes decompose into re-usable constituents.

Run it with::

    python examples/compression_advisor.py
"""

from repro.planner import advise, choose_scheme
from repro.storage import Table
from repro.workloads import generate_orders_workload


def main() -> None:
    workload = generate_orders_workload(num_orders=50_000, num_days=1_500, seed=11)
    print(f"lineitem: {workload.num_lineitems} rows, "
          f"{len(workload.lineitem)} columns\n")

    for name, column in workload.lineitem.items():
        report = advise(column, seed=0)
        print(report.summary())
        best = report.best
        print(f"  → chosen: {best.scheme.describe()} "
              f"({best.bits_per_value:.2f} bits/value)\n")

    table = Table.from_columns(
        workload.lineitem,
        schemes={name: choose_scheme for name in workload.lineitem},
        chunk_size=65_536,
    )
    print("resulting storage layout:")
    print(table.summary())
    print(f"\nwhole-table compression ratio: {table.compression_ratio():.2f}x "
          f"({table.uncompressed_size_bytes() / 1e6:.1f} MB → "
          f"{table.compressed_size_bytes() / 1e6:.1f} MB)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Querying compressed data: pushdown, partial decompression, and why it matters.

The paper's "lessons learned" argue that decompression is made of the same
columnar operators as query plans, so a query need not decompress at all.
This example builds a shipped-orders table (TPC-H-flavoured), stores every
column with an advisor-chosen scheme, and runs the same analytical query
three ways:

* with compressed-form pushdown and zone maps (the default engine behaviour),
* with both disabled (decompress-then-filter),
* and, for the date predicate alone, entirely in the run domain.

All three return identical answers; the printed scan statistics show how
much work each avoided.

Run it with::

    python examples/query_on_compressed.py
"""

import time

from repro.engine import Between, Query, RangeBounds
from repro.engine.pushdown import sum_in_range_on_runs
from repro.planner import choose_scheme, plan_for_intent
from repro.schemes import RunLengthEncoding
from repro.storage import Table
from repro.workloads import generate_orders_workload


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:45s} {elapsed * 1e3:8.2f} ms")
    return result


def main() -> None:
    workload = generate_orders_workload(num_orders=100_000, num_days=2_000, seed=1)
    print(f"lineitem table: {workload.num_lineitems} rows")

    table = Table.from_columns(
        workload.lineitem,
        schemes={name: choose_scheme for name in workload.lineitem},
        chunk_size=65_536,
    )
    print("\nstorage summary (schemes chosen per chunk by the advisor):")
    print(table.summary())

    lo = workload.date_range.start + 400
    hi = workload.date_range.start + 460
    print(f"\nquery: SUM(price), COUNT(*) WHERE {lo} <= ship_date <= {hi}")

    def with_pushdown():
        return (Query(table)
                .filter(Between("ship_date", lo, hi))
                .aggregate("price", "sum").aggregate("*", "count")
                .run())

    def without_pushdown():
        return (Query(table).without_pushdown().without_zone_maps()
                .filter(Between("ship_date", lo, hi))
                .aggregate("price", "sum").aggregate("*", "count")
                .run())

    fast = timed("engine, pushdown + zone maps", with_pushdown)
    slow = timed("engine, decompress-then-filter", without_pushdown)
    assert fast.scalars == slow.scalars
    print(f"  answers agree: {fast.scalars}")

    stats = fast.scan_stats
    print("\nscan statistics (pushdown run):")
    print(f"  chunks: {stats.chunks_total} total, {stats.chunks_skipped} skipped via "
          f"zone maps, {stats.chunks_pushed_down} answered on the compressed form, "
          f"{stats.chunks_decompressed} decompressed")
    print(f"  rows selected: {stats.rows_selected} of {stats.rows_scanned}")

    # --- the date predicate alone, entirely in the run domain ---------------
    print("\nthe same date predicate, aggregated without leaving the run domain:")
    dates = table.column("ship_date").materialize()
    scheme = RunLengthEncoding()
    form = scheme.compress(dates)
    decision = plan_for_intent(scheme, form, "range_aggregate")
    print(f"  planner: strategy={decision.strategy!r} — {decision.reason}")
    total, push_stats = sum_in_range_on_runs(form, RangeBounds(lo, hi))
    print(f"  SUM(ship_date) over qualifying rows = {total} "
          f"(computed from {push_stats.runs_total} runs, "
          f"{push_stats.rows_decoded} row-grain values decoded)")


if __name__ == "__main__":
    main()

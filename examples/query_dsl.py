#!/usr/bin/env python
"""The lazy query DSL: expressions, logical plans, explain(), composability.

This example builds the shipped-orders workload, then walks through the
`repro.api` surface:

* an expression-DSL filter with `|` and `~` (shapes the old AND-only
  `Query.filter` could not express), lowered onto the chunk-parallel scan
  with zone maps and compressed-form pushdown;
* a derived column (`revenue = price * quantity`) evaluated per chunk
  *inside* the scan, against its shared decompressed buffers;
* `explain()` — the optimized plan with per-conjunct pushdown class and
  zone-map selectivity estimates, showing the optimizer reordering a
  badly-written 3-conjunct filter;
* group-by aggregation, descending top-k, and querying a collected result
  again (results round-trip into compressed tables).

Run it with::

    python examples/query_dsl.py
"""

import time

from repro.api import Dataset, col, count, dataset
from repro.planner import choose_scheme
from repro.storage import Table
from repro.workloads import generate_orders_workload


def main() -> None:
    workload = generate_orders_workload(num_orders=60_000, num_days=1_000, seed=3)
    table = Table.from_columns(
        workload.lineitem,
        schemes={name: choose_scheme for name in workload.lineitem},
        chunk_size=16_384,
    )
    lo = workload.date_range.start
    print(f"lineitem: {table.row_count} rows, "
          f"ratio {table.compression_ratio():.2f}x\n")

    # ------------------------------------------------------------------ #
    # 1. Laziness: building records a plan; nothing runs until collect().
    # ------------------------------------------------------------------ #
    revenue_by_discount = (
        dataset(table, "lineitem")
        .filter(col("ship_date").between(lo + 100, lo + 400)
                & ((col("quantity") > 30) | ~col("discount").isin([0, 1, 2])))
        .with_column("revenue", col("price") * col("quantity"))
        .group_by("discount")
        .agg(col("revenue").sum().alias("total_revenue"), count())
        .sort("total_revenue", descending=True)
        .limit(5)
    )
    print("optimized plan (explain):")
    print(revenue_by_discount.explain())

    start = time.perf_counter()
    result = revenue_by_discount.collect()
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"\ntop discounts by revenue ({elapsed:.2f} ms):")
    for discount, total, rows in zip(result.column("discount"),
                                     result.column("total_revenue"),
                                     result.column("count(*)")):
        print(f"  discount {discount}: revenue {total:>14}  ({rows} lineitems)")

    # ------------------------------------------------------------------ #
    # 2. The optimizer reorders badly-written conjuncts by selectivity.
    # ------------------------------------------------------------------ #
    badly_ordered = (
        dataset(table, "lineitem")
        .filter(col("quantity") >= 2)                    # barely selective
        .filter(col("price") > 0)                        # not selective at all
        .filter(col("ship_date").between(lo, lo + 20))   # the one that matters
        .agg(count())
    )
    print("\na 3-conjunct filter written worst-first — the optimizer fixes it:")
    print(badly_ordered.explain())
    fast = badly_ordered.collect()
    slow = badly_ordered.without_optimizer_reordering().collect()
    assert fast.scalars == slow.scalars
    print(f"  both orders agree: {fast.scalars}")
    stats = fast.scan_stats
    print(f"  optimized scan: {stats.chunks_skipped} chunks skipped via zone "
          f"maps, {stats.chunks_short_circuited} conjunct evaluations "
          f"short-circuited, {stats.chunks_decompressed} decompressions")

    # ------------------------------------------------------------------ #
    # 3. Compressed execution: explain() labels every conjunct and
    #    aggregate with the domain it runs in.  A range over a pushdown-
    #    capable column reads [native, compressed ...] — evaluated on the
    #    compressed form (run values, dictionary codes, packed words) —
    #    and eligible aggregates skip materialisation entirely.  Compare
    #    with the decompress-then-compute baseline.
    # ------------------------------------------------------------------ #
    compressed_query = (
        dataset(table, "lineitem")
        .filter(col("ship_date").between(lo + 200, lo + 260))
        .agg(col("price").sum().alias("revenue"), count())
    )
    print("\ncompressed-domain execution (note the [compressed] labels):")
    print(compressed_query.explain())
    fast_result = compressed_query.collect()
    baseline_result = (compressed_query
                       .without_pushdown()
                       .without_compressed_execution()
                       .collect())
    assert fast_result.scalars == baseline_result.scalars  # bit-identical
    stats = fast_result.scan_stats
    print(f"  {stats.rows_computed_compressed} rows computed on compressed "
          f"forms, {stats.bytes_decompressed_saved} B of decompression "
          f"output never materialised")
    print("\nthe decompress-then-compute baseline of the same query:")
    print(compressed_query.without_compressed_execution()
          .without_pushdown().explain())

    # ------------------------------------------------------------------ #
    # 4. Results are composable: collect, wrap, query again.
    # ------------------------------------------------------------------ #
    first_pass = (dataset(table, "lineitem")
                  .filter(col("ship_date") < lo + 500)
                  .select("discount", "price", "quantity")
                  .collect())
    requeried = (Dataset.from_result(first_pass, "first_pass")
                 .filter(col("discount") >= 5)
                 .agg((col("price") * col("quantity")).sum().alias("revenue"))
                 .collect())
    print(f"\nre-queried a collected result: {requeried.scalars}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Decomposing and re-composing schemes — the paper's §II, executable.

Four short acts:

1.  **RLE → RPE by plan surgery.**  Take Algorithm 1, drop its first step,
    and obtain a working decompression plan for Run Position Encoding.
2.  **The §II-A identity.**  Show, on data, that RLE's lengths column *is*
    the DELTA compression of RPE's positions column.
3.  **FOR → STEPFUNCTION + NS.**  Split a FOR form into its coarse model and
    NS-packed residuals, evaluate the model alone (Algorithm 2 truncated),
    and re-assemble the original losslessly.
4.  **Re-composition.**  Swap the residual encoder: fixed-width NS vs
    variable-width vs patches, on data whose residual distribution favours
    each — the paper's metric-driven choice, made by the residual profiler.

Run it with::

    python examples/decompose_and_recompose.py
"""

import numpy as np

from repro import Column
from repro.model import profile_residuals, recommend_residual_encoding
from repro.schemes import (
    Delta,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
    RunPositionEncoding,
    StepFunctionModel,
    VariableWidth,
    build_rle_decompression_plan,
)
from repro.schemes.decomposition import (
    FOR_VIA_STEPFUNCTION,
    RLE_VIA_RPE,
    derive_stepfunction_plan_from_for,
    for_form_to_model_and_residuals,
    reassemble_for_from_model_and_residuals,
)
from repro.workloads import (
    mixed_magnitude_residuals,
    runs_column,
    smooth_measure,
    step_with_outliers,
)


def act_one_plan_surgery() -> None:
    print("=" * 72)
    print("Act 1 — RPE falls out of RLE by dropping one plan step")
    print("=" * 72)
    rle_plan = build_rle_decompression_plan()
    rpe_plan = rle_plan.drop_prefix(["run_positions"],
                                    description="RPE decompression (derived)")
    print("Algorithm 1:")
    print(rle_plan.describe())
    print("\nAfter drop_prefix(['run_positions']):")
    print(rpe_plan.describe())

    column = runs_column(2_000, average_run_length=15.0, seed=1)
    rpe_form = RunPositionEncoding(narrow_positions=False).compress(column)
    out = rpe_plan.evaluate({"run_positions": rpe_form.constituent("run_positions"),
                             "values": rpe_form.constituent("values")})
    assert np.array_equal(out.values.astype(np.int64), column.values)
    print("\nthe derived plan decompresses RPE data correctly: OK\n")


def act_two_rle_identity() -> None:
    print("=" * 72)
    print("Act 2 — RLE ≡ (ID values, DELTA run_positions) ∘ RPE")
    print("=" * 72)
    column = runs_column(5_000, average_run_length=25.0, seed=2)
    rle = RunLengthEncoding(narrow_lengths=False).compress(column)
    rpe = RunPositionEncoding(narrow_positions=False).compress(column)
    delta_of_positions = Delta(narrow=False).compress(rpe.constituent("run_positions"))
    print("first 8 RLE lengths:          ",
          rle.constituent("lengths").to_pylist()[:8])
    print("first 8 RPE positions:        ",
          rpe.constituent("run_positions").to_pylist()[:8])
    print("first 8 DELTA(positions):     ",
          delta_of_positions.constituent("deltas").to_pylist()[:8])
    assert rle.constituent("lengths").equals(delta_of_positions.constituent("deltas"))
    verdict = RLE_VIA_RPE.verify(column)
    print(f"\nidentity verified mechanically: {verdict.holds} ({verdict.details})\n")


def act_three_for_decomposition() -> None:
    print("=" * 72)
    print("Act 3 — FOR ≡ STEPFUNCTION + NS")
    print("=" * 72)
    column = smooth_measure(50_000, noise=48, seed=3)
    for_scheme = FrameOfReference(segment_length=128)
    form = for_scheme.compress(column)
    parts = for_form_to_model_and_residuals(form)
    model_bytes = parts["model"].compressed_size_bytes()
    residual_bytes = parts["residuals"].compressed_size_bytes()
    print(f"FOR form: {form.compressed_size_bytes()} bytes "
          f"= model {model_bytes} bytes + residuals {residual_bytes} bytes")

    truncated = derive_stepfunction_plan_from_for(128)
    approx = truncated.evaluate({
        "refs": form.constituent("refs"),
        "offsets": FrameOfReference(segment_length=128, offsets_layout="aligned")
        .compress(column).constituent("offsets"),
    })
    error = np.abs(approx.values.astype(np.int64) - column.values).max()
    print(f"Algorithm 2 truncated before its addition → step-function approximation, "
          f"max error {error} (< 2^{form.parameter('offsets_width')})")

    rebuilt = reassemble_for_from_model_and_residuals(parts["model"], parts["residuals"])
    assert for_scheme.decompress(rebuilt).equals(column)
    print("re-assembled FOR decompresses losslessly: OK")
    print(f"identity verified mechanically: {FOR_VIA_STEPFUNCTION.verify(column).holds}\n")


def act_four_recompose_residuals() -> None:
    print("=" * 72)
    print("Act 4 — re-composing: choosing the residual encoder from the metric")
    print("=" * 72)
    datasets = {
        "uniform small noise": smooth_measure(100_000, noise=40, seed=4),
        "few huge outliers": step_with_outliers(100_000, noise=0,
                                                outlier_fraction=0.005, seed=5),
        "skewed magnitudes": Column(
            smooth_measure(100_000, noise=6, seed=6).values
            + np.abs(mixed_magnitude_residuals(100_000, small_bits=1, large_bits=18,
                                               large_fraction=0.15, seed=7).values)),
    }
    for label, column in datasets.items():
        model = StepFunctionModel(segment_length=128)
        model_form = model.compress(column)
        residuals = model.residuals(model_form, column)
        profile = profile_residuals(residuals)
        recommendation = recommend_residual_encoding(profile)
        ns_bits = NullSuppression().compress(residuals).bits_per_value()
        vw_bits = VariableWidth().compress(residuals).bits_per_value()
        print(f"{label:22s} L0 fraction {profile.l0_fraction:6.3f}, "
              f"L∞ {profile.max_magnitude:>8d} | "
              f"fixed-NS {ns_bits:6.2f} b/v, var-width {vw_bits:6.2f} b/v "
              f"→ recommended: {recommendation}")


def main() -> None:
    act_one_plan_surgery()
    act_two_rle_identity()
    act_three_for_decomposition()
    act_four_recompose_residuals()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's §I example: a shipped-orders date column and scheme composition.

"A table holds shipped order details, with a date column.  Data accrues over
time, so the dates form a monotone-increasing sequence with long runs for the
orders shipped every day.  Applying an RLE scheme to the dates, then applying
DELTA to the run values, achieves a much stronger compression ratio than any
single scheme individually."

This example generates that column synthetically, lets the compression
advisor rank the whole scheme space (stand-alone schemes and the composites
the decomposition view suggests), and prints the comparison the paper argues
from.  It then shows the §II-A identity on the same data: RLE's lengths are
exactly the DELTA compression of RPE's run positions.

Run it with::

    python examples/shipping_dates.py [num_rows]
"""

import sys

from repro.bench import compare_schemes, format_table
from repro.planner import advise
from repro.schemes import (
    Cascade,
    Delta,
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
    RunPositionEncoding,
)
from repro.schemes.decomposition import RLE_VIA_RPE
from repro.workloads import shipping_dates


def main(num_rows: int = 1_000_000) -> None:
    dates = shipping_dates(num_rows, orders_per_day_mean=2_000, seed=7)
    print(f"shipping-dates column: {num_rows} rows, "
          f"{dates.nbytes / 1e6:.1f} MB uncompressed, "
          f"{int(dates.max()) - int(dates.min()) + 1} distinct days\n")

    # --- every scheme, one table -------------------------------------------
    schemes = [
        NullSuppression(),
        Delta(),
        DictionaryEncoding(),
        FrameOfReference(segment_length=128),
        RunLengthEncoding(),
        RunPositionEncoding(),
        Cascade(RunLengthEncoding(), {"values": Delta()}),
        Cascade(RunLengthEncoding(), {"values": Delta(), "lengths": NullSuppression()}),
    ]
    rows = compare_schemes(schemes, dates, repeats=1)
    print(format_table(
        rows,
        columns=["scheme", "ratio", "bits_per_value", "plan_operators",
                 "decompress_plan_s", "decompress_fused_s"],
        title="Compression schemes on the shipping-dates column (§I example)"))

    # --- the advisor reaches the paper's conclusion on its own --------------
    report = advise(dates, seed=0)
    print("\n" + report.summary())
    print(f"\nadvisor's choice: {report.best.scheme.describe()}")

    # --- the §II-A identity on this very column -----------------------------
    verdict = RLE_VIA_RPE.verify(dates)
    print(f"\nidentity check — {RLE_VIA_RPE.name}: "
          f"{'holds' if verdict.holds else 'FAILS'}")
    for check, passed in verdict.details.items():
        print(f"  {check}: {'ok' if passed else 'FAIL'}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000)

#!/usr/bin/env python
"""Multiprocess scans over a packed table: backends, fallbacks, hot caches.

This walks the parallel-execution surface of :mod:`repro.engine.parallel`:

1.  pack a table to one file — the process backend's precondition, since
    worker processes share the data by **mmap-ing the same file**, not by
    pickling columns;
2.  run the same filter on the ``serial``, ``thread`` and ``process``
    backends and check the answers are bit-identical;
3.  read the backend decision out of ``explain()`` and
    ``ScanResult.backend`` — including the serial *fallback with a reason*
    when the table is not packed;
4.  run a grouped aggregate whose per-range partial states are merged by
    the coordinator (exact integer sums, min/max lattice joins);
5.  give the workers a hot-chunk decompression LRU and watch the
    ``hot_cache_*`` counters across a cold and a warm run.

Run it with::

    python examples/parallel_scan.py
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.api import col, dataset
from repro.engine import shutdown_pools
from repro.engine.predicates import Between
from repro.engine.scan import scan_table
from repro.io.reader import open_packed_table
from repro.io.writer import write_packed_table
from repro.schemes import (
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
)
from repro.storage import Table


def build_orders(num_rows: int = 200_000) -> Table:
    rng = np.random.default_rng(42)
    return Table.from_pydict(
        {
            "ship_date": np.sort(rng.integers(0, 730, num_rows)).astype(np.int64),
            "price": (np.cumsum(rng.integers(-3, 4, num_rows)) + 20_000).astype(np.int64),
            "quantity": rng.integers(1, 50, num_rows).astype(np.int64),
            "region": rng.integers(0, 8, num_rows).astype(np.int64),
        },
        schemes={
            "ship_date": RunLengthEncoding(),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
            "region": DictionaryEncoding(),
        },
        chunk_size=16_384,
    )


def main() -> None:
    memory_table = build_orders()
    predicates = [Between("ship_date", 100, 400), Between("quantity", 5, 40)]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "orders.rpk"
        write_packed_table(memory_table, path)
        table = open_packed_table(path).table

        # -- one scan, three backends ---------------------------------- #
        print(f"cpu_count: {os.cpu_count()}")
        serial = scan_table(table, predicates)
        for backend in ("thread", "process"):
            result = scan_table(table, predicates, backend=backend,
                                parallelism=4)
            identical = np.array_equal(serial.selection.positions.values,
                                       result.selection.positions.values)
            print(f"{result.backend:>12}: {result.selection.positions.values.size}"
                  f" rows, bit-identical to serial: {identical}")

        # -- the decision is visible, including fallbacks --------------- #
        ds = (dataset(table).filter(col("ship_date").between(100, 400))
              .with_backend("process", workers=4))
        print("\nexplain() on the packed table:")
        print(ds.explain())
        fallback = scan_table(memory_table, predicates, backend="process",
                              parallelism=4)
        print(f"in-memory table falls back: backend={fallback.backend!r}")

        # -- grouped aggregate via partial-state merge ------------------ #
        grouped = (dataset(table).filter(col("quantity").between(5, 40))
                   .group_by("region")
                   .agg(col("price").sum().alias("revenue"),
                        col("price").count().alias("orders")))
        serial_frame = grouped.collect()
        process_frame = grouped.with_backend("process", workers=4).collect()
        same = all(np.array_equal(serial_frame.columns[name].values,
                                  process_frame.columns[name].values)
                   for name in serial_frame.columns)
        print(f"\ngrouped aggregate merged from worker partials, "
              f"bit-identical: {same}")

        # -- per-worker hot-chunk cache --------------------------------- #
        kwargs = dict(backend="process", parallelism=2,
                      cache_bytes=64 << 20, use_pushdown=False,
                      use_zone_maps=False, use_compressed_exec=False)
        cold = scan_table(table, predicates, **kwargs)
        warm = scan_table(table, predicates, **kwargs)
        print(f"\nhot-chunk cache, cold run: hits={cold.stats.hot_cache_hits}"
              f" misses={cold.stats.hot_cache_misses}")
        print(f"hot-chunk cache, warm run: hits={warm.stats.hot_cache_hits}"
              f" misses={warm.stats.hot_cache_misses}")
        assert warm.stats.hot_cache_hits > 0

    shutdown_pools()


if __name__ == "__main__":
    main()

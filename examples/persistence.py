#!/usr/bin/env python
"""Durable tables: save a table packed, catalog it, query it cold and lazily.

This walks the full persistence cycle of :mod:`repro.io`:

1.  build a compressed table (per-column schemes, chunked);
2.  save it as **one packed file** — constituent segments plus a JSON
    footer carrying schemes, chunk boundaries and zone-map statistics;
3.  register it in a directory-level :class:`~repro.io.Catalog`;
4.  reopen it **cold** and run a selective query: chunk pruning happens on
    the persisted zone maps *before any segment I/O*, so the scan maps only
    a sliver of the file — the I/O account printed at the end proves it.

Run it with::

    python examples/persistence.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import col, dataset
from repro.io import Catalog, open_table
from repro.schemes import Cascade, Delta, FrameOfReference, RunLengthEncoding
from repro.storage import Table


def build_orders(num_rows: int = 200_000) -> Table:
    """A shipped-orders table: clustered dates, smooth prices, random sizes."""
    rng = np.random.default_rng(42)
    return Table.from_pydict(
        {
            "ship_date": np.sort(rng.integers(0, 730, num_rows)).astype(np.int64),
            "price": (np.cumsum(rng.integers(-3, 4, num_rows)) + 20_000).astype(np.int64),
            "quantity": rng.integers(1, 50, num_rows).astype(np.int64),
        },
        schemes={
            "ship_date": Cascade(RunLengthEncoding(), {"values": Delta()}),
            "price": FrameOfReference(segment_length=256),
        },
        chunk_size=16_384,
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-persistence-"))

    # --- save: one packed file per table, named by a catalog ---------------
    table = build_orders()
    catalog = Catalog(workdir / "warehouse")
    path = catalog.save("orders", table)
    print(f"saved {table.row_count} rows into {path.name} "
          f"({path.stat().st_size} bytes, one file)")
    print(f"catalog lists (no I/O): {catalog.names()} "
          f"-> {catalog.info('orders')['columns']}")

    # --- reopen cold: footer only, zero segment bytes ----------------------
    packed = open_table(catalog.path_of("orders"))
    print(f"\ncold open: bytes mapped so far = {packed.bytes_mapped}")

    # --- a selective query prunes chunks before any I/O ---------------------
    result = (
        dataset(packed.table)
        .filter(col("ship_date").between(100, 130))
        .agg((col("price") * col("quantity")).sum().alias("revenue"))
        .collect()
    )
    print(f"Q: revenue of days 100..130  ->  {result.scalars['revenue']}")
    stats = result.scan_stats
    print(f"   chunks: {stats.chunks_skipped} zone-map-skipped of "
          f"{stats.chunks_total}; {stats.chunks_decompressed} decompressed")
    print(f"   I/O: mapped {packed.bytes_mapped} of {packed.file_size} bytes "
          f"({100.0 * packed.bytes_mapped / packed.file_size:.1f}% of the file)")
    assert packed.bytes_mapped < packed.file_size

    # --- the answer matches the in-memory table ----------------------------
    reference = (
        dataset(table)
        .filter(col("ship_date").between(100, 130))
        .agg((col("price") * col("quantity")).sum().alias("revenue"))
        .collect()
    )
    assert result.scalars == reference.scalars
    print("\ncold packed query agrees with the in-memory table: OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: compress a column, look inside, decompress it three ways.

This walks through the library's core objects on a small, printable column:

1.  a :class:`repro.Column` of values with visible runs;
2.  its RLE compressed form — just two plain columns, the paper's
    "pure columns" view;
3.  decompression as a *plan of columnar operators* (the paper's
    Algorithm 1), evaluated step by step;
4.  the same result via the fused kernel and via a composite scheme.

Run it with::

    python examples/quickstart.py
"""

from repro import Column
from repro.schemes import Cascade, Delta, NullSuppression, RunLengthEncoding


def main() -> None:
    # A column with obvious runs (think: a status or date column).
    column = Column([7, 7, 7, 7, 9, 9, 5, 5, 5, 5, 5, 12], name="status")
    print("original column:   ", column.to_pylist())

    # --- compress ---------------------------------------------------------
    rle = RunLengthEncoding()
    form = rle.compress(column)
    print("\ncompressed form (pure columns, no headers):")
    for name, constituent in form.columns.items():
        print(f"  {name:10s}", constituent.to_pylist())
    print("  summary:   ", form.summary())

    # --- decompression is a plan of columnar operators ---------------------
    plan = rle.decompression_plan(form)
    print("\ndecompression plan (the paper's Algorithm 1):")
    print(plan.describe())

    result = plan.evaluate_detailed(rle.plan_inputs(form))
    print("\nintermediate bindings produced while evaluating the plan:")
    for name in ("run_positions", "positions"):
        print(f"  {name:15s}", result.bindings[name].to_pylist())
    print("  output         ", result.output.to_pylist())
    print(f"  cost: {result.cost.operator_invocations} operator invocations, "
          f"{result.cost.elements_out} elements materialised")

    # --- the fused kernel gives the same answer ----------------------------
    assert rle.decompress_fused(form).equals(column)
    assert rle.decompress(form).equals(column)
    print("\nplan-based and fused decompression agree with the original: OK")

    # --- composition: re-compress the constituents -------------------------
    composite = Cascade(RunLengthEncoding(),
                        {"values": Delta(), "lengths": NullSuppression()})
    composite_form = composite.compress(column)
    print(f"\ncomposite scheme {composite.describe()}:")
    print(f"  RLE alone:  {form.compressed_size_bytes()} bytes "
          f"({form.compression_ratio():.2f}x)")
    print(f"  composite:  {composite_form.compressed_size_bytes()} bytes "
          f"({composite_form.compression_ratio():.2f}x)")
    assert composite.decompress(composite_form).equals(column)
    print("  composite round-trips losslessly: OK")


if __name__ == "__main__":
    main()

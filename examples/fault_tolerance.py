#!/usr/bin/env python
"""Fault tolerance: checksums, self-healing workers, quarantine, degradation.

This walks the resilience surface of :mod:`repro.engine.resilience` with
**deterministic, seeded fault injection** — every fault below is injected
on purpose and heals (or fails) the same way on every run:

1.  pack a table — v3 files carry a CRC32 digest per segment, so storage
    corruption is *detected* instead of silently decoding garbage;
2.  kill a worker mid-range and watch the pool respawn it, re-queue the
    lost work and still return results bit-identical to a serial scan;
3.  make a worker die on *every* attempt (a sticky fault) under
    ``on_fault="degrade"`` and read the process → thread fallback reason
    out of ``ScanResult.backend``;
4.  flip a byte on disk: the digest check raises a typed
    :class:`~repro.errors.CorruptionError` naming the exact segment, or —
    under ``on_corruption="quarantine"`` — skips just that chunk with the
    skip accounted in ``ScanStats.chunks_quarantined``;
5.  verify the damaged file offline with ``python -m repro.io.verify``.

Run it with::

    python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import col, dataset
from repro.engine import shutdown_pools
from repro.engine.predicates import Between
from repro.engine.resilience import FaultPlan, FaultPolicy
from repro.engine.scan import scan_table
from repro.errors import CorruptionError
from repro.io.reader import open_packed_table
from repro.io.verify import verify_packed_file
from repro.io.writer import write_packed_table
from repro.schemes import NullSuppression, RunLengthEncoding
from repro.storage import Table

NUM_ROWS = 50_000
CHUNK_SIZE = 2_048


def build_table() -> Table:
    rng = np.random.default_rng(42)
    return Table.from_pydict(
        {
            "ship_date": np.sort(rng.integers(0, 730, NUM_ROWS)).astype(np.int64),
            "quantity": rng.integers(1, 50, NUM_ROWS).astype(np.int64),
        },
        schemes={"ship_date": RunLengthEncoding(),
                 "quantity": NullSuppression()},
        chunk_size=CHUNK_SIZE,
    )


def corrupt_one_chunk(path: Path, chunk_index: int) -> None:
    """Flip one byte inside a segment of the given chunk, on disk."""
    packed = open_packed_table(path)
    chunk = packed.footer["columns"][0]["chunks"][chunk_index]
    segment = next(iter(chunk["form"]["segments"].values()))
    packed.close()
    position = int(segment["offset"]) + int(segment["nbytes"]) // 2
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))


def main() -> None:
    predicates = [Between("ship_date", 100, 400)]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "orders.rpk"
        write_packed_table(build_table(), path)
        table = open_packed_table(path).table
        serial = scan_table(table, predicates, materialize=["quantity"])
        print(f"fault-free serial scan: "
              f"{serial.selection.positions.values.size} rows")

        # -- a worker is killed mid-scan; the pool heals ---------------- #
        healed = scan_table(
            table, predicates, materialize=["quantity"],
            backend="process", parallelism=2,
            fault_plan=FaultPlan(seed=7, kill_ranges=(2,)))
        identical = np.array_equal(serial.selection.positions.values,
                                   healed.selection.positions.values)
        print(f"\nworker killed on range 2 -> backend={healed.backend!r}, "
              f"respawned={healed.stats.workers_respawned}, "
              f"retried={healed.stats.ranges_retried}, "
              f"bit-identical: {identical}")
        assert identical and healed.stats.workers_respawned >= 1

        # -- a sticky fault exhausts retries; the scan degrades --------- #
        degraded = scan_table(
            table, predicates, materialize=["quantity"],
            backend="process", parallelism=2,
            fault_plan=FaultPlan(seed=7, kill_ranges=(2,), sticky=True),
            fault_policy=FaultPolicy(on_fault="degrade", retries=1,
                                     backoff_s=0.0))
        print(f"\nsticky kill under on_fault='degrade':\n"
              f"  backend={degraded.backend!r}")
        assert "degraded" in degraded.backend
        assert np.array_equal(serial.selection.positions.values,
                              degraded.selection.positions.values)

        # -- real on-disk corruption: detected, located, quarantinable -- #
        bad_chunk = 3
        corrupt_one_chunk(path, bad_chunk)
        fresh = open_packed_table(path).table
        try:
            scan_table(fresh, predicates, materialize=["quantity"],
                       use_zone_maps=False)
        except CorruptionError as error:
            print(f"\nflipped one byte on disk -> {error}")

        quarantined = scan_table(
            open_packed_table(path).table, predicates,
            materialize=["quantity"], use_zone_maps=False,
            fault_policy=FaultPolicy(on_corruption="quarantine"))
        print(f"quarantined instead: "
              f"{quarantined.selection.positions.values.size} rows, "
              f"chunks_quarantined={quarantined.stats.chunks_quarantined}")
        assert quarantined.stats.chunks_quarantined == 1

        # -- the same policy, through the lazy API ---------------------- #
        plan = (dataset(open_packed_table(path).table)
                .filter(col("ship_date").between(100, 400))
                .with_fault_policy(on_corruption="quarantine", retries=3))
        print(f"\nexplain() records the policy:\n{plan.explain()}")

        # -- offline verification locates the damage -------------------- #
        report = verify_packed_file(path)
        print(f"\npython -m repro.io.verify:\n  {report.summary()}")
        for problem in report.problems:
            print(f"  {problem}")
        assert not report.ok and len(report.problems) == 1

    shutdown_pools()


if __name__ == "__main__":
    main()

"""Setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` / ``python setup.py develop`` work in
offline environments that lack the ``wheel`` package required for PEP 660
editable installs.
"""

from setuptools import setup

setup()

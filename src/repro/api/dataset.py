"""The lazy :class:`Dataset` facade: build a logical plan, collect when ready.

::

    from repro.api import col, dataset

    top5 = (dataset(table, "lineitem")
            .filter((col("ship_date").between(9100, 9200))
                    & ~col("discount").isin([0, 1]))
            .with_column("revenue", col("price") * col("quantity"))
            .group_by("discount")
            .agg(col("revenue").sum().alias("total"), count())
            .sort("total", descending=True)
            .limit(5)
            .collect())

Every method returns a **new** ``Dataset`` wrapping an immutable logical
plan — nothing executes until :meth:`Dataset.collect`.  Validation happens
at construction (unknown columns, aggregates outside ``agg()``, ``group_by``
without aggregates), so mistakes surface where they are written.
:meth:`Dataset.explain` shows the optimized plan: per-scan conjunct order
with pushdown classification and zone-map selectivity estimates, derived
expressions evaluated inside the scan, and the pruned materialisation list.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from ..storage.table import Table
from . import logical
from .expr import Expr, col
from .lower import LoweringOptions, run_plan
from .optimize import optimize

__all__ = ["Dataset", "GroupedDataset", "dataset"]

IntoExpr = Union[str, Expr]


def _as_expr(value: IntoExpr, what: str) -> Expr:
    if isinstance(value, str):
        return col(value)
    if isinstance(value, Expr):
        return value
    raise QueryError(f"{what} must be a column name or an expression, "
                     f"got {value!r}")


class Dataset:
    """A lazy, immutable view over a stored table (or a composed plan)."""

    def __init__(self, plan: logical.LogicalNode,
                 options: Optional[LoweringOptions] = None):
        self._plan = plan
        self._options = options or LoweringOptions()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_table(table: Table, name: str = "table") -> "Dataset":
        """Wrap a stored :class:`~repro.storage.table.Table`."""
        return Dataset(logical.Scan(table, name))

    @staticmethod
    def from_result(result, name: str = "result",
                    schemes: Any = "auto") -> "Dataset":
        """Wrap a collected :class:`~repro.engine.query.QueryResult` so it can
        be queried again (it round-trips through the scheme registry)."""
        return Dataset.from_table(result.to_table(schemes=schemes), name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Tuple[str, ...]:
        """Ordered output column names of the current plan."""
        return self._plan.schema()

    @property
    def logical_plan(self) -> logical.LogicalNode:
        """The unoptimized logical plan (immutable)."""
        return self._plan

    def optimized_plan(self) -> logical.LogicalNode:
        """Run the optimizer and return the optimized plan."""
        return optimize(self._plan, self._options)

    def __repr__(self) -> str:
        return f"Dataset(schema={list(self.schema)})"

    # ------------------------------------------------------------------ #
    # Plan building
    # ------------------------------------------------------------------ #

    def _wrap(self, plan: logical.LogicalNode) -> "Dataset":
        return Dataset(plan, self._options)

    def filter(self, predicate: Expr) -> "Dataset":
        """Keep rows satisfying *predicate* (combine with ``& | ~``)."""
        if not isinstance(predicate, Expr):
            raise QueryError(
                f"filter() takes an expression (e.g. col('x') > 3), "
                f"got {predicate!r}")
        if not predicate.columns():
            # Constant *conjuncts* inside a larger predicate are folded by
            # the optimizer; a whole filter referencing no columns is
            # almost certainly a mistake, so reject it at the API surface.
            raise QueryError(
                f"Filter({predicate!r}): the predicate references no columns "
                "— a constant filter is not supported"
            )
        return self._wrap(logical.Filter(self._plan, predicate))

    def select(self, *exprs: IntoExpr) -> "Dataset":
        """Project to the given columns / expressions, in order."""
        parsed = [_as_expr(e, "select() argument") for e in exprs]
        return self._wrap(logical.Project(self._plan, parsed))

    def with_column(self, name: str, expr: Expr) -> "Dataset":
        """Append a derived column *name* computed by *expr*."""
        return self._wrap(logical.WithColumn(self._plan, name,
                                             _as_expr(expr, "with_column()")))

    def with_columns(self, **named: Expr) -> "Dataset":
        """Append several derived columns (keyword order preserved)."""
        result = self
        for name, expr in named.items():
            result = result.with_column(name, expr)
        return result

    def group_by(self, *keys: IntoExpr) -> "GroupedDataset":
        """Start a grouped aggregation; follow with ``.agg(...)``."""
        if not keys:
            raise QueryError("group_by() needs at least one key; for scalar "
                             "aggregates use .agg(...) directly")
        parsed = [_as_expr(k, "group_by() key") for k in keys]
        return GroupedDataset(self, parsed)

    def agg(self, *aggregates: Expr) -> "Dataset":
        """Scalar aggregation over all qualifying rows."""
        return self._wrap(logical.Aggregate(self._plan, (), aggregates))

    def sort(self, *by: IntoExpr,
             descending: Union[bool, Sequence[bool]] = False) -> "Dataset":
        """Stable sort by one or more keys."""
        keys = [_as_expr(k, "sort() key") for k in by]
        if isinstance(descending, bool):
            flags: List[bool] = [descending] * len(keys)
        else:
            flags = list(descending)
        return self._wrap(logical.Sort(self._plan, keys, flags))

    def limit(self, count: int) -> "Dataset":
        """Keep the first *count* rows (top-k when stacked on ``sort``)."""
        return self._wrap(logical.Limit(self._plan, count))

    def head(self, count: int = 10) -> "Dataset":
        """Alias for :meth:`limit`."""
        return self.limit(count)

    def join(self, other: "Dataset", on: Optional[str] = None,
             left_on: Optional[str] = None, right_on: Optional[str] = None,
             suffix: str = "_right") -> "Dataset":
        """Inner equi-join with another dataset.

        The joined result is itself lazy and composable: filter it, derive
        columns, aggregate, or join again — filters are pushed below the
        join into each side's scan where possible.
        """
        if not isinstance(other, Dataset):
            raise QueryError(f"join() expects a Dataset, got {other!r}")
        if on is not None:
            if left_on is not None or right_on is not None:
                raise QueryError("join(): pass either on= or left_on=/right_on=")
            left_on = right_on = on
        if left_on is None or right_on is None:
            raise QueryError("join(): both left_on= and right_on= are required "
                             "when on= is not given")
        return self._wrap(logical.Join(self._plan, other._plan,
                                       left_on, right_on, suffix))

    # ------------------------------------------------------------------ #
    # Physical knobs
    # ------------------------------------------------------------------ #

    def _replace_options(self, **changes: Any) -> "Dataset":
        return Dataset(self._plan, replace(self._options, **changes))

    def with_parallelism(self, workers: Union[int, str]) -> "Dataset":
        """Fan each scan's chunk ranges out over *workers* workers.

        ``"auto"`` resolves to ``min(cpu_count, chunks)`` per scan, falling
        back to serial for tiny tables.  The backend stays whatever
        :meth:`with_backend` chose (threads by default).
        """
        if workers == "auto":
            return self._replace_options(parallelism="auto")
        if not isinstance(workers, int) or workers < 1:
            raise QueryError(
                f"parallelism must be >= 1 or 'auto', got {workers!r}")
        return self._replace_options(parallelism=int(workers))

    def with_backend(self, backend: str, workers: Optional[Union[int, str]] = None,
                     cache_bytes: Optional[int] = None) -> "Dataset":
        """Choose the scan execution backend.

        *backend* is ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``
        (the default behaviour: threads when ``parallelism > 1``).  The
        process backend runs scans on a pool of long-lived worker processes
        that mmap the same packed table file (see
        :mod:`repro.engine.parallel`) and falls back to serial — recorded in
        ``explain()`` and ``ScanResult.backend`` — for tables not backed by
        a packed file.  *workers* sets the parallelism (like
        :meth:`with_parallelism`); *cache_bytes* gives each process worker a
        hot-chunk decompression LRU with that byte budget.
        """
        from ..engine.scan import BACKENDS

        if backend != "auto" and backend not in BACKENDS:
            raise QueryError(f"unknown execution backend {backend!r}; "
                             f"known: {BACKENDS + ('auto',)}")
        changes: dict = {"backend": None if backend == "auto" else backend}
        if workers is not None:
            if workers == "auto":
                changes["parallelism"] = "auto"
            elif not isinstance(workers, int) or workers < 1:
                raise QueryError(
                    f"parallelism must be >= 1 or 'auto', got {workers!r}")
            else:
                changes["parallelism"] = int(workers)
        if cache_bytes is not None:
            if not isinstance(cache_bytes, int) or cache_bytes < 0:
                raise QueryError(
                    f"cache_bytes must be a non-negative int, got {cache_bytes!r}")
            changes["cache_bytes"] = cache_bytes
        return self._replace_options(**changes)

    def without_pushdown(self) -> "Dataset":
        """Disable compressed-form pushdown (benchmark baseline mode)."""
        return self._replace_options(use_pushdown=False)

    def without_zone_maps(self) -> "Dataset":
        """Disable zone-map chunk skipping (benchmark baseline mode)."""
        return self._replace_options(use_zone_maps=False)

    def without_compressed_execution(self) -> "Dataset":
        """Disable compressed-domain aggregates and gathers (baseline mode).

        Aggregate inputs then materialise through the scan and reduce on
        decompressed values — the decompress-then-compute path the
        ``compressed_exec`` benchmark compares against.  Results are
        bit-identical either way.
        """
        return self._replace_options(use_compressed_exec=False)

    def without_optimizer_reordering(self) -> "Dataset":
        """Keep filter conjuncts in source order (benchmark baseline mode)."""
        return self._replace_options(preserve_filter_order=True)

    def with_fault_policy(self, on_corruption: Optional[str] = None,
                          on_fault: Optional[str] = None,
                          retries: Optional[int] = None,
                          backoff_s: Optional[float] = None,
                          deadline_s: Optional[float] = None) -> "Dataset":
        """Configure how this dataset's scans respond to faults.

        *on_corruption* is ``"raise"`` (a failed segment digest aborts the
        query with :class:`~repro.errors.CorruptionError`) or
        ``"quarantine"`` (the corrupt chunk range contributes no rows,
        accounted in ``ScanStats.chunks_quarantined``); *on_fault* is
        ``"raise"`` or ``"degrade"`` (fall back process → thread → serial,
        recording the chain in the result's backend string); *retries*
        bounds re-executions of a failed chunk range; *deadline_s* bounds a
        scan's wall clock (:class:`~repro.errors.ScanTimeoutError` on
        expiry).  Unspecified arguments keep the current policy's values —
        see :class:`repro.engine.resilience.FaultPolicy` for defaults.
        """
        from dataclasses import replace as _replace

        from ..engine.resilience import DEFAULT_FAULT_POLICY

        base = self._options.fault_policy or DEFAULT_FAULT_POLICY
        changes = {name: value for name, value in (
            ("on_corruption", on_corruption), ("on_fault", on_fault),
            ("retries", retries), ("backoff_s", backoff_s),
            ("deadline_s", deadline_s)) if value is not None}
        return self._replace_options(fault_policy=_replace(base, **changes))

    def with_fault_injection(self, plan) -> "Dataset":
        """Inject deterministic faults into this dataset's scans (chaos
        testing) — *plan* is a :class:`repro.engine.resilience.FaultPlan`
        (or a dict of its fields).  Pass ``None`` to clear a previously set
        plan (the ``REPRO_FAULT_PLAN`` environment hook, when set, still
        applies)."""
        from ..engine.resilience import FaultPlan

        if isinstance(plan, dict):
            plan = FaultPlan.from_spec(plan)
        if plan is not None and not isinstance(plan, FaultPlan):
            raise QueryError(
                f"with_fault_injection() expects a FaultPlan, a dict of its "
                f"fields, or None, got {type(plan).__name__}")
        return self._replace_options(fault_plan=plan)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def collect(self):
        """Optimize, lower onto the scan scheduler, and execute.

        Returns a :class:`~repro.engine.query.QueryResult`; wrap it back
        into a dataset with :meth:`Dataset.from_result` to query it again.
        """
        return run_plan(self.optimized_plan(), self._options)

    def explain(self, optimized: bool = True) -> str:
        """Render the (optimized, by default) plan as an indented tree."""
        root = self.optimized_plan() if optimized else self._plan
        lines: List[str] = []
        self._render(root, lines, 0)
        return "\n".join(lines)

    def _render(self, node: logical.LogicalNode, lines: List[str],
                indent: int) -> None:
        pad = "  " * indent
        if isinstance(node, logical.PScan):
            from ..engine.scan import describe_backend

            options = self._options
            backend = describe_backend(node.table, options.backend,
                                       options.parallelism)
            flags = [f"backend={backend}",
                     f"parallelism={options.parallelism}",
                     f"pushdown={'on' if options.use_pushdown else 'off'}",
                     f"zone-maps={'on' if options.use_zone_maps else 'off'}"]
            if options.fault_policy is not None:
                flags.append(f"fault-policy=[{options.fault_policy.describe()}]")
            if options.fault_plan is not None:
                flags.append("fault-injection=on")
            lines.append(f"{pad}{node.label()} [{', '.join(flags)}]")
            for note in node.notes:
                lines.append(f"{pad}  note: {note}")
            for conjunct in node.conjuncts:
                lines.append(f"{pad}  where {conjunct.describe()}")
            for name, expr in node.derived:
                lines.append(f"{pad}  derive {name} = {expr!r}")
            return
        lines.append(pad + node.label())
        if isinstance(node, logical.Aggregate):
            from .lower import aggregate_execution_domains

            for label, domain in aggregate_execution_domains(node,
                                                             self._options):
                lines.append(f"{pad}  agg {label} [{domain}]")
        for child in node.children():
            self._render(child, lines, indent + 1)


class GroupedDataset:
    """The intermediate ``group_by`` state; only ``.agg(...)`` completes it."""

    def __init__(self, parent: Dataset, keys: Sequence[Expr]):
        self._parent = parent
        self._keys = tuple(keys)
        # Validate the keys *now* — this object is a plan under construction.
        known = set(parent._plan.schema())
        for key in self._keys:
            if key.contains_aggregate():
                raise QueryError(
                    f"group_by(): aggregate expressions are not allowed in "
                    f"group_by() keys (got {key!r})"
                )
            for name in key.columns():
                if name not in known:
                    raise QueryError(
                        f"group_by(): key {key!r} references unknown column "
                        f"{name!r}; available: {sorted(known)}"
                    )

    def agg(self, *aggregates: Expr) -> Dataset:
        """Aggregate each group; at least one aggregate expression required."""
        return self._parent._wrap(
            logical.Aggregate(self._parent._plan, self._keys, aggregates))

    def collect(self):
        raise QueryError(
            "group_by() without aggregates cannot execute; call "
            ".agg(col(...).sum(), ...) to complete the aggregation"
        )


def dataset(table: Table, name: str = "table") -> Dataset:
    """Convenience alias for :meth:`Dataset.from_table`."""
    return Dataset.from_table(table, name)

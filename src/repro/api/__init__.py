"""``repro.api`` — the lazy expression DSL and logical-plan query API.

The public surface of the query layer::

    from repro.api import col, count, dataset

    result = (dataset(table, "lineitem")
              .filter((col("ship_date").between(lo, hi)) & (col("qty") > 5))
              .with_column("revenue", col("price") * col("qty"))
              .group_by("discount")
              .agg(col("revenue").sum().alias("total"), count())
              .sort("total", descending=True)
              .limit(10)
              .collect())

Structure:

* :mod:`repro.api.expr` — the expression DSL (``col``/``lit``, arithmetic,
  comparisons, ``& | ~``, ``between``/``isin``, aggregates, ``alias``);
* :mod:`repro.api.logical` — the immutable logical plan with construction-
  time validation;
* :mod:`repro.api.optimize` — boolean normalization, CNF splitting, filter
  pushdown (below select / sort / join / group-by keys), selectivity-based
  conjunct reordering, select-below-sort, projection pruning;
* :mod:`repro.api.lower` — lowering onto the chunk-parallel scan scheduler
  (:func:`repro.engine.scan.scan_table`) and the engine's operator kernels;
* :mod:`repro.api.dataset` — the :class:`Dataset` facade tying it together.

The eager :class:`repro.engine.query.Query` builder is a compatibility shim
over this package.
"""

from .dataset import Dataset, GroupedDataset, dataset
from .expr import Expr, col, count, lit

__all__ = [
    "Dataset",
    "GroupedDataset",
    "dataset",
    "Expr",
    "col",
    "lit",
    "count",
]

"""The immutable logical plan behind :class:`repro.api.Dataset`.

Every :class:`Dataset` operation appends one node to a tree of the types
below; nothing executes until ``collect()``.  Construction is where
validation lives — unknown columns, aggregates in the wrong place,
``group_by`` without aggregates, scalar/grouped mode mixing — so a bad query
fails the moment it is *written*, with the offending node named, not when it
eventually runs.

The optimizer (:mod:`repro.api.optimize`) rewrites this tree into an
equivalent one whose scans are :class:`PScan` nodes: the scan-adjacent
filters CNF-split into ordered, selectivity-estimated conjuncts, derived
expressions folded in for per-chunk evaluation, and the materialisation list
pruned to what the rest of the plan actually reads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..storage.table import Table
from .expr import AggExpr, Alias, Expr

__all__ = [
    "LogicalNode",
    "Scan",
    "Filter",
    "Project",
    "WithColumn",
    "Aggregate",
    "Sort",
    "Limit",
    "Join",
    "PScan",
    "Conjunct",
    "unwrap_alias",
]


def unwrap_alias(expr: Expr) -> Expr:
    """Strip :class:`~repro.api.expr.Alias` wrappers off *expr*."""
    while isinstance(expr, Alias):
        expr = expr.inner
    return expr


class LogicalNode(abc.ABC):
    """One node of the logical plan (immutable once constructed)."""

    @abc.abstractmethod
    def schema(self) -> Tuple[str, ...]:
        """Ordered output column names of this node."""

    @abc.abstractmethod
    def label(self) -> str:
        """Short human-readable identity, used in errors and ``explain()``."""

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()

    @property
    def is_scalar(self) -> bool:
        """Whether this node produces a scalar (keyless-aggregate) result."""
        return False

    # -- shared validation helpers ------------------------------------- #

    def _check_refs(self, expr: Expr, child: "LogicalNode") -> None:
        known = set(child.schema())
        for name in expr.columns():
            if name not in known:
                raise QueryError(
                    f"{self.label()}: expression {expr!r} references unknown "
                    f"column {name!r}; available: {sorted(known)}"
                )

    def _check_no_aggregate(self, expr: Expr, where: str) -> None:
        if expr.contains_aggregate():
            raise QueryError(
                f"{self.label()}: aggregate expressions are not allowed in "
                f"{where} (got {expr!r}); use agg() / group_by().agg()"
            )

    def _check_tabular_child(self, child: "LogicalNode") -> None:
        if child.is_scalar:
            raise QueryError(
                f"{self.label()}: cannot build on {child.label()} — a scalar "
                "aggregate is a terminal result; collect() it instead"
            )


# --------------------------------------------------------------------------- #
# Leaves
# --------------------------------------------------------------------------- #

class Scan(LogicalNode):
    """A stored table, lazily referenced."""

    def __init__(self, table: Table, name: str = "table"):
        self.table = table
        self.name = name

    def schema(self) -> Tuple[str, ...]:
        return tuple(self.table.column_names)

    def label(self) -> str:
        return f"Scan({self.name})"


# --------------------------------------------------------------------------- #
# Row-preserving operators
# --------------------------------------------------------------------------- #

class Filter(LogicalNode):
    """Keep rows where *predicate* is true."""

    def __init__(self, child: LogicalNode, predicate: Expr):
        self.child = child
        self.predicate = predicate
        self._check_tabular_child(child)
        self._check_no_aggregate(predicate, "filter()")
        self._check_refs(predicate, child)

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(LogicalNode):
    """Compute an ordered list of output expressions (select)."""

    def __init__(self, child: LogicalNode, exprs: Sequence[Expr]):
        self.child = child
        self.exprs = tuple(exprs)
        self._check_tabular_child(child)
        if not self.exprs:
            raise QueryError(f"{self.label()}: select() needs at least one column")
        names: List[str] = []
        for expr in self.exprs:
            self._check_no_aggregate(expr, "select()")
            self._check_refs(expr, child)
            names.append(expr.output_name())
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise QueryError(
                f"{self.label()}: duplicate output names {sorted(duplicates)}; "
                "use .alias() to disambiguate"
            )
        self._schema = tuple(names)

    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        # Derived from exprs, not _schema: label() must work mid-validation.
        return f"Project({', '.join(e.output_name() for e in self.exprs)})"


class WithColumn(LogicalNode):
    """Append one derived column to the child's schema."""

    def __init__(self, child: LogicalNode, name: str, expr: Expr):
        self.child = child
        self.name = name
        self.expr = expr
        self._check_tabular_child(child)
        if name in child.schema():
            raise QueryError(
                f"{self.label()}: column {name!r} already exists in the input; "
                "shadowing is not supported — pick a fresh name"
            )
        self._check_no_aggregate(expr, "with_column()")
        self._check_refs(expr, child)

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema() + (self.name,)

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"WithColumn({self.name} = {self.expr!r})"


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #

class Aggregate(LogicalNode):
    """Grouped (*keys* non-empty) or scalar (*keys* empty) aggregation."""

    def __init__(self, child: LogicalNode, keys: Sequence[Expr],
                 aggregates: Sequence[Expr]):
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        key_names = [k.output_name() for k in self.keys]
        self._label = (f"Aggregate(keys=[{', '.join(key_names)}])"
                       if self.keys else "Aggregate(scalar)")
        self._check_tabular_child(child)
        if not self.aggregates:
            if self.keys:
                raise QueryError(
                    f"{self.label()}: group_by() requires at least one "
                    "aggregate — call .agg(...) with one or more aggregate "
                    "expressions"
                )
            raise QueryError(f"{self.label()}: agg() needs at least one "
                             "aggregate expression")
        for key in self.keys:
            self._check_no_aggregate(key, "group_by() keys")
            self._check_refs(key, child)
        mode = "grouped" if self.keys else "scalar"
        for agg in self.aggregates:
            core = unwrap_alias(agg)
            if not isinstance(core, AggExpr):
                raise QueryError(
                    f"{self.label()}: {agg!r} is not an aggregate expression — "
                    f"mixing plain ({mode}-mode) columns with aggregates is "
                    "not allowed; wrap it in .sum()/.min()/.max()/.mean()/"
                    ".count(), or make it a group_by() key"
                )
            self._check_refs(agg, child)
        names = key_names + [a.output_name() for a in self.aggregates]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise QueryError(
                f"{self.label()}: duplicate output names {sorted(duplicates)}; "
                "use .alias() to disambiguate"
            )
        self._schema = tuple(names)

    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    @property
    def is_scalar(self) -> bool:
        return not self.keys

    def label(self) -> str:
        return self._label


# --------------------------------------------------------------------------- #
# Ordering and truncation
# --------------------------------------------------------------------------- #

class Sort(LogicalNode):
    """Stable sort by one or more key expressions."""

    def __init__(self, child: LogicalNode, by: Sequence[Expr],
                 descending: Sequence[bool]):
        self.child = child
        self.by = tuple(by)
        self.descending = tuple(bool(d) for d in descending)
        self._check_tabular_child(child)
        if not self.by:
            raise QueryError(f"{self.label()}: sort() needs at least one key")
        if len(self.by) != len(self.descending):
            raise QueryError(
                f"{self.label()}: got {len(self.by)} sort keys but "
                f"{len(self.descending)} descending flags"
            )
        for key in self.by:
            self._check_no_aggregate(key, "sort() keys")
            self._check_refs(key, child)

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(
            f"{k!r}{' DESC' if d else ''}" for k, d in zip(self.by, self.descending))
        return f"Sort({keys})"


class Limit(LogicalNode):
    """Keep the first *count* rows."""

    def __init__(self, child: LogicalNode, count: int):
        self.child = child
        self.count = int(count)
        self._check_tabular_child(child)
        if self.count < 0:
            raise QueryError(f"{self.label()}: limit must be >= 0, got {count}")

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.count})"


# --------------------------------------------------------------------------- #
# Join
# --------------------------------------------------------------------------- #

class Join(LogicalNode):
    """Inner equi-join of two plans.

    Output schema: the left columns unchanged, then the right columns with
    *suffix* appended to any name colliding with a left column.  When both
    sides join on the same column name, the (identical) right key column is
    dropped.
    """

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 left_on: str, right_on: str, suffix: str = "_right"):
        self.left = left
        self.right = right
        self.left_on = left_on
        self.right_on = right_on
        self.suffix = suffix
        self._check_tabular_child(left)
        self._check_tabular_child(right)
        if left_on not in left.schema():
            raise QueryError(
                f"{self.label()}: left key {left_on!r} not in left schema "
                f"{sorted(left.schema())}"
            )
        if right_on not in right.schema():
            raise QueryError(
                f"{self.label()}: right key {right_on!r} not in right schema "
                f"{sorted(right.schema())}"
            )
        left_names = list(left.schema())
        names = list(left_names)
        mapping: List[Tuple[str, str]] = []  # (right column, output name)
        for name in right.schema():
            if name == right_on and right_on == left_on:
                continue  # identical key values; keep the left copy only
            out = name + suffix if name in left_names else name
            if out in names:
                raise QueryError(
                    f"{self.label()}: output name {out!r} collides even after "
                    f"suffixing; rename the right column first"
                )
            names.append(out)
            mapping.append((name, out))
        self._schema = tuple(names)
        self.right_output = tuple(mapping)

    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"Join({self.left_on} == {self.right_on})"


# --------------------------------------------------------------------------- #
# The optimizer's physical scan node
# --------------------------------------------------------------------------- #

@dataclass
class Conjunct:
    """One scan-level conjunct, classified and annotated by the optimizer.

    ``kind`` is ``"native"`` (lowered to an engine ``Predicate`` with the
    full zone-map / compressed-form pushdown cascade), ``"expr"`` (a
    single-column expression evaluated on decompressed chunk values, with
    interval-arithmetic zone-map decisions), or ``"rows"`` (a multi-column
    row filter evaluated against the chunk-aligned buffers of every column
    it references).

    ``domain`` records where the conjunct will actually evaluate:
    ``"compressed"`` when every chunk of its column advertises the range
    kernel (so the scan never decompresses for it), ``"decompress"``
    otherwise; ``None`` when not annotated.
    """

    expr: Expr
    kind: str
    #: The physical object the scan receives: an engine ``Predicate`` for
    #: ``"native"``/``"expr"`` conjuncts, a row-filter adapter for ``"rows"``.
    lowered: Optional[object] = None
    selectivity: Optional[float] = None
    source_order: int = 0
    domain: Optional[str] = None

    def describe(self) -> str:
        note = [self.kind]
        if self.domain is not None:
            note.append(self.domain)
        if self.selectivity is not None:
            note.append(f"est. sel {self.selectivity:.3f}")
        return f"{self.expr!r}  [{', '.join(note)}]"


class PScan(LogicalNode):
    """An optimizer-produced scan: conjuncts + derived columns + pruning.

    One ``PScan`` lowers onto exactly one :func:`repro.engine.scan.scan_table`
    call: *conjuncts* (in the recorded order) drive selection, *materialize*
    names the base columns gathered at the surviving positions, and
    *derived* expressions are evaluated per chunk against the scan's shared
    decompressed buffers.  *output* fixes the ordered result schema, drawing
    from both materialised and derived names.
    """

    def __init__(self, table: Table, name: str,
                 conjuncts: Sequence[Conjunct],
                 materialize: Sequence[str],
                 derived: Sequence[Tuple[str, Expr]],
                 output: Sequence[str],
                 notes: Sequence[str] = (),
                 always_empty: bool = False):
        self.table = table
        self.name = name
        self.conjuncts = list(conjuncts)
        self.materialize = list(materialize)
        self.derived = list(derived)
        self.output = list(output)
        self.notes = list(notes)
        #: Set by the optimizer when a constant conjunct folded to False —
        #: the scan provably selects nothing and is never executed.
        self.always_empty = always_empty

    def schema(self) -> Tuple[str, ...]:
        return tuple(self.output)

    def label(self) -> str:
        return (f"Scan({self.name}: {self.table.row_count} rows, "
                f"materialize=[{', '.join(self.materialize)}])")

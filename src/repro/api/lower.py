"""Lowering: compile an optimized logical plan onto the scan scheduler.

The interesting work is at the :class:`~repro.api.logical.PScan` boundary —
one ``PScan`` becomes one :func:`repro.engine.scan.scan_table` call:

* ``"native"`` conjuncts hand the engine a real
  :class:`~repro.engine.predicates.Predicate` (``Between``/``Equals``/
  ``IsIn``), unlocking the full zone-map → compressed-form-pushdown →
  decompress-and-compare cascade;
* ``"expr"`` conjuncts become :class:`ExprPredicate` — a single-column
  predicate evaluated on decompressed chunk values whose zone-map decision
  comes from interval arithmetic over the expression tree;
* ``"rows"`` conjuncts become :class:`ExprRowFilter` — multi-column
  predicates (``col("a") < col("b")``) the old AND-only engine could not
  express, evaluated against the scan's chunk-aligned shared buffers;
* derived expressions become :class:`ExprDerive` specs, evaluated per chunk
  range against values gathered at the surviving positions.

Everything above the scans (joins, grouped/scalar aggregation, sorting,
top-k limits, residual filters) executes on in-memory frames of
:class:`~repro.columnar.column.Column` s through the existing
:mod:`repro.engine.operators` kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..columnar.column import Column
from ..errors import QueryError
from ..engine.operators import ScanStats, aggregate as scalar_aggregate, \
    aggregate_stored, gather_stored, group_codes_stored, grouped_reduce, \
    hash_join
from ..engine.predicates import Between, Equals, IsIn, Predicate
from ..engine.resilience import FaultPlan, FaultPolicy
from ..engine.scan import _pushable_bounds, scan_table
from ..storage.table import Table
from . import logical
from .expr import (
    _CMP_FLIP,
    AggExpr,
    BetweenExpr,
    ColumnRef,
    Comparison,
    Expr,
    IsInExpr,
    Literal,
    WrappedPredicate,
)

__all__ = [
    "LoweringOptions",
    "ExprPredicate",
    "ExprRowFilter",
    "ExprDerive",
    "classify_conjunct",
    "execute",
    "run_plan",
    "Frame",
]


@dataclass(frozen=True)
class LoweringOptions:
    """Physical knobs shared by the optimizer and the executor."""

    #: Worker count for the scan fan-out: an int, or ``"auto"`` for
    #: ``min(cpu_count, chunks)`` with a serial fallback on tiny tables.
    parallelism: Any = 1
    #: Scan execution backend: ``None`` keeps the historical behaviour
    #: (``parallelism > 1`` fans out over threads); ``"serial"`` /
    #: ``"thread"`` / ``"process"`` select explicitly.  The process backend
    #: additionally routes partial-mergeable aggregates through
    #: per-worker partial states (:func:`_exec_aggregate_partial`).
    backend: Optional[str] = None
    #: Byte budget for each process worker's hot-chunk decompression LRU
    #: (0 = off).  Only the process backend uses it.
    cache_bytes: int = 0
    use_pushdown: bool = True
    use_zone_maps: bool = True
    #: Keep filter conjuncts in source order instead of reordering them by
    #: estimated selectivity.  Used by the ``Query`` compatibility shim to
    #: stay bit-identical (including ``ScanStats``) with the seed engine.
    preserve_filter_order: bool = False
    #: Route eligible aggregates and sparse gathers through the
    #: compressed-domain kernels (:mod:`repro.engine.kernels`): scalar and
    #: grouped sum/min/max/count over bare columns of capable schemes skip
    #: materialisation entirely, and group-by over dictionary-coded keys
    #: reuses the codes as group codes.  Results are bit-identical; disable
    #: for a decompress-then-compute baseline (benchmarks).
    use_compressed_exec: bool = True
    #: ``Query``-shim compatibility: keep aggregates on the materialising
    #: path (their inputs flow through the scan) so ``ScanStats`` stays
    #: field-for-field identical to the seed engine's one-scan execution,
    #: while scan-internal compressed execution remains whatever
    #: ``use_compressed_exec`` says (the seed comparison re-runs the same
    #: scheduler).  Not a user-facing knob.
    materialize_aggregates: bool = False
    #: How scans respond to faults — retries/backoff for failed chunk
    #: ranges, per-scan deadline, corruption quarantine, and the
    #: process → thread → serial degradation chain.  ``None`` means
    #: :data:`repro.engine.resilience.DEFAULT_FAULT_POLICY`.
    fault_policy: Optional["FaultPolicy"] = None
    #: Deterministic fault injection for chaos testing
    #: (:class:`repro.engine.resilience.FaultPlan`); ``None`` defers to the
    #: ``REPRO_FAULT_PLAN`` environment hook.
    fault_plan: Optional["FaultPlan"] = None


# --------------------------------------------------------------------------- #
# Physical predicate adapters
# --------------------------------------------------------------------------- #

def _is_plain_int(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, (bool, np.bool_))


class ExprPredicate(Predicate):
    """A single-column DSL predicate evaluated on decompressed values.

    Zone-map decisions come from tri-state interval arithmetic over the
    expression tree (:meth:`~repro.api.expr.Expr.decide`), enabled only for
    integer columns — the storage layer's statistics round float bounds, so
    float intervals cannot be trusted for chunk skipping.
    """

    def __init__(self, expr: Expr, column_name: str, trust_bounds: bool):
        super().__init__(column_name)
        self.expr = expr
        self._trust_bounds = trust_bounds

    def evaluate(self, values: Column) -> Column:
        mask = self.expr.evaluate({self.column_name: values.values})
        return Column(np.asarray(mask, dtype=bool))

    def chunk_decision(self, statistics) -> Optional[bool]:
        if not self._trust_bounds or statistics.count == 0 \
                or statistics.minimum is None:
            return None
        env = {self.column_name: (statistics.minimum, statistics.maximum)}
        return self.expr.decide(env)

    def __repr__(self) -> str:
        return f"ExprPredicate({self.expr!r})"


class ExprRowFilter:
    """A multi-column DSL predicate for :func:`scan_table`'s ``row_filters``."""

    def __init__(self, expr: Expr, trusted: Mapping[str, bool]):
        self.expr = expr
        self.columns = expr.columns()
        self._trusted = dict(trusted)

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(self.expr.evaluate(env), dtype=bool)

    def chunk_decision(self, stats_env: Mapping[str, Any]) -> Optional[bool]:
        bounds_env: Dict[str, Optional[Tuple[int, int]]] = {}
        for name in self.columns:
            statistics = stats_env.get(name)
            if (statistics is None or not self._trusted.get(name, False)
                    or statistics.count == 0 or statistics.minimum is None):
                bounds_env[name] = None
            else:
                bounds_env[name] = (statistics.minimum, statistics.maximum)
        return self.expr.decide(bounds_env)

    def __repr__(self) -> str:
        return f"ExprRowFilter({self.expr!r})"


class ExprDerive:
    """A derived-column spec for :func:`scan_table`'s ``derive``."""

    def __init__(self, expr: Expr):
        self.expr = expr
        self.columns = expr.columns()

    def evaluate(self, env: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.expr.evaluate(env)

    def __repr__(self) -> str:
        return f"ExprDerive({self.expr!r})"


# --------------------------------------------------------------------------- #
# Conjunct classification
# --------------------------------------------------------------------------- #

def _column_bounds(table: Table, name: str) -> Optional[Tuple[int, int]]:
    """Whole-column [min, max] from chunk statistics (integer columns only)."""
    stored = table.column(name)
    if not np.issubdtype(stored.dtype, np.integer):
        return None
    lo: Optional[int] = None
    hi: Optional[int] = None
    for chunk in stored.chunks:
        statistics = chunk.statistics
        if statistics.count == 0 or statistics.minimum is None:
            continue
        lo = statistics.minimum if lo is None else min(lo, statistics.minimum)
        hi = statistics.maximum if hi is None else max(hi, statistics.maximum)
    if lo is None or hi is None:
        return None
    return lo, hi


def _comparison_parts(expr: Comparison) -> Optional[Tuple[str, str, int]]:
    """Decompose ``col <op> int-literal`` (either side) into (column, op, value)."""
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        left, right, op = right, left, _CMP_FLIP[op]
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if not _is_plain_int(right.value):
        return None
    return left.name, op, int(right.value)


def to_native_predicate(expr: Expr, table: Table) -> Optional[Predicate]:
    """Convert *expr* to a native engine predicate when exactly equivalent.

    Conversion is restricted to integer columns with integer constants, so
    the engine's int-typed ``RangeBounds`` and zone maps are exact.
    One-sided comparisons become ``Between`` ranges clamped to the column's
    actual [min, max] (from chunk statistics) — never to sentinel values a
    narrow dtype could not compare against.
    """
    if isinstance(expr, WrappedPredicate):
        return expr.predicate

    if isinstance(expr, BetweenExpr) and isinstance(expr.operand, ColumnRef):
        if not (_is_plain_int(expr.low) and _is_plain_int(expr.high)):
            return None
        if _column_bounds(table, expr.operand.name) is None:
            return None
        return Between(expr.operand.name, int(expr.low), int(expr.high))

    if isinstance(expr, IsInExpr) and isinstance(expr.operand, ColumnRef):
        if not all(_is_plain_int(v) for v in expr.candidates):
            return None
        if _column_bounds(table, expr.operand.name) is None:
            return None
        return IsIn(expr.operand.name, [int(v) for v in expr.candidates])

    if isinstance(expr, Comparison):
        parts = _comparison_parts(expr)
        if parts is None:
            return None
        name, op, value = parts
        bounds = _column_bounds(table, name)
        if bounds is None:
            return None
        column_lo, column_hi = bounds
        if op == "==":
            return Equals(name, value)
        if op == "!=":
            return None  # anti-ranges have no native form; the expr path is exact
        if op == "<":
            op, value = "<=", value - 1
        elif op == ">":
            op, value = ">=", value + 1
        if op == "<=":
            low, high = column_lo, value
        else:  # ">="
            low, high = value, column_hi
        if low > high:
            return None  # provably empty; let the expr path return all-False
        return Between(name, low, high)

    return None


def _filter_domain(table: Table, predicate: Predicate) -> str:
    """Where a native conjunct will evaluate: ``"compressed"`` when every
    chunk of its column advertises the range kernel (including cascaded
    forms, via capability delegation), ``"decompress"`` otherwise."""
    from ..engine import kernels
    from ..schemes.base import KERNEL_FILTER_RANGE

    if _pushable_bounds(predicate) is None:
        return "decompress"
    stored = table.column(predicate.column_name)
    if all(kernels.supports(chunk.scheme, chunk.form, KERNEL_FILTER_RANGE)
           for chunk in stored.chunks):
        return "compressed"
    return "decompress"


def classify_conjunct(expr: Expr, table: Table, source_order: int
                      ) -> logical.Conjunct:
    """Classify one CNF conjunct into native / expr / rows and build its
    physical form (see the module docstring)."""
    native = to_native_predicate(expr, table)
    if native is not None:
        return logical.Conjunct(expr=expr, kind="native", lowered=native,
                                source_order=source_order,
                                domain=_filter_domain(table, native))
    referenced = expr.columns()
    trusted = {name: np.issubdtype(table.column(name).dtype, np.integer)
               for name in referenced}
    if len(referenced) == 1:
        name = referenced[0]
        lowered: object = ExprPredicate(expr, name, trusted[name])
        kind = "expr"
    else:
        lowered = ExprRowFilter(expr, trusted)
        kind = "rows"
    return logical.Conjunct(expr=expr, kind=kind, lowered=lowered,
                            source_order=source_order, domain="decompress")


# --------------------------------------------------------------------------- #
# Frames (in-memory intermediate results)
# --------------------------------------------------------------------------- #

@dataclass
class Frame:
    """A materialised intermediate result."""

    columns: Dict[str, Column]
    row_count: int
    scalars: Dict[str, Any] = field(default_factory=dict)
    stats_list: List[ScanStats] = field(default_factory=list)
    #: For aggregate frames: how many input rows were aggregated (the seed
    #: engine reports this as ``QueryResult.row_count``).
    aggregated_rows: Optional[int] = None

    def env(self) -> Dict[str, np.ndarray]:
        return {name: column.values for name, column in self.columns.items()}

    def take(self, order: np.ndarray) -> "Frame":
        return Frame(
            columns={name: Column(column.values[order], name=name)
                     for name, column in self.columns.items()},
            row_count=int(order.size),
            scalars=dict(self.scalars),
            stats_list=list(self.stats_list),
        )


def _evaluate_full(expr: Expr, env: Mapping[str, np.ndarray],
                   row_count: int) -> np.ndarray:
    """Evaluate *expr* over *env*, broadcasting constants to *row_count*."""
    value = np.asarray(expr.evaluate(env))
    if value.ndim == 0:
        value = np.full(row_count, value[()])
    return value


# --------------------------------------------------------------------------- #
# Node executors
# --------------------------------------------------------------------------- #

def _empty_scan_frame(node: logical.PScan) -> Frame:
    """A zero-row frame for a scan the optimizer folded to always-empty."""
    arrays: Dict[str, np.ndarray] = {
        name: np.empty(0, dtype=node.table.column(name).dtype)
        for name in node.materialize
    }
    for name, expr in node.derived:
        env = {ref: np.empty(0, dtype=node.table.column(ref).dtype)
               for ref in expr.columns()}
        value = np.asarray(expr.evaluate(env))
        arrays[name] = value if value.ndim else np.empty(0, dtype=value.dtype)
    columns = {name: Column(arrays[name], name=name) for name in node.output}
    return Frame(columns=columns, row_count=0)


def _split_conjuncts(node: logical.PScan
                     ) -> Tuple[List[Predicate], List[ExprRowFilter]]:
    predicates: List[Predicate] = []
    row_filters: List[ExprRowFilter] = []
    for conjunct in node.conjuncts:
        if conjunct.kind == "rows":
            row_filters.append(conjunct.lowered)  # type: ignore[arg-type]
        else:
            predicates.append(conjunct.lowered)  # type: ignore[arg-type]
    return predicates, row_filters


def _exec_pscan(node: logical.PScan, options: LoweringOptions) -> Frame:
    if node.always_empty:
        return _empty_scan_frame(node)
    predicates, row_filters = _split_conjuncts(node)
    derive = [(name, ExprDerive(expr)) for name, expr in node.derived]
    scan = scan_table(node.table, predicates,
                      use_pushdown=options.use_pushdown,
                      use_zone_maps=options.use_zone_maps,
                      parallelism=options.parallelism,
                      materialize=node.materialize,
                      row_filters=row_filters,
                      derive=derive,
                      use_compressed_exec=options.use_compressed_exec,
                      backend=options.backend,
                      cache_bytes=options.cache_bytes,
                      fault_plan=options.fault_plan,
                      fault_policy=options.fault_policy)
    columns = {name: scan.columns[name] for name in node.output}
    return Frame(columns=columns, row_count=len(scan.selection),
                 stats_list=[scan.stats] if scan.stats is not None else [])


def _exec_filter(node: logical.Filter, options: LoweringOptions) -> Frame:
    child = execute(node.child, options)
    mask = np.asarray(_evaluate_full(node.predicate, child.env(),
                                     child.row_count), dtype=bool)
    return child.take(np.flatnonzero(mask))


def _exec_project(node: logical.Project, options: LoweringOptions) -> Frame:
    child = execute(node.child, options)
    env = child.env()
    columns = {}
    for expr in node.exprs:
        name = expr.output_name()
        columns[name] = Column(_evaluate_full(expr, env, child.row_count),
                               name=name)
    return Frame(columns=columns, row_count=child.row_count,
                 stats_list=child.stats_list)


def _exec_with_column(node: logical.WithColumn, options: LoweringOptions) -> Frame:
    child = execute(node.child, options)
    value = _evaluate_full(node.expr, child.env(), child.row_count)
    columns = dict(child.columns)
    columns[node.name] = Column(value, name=node.name)
    return Frame(columns=columns, row_count=child.row_count,
                 stats_list=child.stats_list)


def _factorize(arrays: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], np.ndarray]:
    """Factorise one or more equal-length key arrays into group codes.

    Returns ``(unique key arrays, codes)`` with groups in ascending
    lexicographic key order (matching ``np.unique`` for a single key).
    """
    if len(arrays) == 1:
        unique, codes = np.unique(arrays[0], return_inverse=True)
        return [unique], codes.reshape(-1)
    length = arrays[0].shape[0]
    if length == 0:
        return [array[:0] for array in arrays], np.empty(0, dtype=np.int64)
    order = np.lexsort(tuple(arrays[::-1]))
    sorted_arrays = [array[order] for array in arrays]
    changes = np.zeros(length, dtype=bool)
    changes[0] = True
    for array in sorted_arrays:
        changes[1:] |= array[1:] != array[:-1]
    group_of_sorted = np.cumsum(changes) - 1
    codes = np.empty(length, dtype=np.int64)
    codes[order] = group_of_sorted
    starts = np.flatnonzero(changes)
    return [array[starts] for array in sorted_arrays], codes


_COMPRESSED_AGG_OPS = ("count", "sum", "min", "max")


def _column_fully_capable(table: Table, name: str, kernel: str) -> bool:
    from ..engine import kernels

    stored = table.column(name)
    return all(kernels.supports(chunk.scheme, chunk.form, kernel)
               for chunk in stored.chunks)


def compressed_aggregate_plan(node: logical.Aggregate,
                              options: LoweringOptions
                              ) -> Optional[Dict[str, Any]]:
    """Decide whether *node* can execute on compressed inputs.

    Eligible when the child is a scan with no derived columns, every
    aggregate is count/sum/min/max over a bare base column (or ``count(*)``),
    grouping uses at most one bare key whose chunks all expose group codes,
    and every sum/min/max operand column is fully gather-capable — so the
    scan only has to produce a selection, and the aggregate inputs never
    materialise table-wide.  Returns the execution spec, or ``None`` to use
    the materialising path.  ``explain()`` uses the same decision via
    :func:`aggregate_execution_domains`, so the report cannot drift from the
    executor.
    """
    from ..schemes.base import KERNEL_GATHER, KERNEL_GROUP_CODES

    if not options.use_compressed_exec or options.materialize_aggregates:
        return None
    child = node.child
    if not isinstance(child, logical.PScan) or child.always_empty \
            or child.derived:
        return None
    table = child.table

    key_name: Optional[str] = None
    if node.keys:
        if len(node.keys) != 1 or not isinstance(node.keys[0], ColumnRef):
            return None
        key_name = node.keys[0].name
        if not _column_fully_capable(table, key_name, KERNEL_GROUP_CODES):
            return None

    aggregates: List[Tuple[str, str, Optional[str]]] = []
    for agg in node.aggregates:
        core = logical.unwrap_alias(agg)
        if not isinstance(core, AggExpr) or core.op not in _COMPRESSED_AGG_OPS:
            return None
        if core.operand is None:
            aggregates.append((agg.output_name(), core.op, None))
            continue
        if not isinstance(core.operand, ColumnRef):
            return None
        column = core.operand.name
        if core.op != "count" \
                and not _column_fully_capable(table, column, KERNEL_GATHER):
            return None
        aggregates.append((agg.output_name(), core.op, column))
    return {"key": key_name, "aggregates": aggregates}


def aggregate_execution_domains(node: logical.Aggregate,
                                options: LoweringOptions
                                ) -> List[Tuple[str, str]]:
    """Per-aggregate execution domain labels for ``explain()``.

    Returns ``(label, "compressed" | "decompress")`` pairs — empty when the
    child is not a scan (nothing to say about in-memory frames).
    """
    if not isinstance(node.child, logical.PScan):
        return []
    spec = compressed_aggregate_plan(node, options)
    domain = "decompress" if spec is None else "compressed"
    labels = []
    if node.keys:
        keys = ", ".join(key.output_name() for key in node.keys)
        labels.append((f"group by {keys}", domain))
    labels.extend((agg.output_name(), domain) for agg in node.aggregates)
    return labels


def _exec_aggregate_compressed(node: logical.Aggregate, spec: Dict[str, Any],
                               options: LoweringOptions) -> Frame:
    """Aggregate straight off the compressed chunks: the scan produces only
    a selection, and every aggregate input is computed by the capability
    kernels (whole-form aggregates, positional gathers, dictionary group
    codes).  Bit-identical to the materialising path."""
    child = node.child
    assert isinstance(child, logical.PScan)
    predicates, row_filters = _split_conjuncts(child)
    scan = scan_table(child.table, predicates,
                      use_pushdown=options.use_pushdown,
                      use_zone_maps=options.use_zone_maps,
                      parallelism=options.parallelism,
                      materialize=[],
                      row_filters=row_filters,
                      use_compressed_exec=True,
                      backend=options.backend,
                      cache_bytes=options.cache_bytes,
                      fault_plan=options.fault_plan,
                      fault_policy=options.fault_policy)
    positions = scan.selection.positions.values
    stats = scan.stats if scan.stats is not None else ScanStats()

    #: One positional materialisation per *distinct* operand column, shared
    #: by every aggregate over it (multi-aggregate queries would otherwise
    #: re-walk the chunks once per aggregate).
    gathered_cache: Dict[str, Column] = {}

    def gathered(column: str) -> Column:
        values = gathered_cache.get(column)
        if values is None:
            raw, gather_stats = gather_stored(
                child.table.column(column), positions)
            stats.merge(gather_stats)
            values = gathered_cache[column] = Column(raw)
        return values

    if spec["key"] is None:
        scalars: Dict[str, Any] = {}
        column_uses = [column for __, op, column in spec["aggregates"]
                       if op != "count"]
        for output_name, op, column in spec["aggregates"]:
            if op == "count":
                scalars[output_name] = int(positions.size)
            elif column_uses.count(column) > 1:
                # Several aggregates over one column: gather the selection
                # once and reduce it per op (identical to reducing through
                # the whole-form kernels).
                scalars[output_name] = scalar_aggregate(gathered(column), op)
            else:
                value, agg_stats = aggregate_stored(
                    child.table.column(column), positions, op)
                stats.merge(agg_stats)
                scalars[output_name] = value
        return Frame(columns={}, row_count=int(positions.size),
                     scalars=scalars, stats_list=[stats],
                     aggregated_rows=int(positions.size))

    grouped = group_codes_stored(child.table.column(spec["key"]), positions)
    if grouped is None:  # mixed schemes lost the capability mid-column
        return _exec_aggregate_materialized(node, options)
    unique_keys, codes, group_stats = grouped
    stats.merge(group_stats)
    num_groups = int(unique_keys.size)
    key_output = node.keys[0].output_name()
    columns: Dict[str, Column] = {
        key_output: Column(unique_keys, name=key_output)}
    for output_name, op, column in spec["aggregates"]:
        values = None if op == "count" else gathered(column)
        columns[output_name] = grouped_reduce(codes, num_groups, values,
                                              op).rename(output_name)
    return Frame(columns=columns, row_count=num_groups,
                 stats_list=[stats], aggregated_rows=int(positions.size))


def _partial_aggregate_eligible(table: Table, spec: Dict[str, Any]) -> bool:
    """Whether every aggregate in *spec* has a mergeable partial state.

    Integer sums merge exactly (mod 2**64) under any association; min/max
    are lattice joins; count is a plain sum.  Float sums (scalar or grouped)
    depend on summation order, so they stay on the single-pass path.
    """
    for __, op, column in spec["aggregates"]:
        if op == "sum" and column is not None \
                and not np.issubdtype(table.column(column).dtype, np.integer):
            return False
    return True


def _exec_aggregate_partial(node: logical.Aggregate, spec: Dict[str, Any],
                            options: LoweringOptions) -> Optional[Frame]:
    """Aggregate via per-worker partial states on the process backend.

    Workers scan their chunk ranges and ship mergeable aggregate states
    (:class:`~repro.engine.operators.ScalarAggState` /
    :class:`~repro.engine.operators.GroupedAggState`) instead of positions;
    the coordinator folds them in chunk order with
    :func:`~repro.engine.operators.merge_states`.  Returns ``None`` when the
    process backend cannot run this plan (not a packed table, unpicklable
    spec, or a single effective worker) — the caller then uses the serial
    compressed path.  Results and deterministic stats are bit-identical to
    that path.
    """
    from ..engine import parallel
    from ..engine.scan import _grid_ranges, resolve_parallelism

    child = node.child
    assert isinstance(child, logical.PScan)
    predicates, row_filters = _split_conjuncts(child)
    if not predicates and not row_filters:
        return None  # predicate-less scans skip the range scheduler entirely
    ranges = _grid_ranges(child.table, predicates, row_filters)
    workers = resolve_parallelism(options.parallelism, len(ranges),
                                  child.table.row_count)
    if workers <= 1:
        return None
    from ..engine.resilience import DEFAULT_FAULT_POLICY, plan_from_env

    policy = options.fault_policy if options.fault_policy is not None \
        else DEFAULT_FAULT_POLICY
    plan = options.fault_plan if options.fault_plan is not None \
        else plan_from_env()
    scan_spec = parallel.ScanSpec(
        predicates=tuple(predicates), row_filters=tuple(row_filters),
        use_pushdown=options.use_pushdown,
        use_zone_maps=options.use_zone_maps,
        use_compressed_exec=True, cache_bytes=options.cache_bytes,
        aggregates=spec, fault_plan=plan,
        on_corruption=policy.on_corruption)
    try:
        state, stats, rows = parallel.run_process_aggregate(
            child.table, workers, scan_spec, policy)
    except parallel.ProcessBackendUnavailable:
        return None
    except parallel.ParallelExecutionError:
        if policy.on_fault != "degrade":
            raise
        return None  # degrade: the serial compressed path recomputes it

    if spec["key"] is None:
        scalars = {name: agg_state.finalize()
                   for name, agg_state in state.items()}
        return Frame(columns={}, row_count=rows, scalars=scalars,
                     stats_list=[stats], aggregated_rows=rows)
    key_output = node.keys[0].output_name()
    columns: Dict[str, Column] = {
        key_output: Column(state.keys, name=key_output)}
    for output_name, __, __ in spec["aggregates"]:
        columns[output_name] = Column(state.aggregates[output_name][1],
                                      name=output_name)
    return Frame(columns=columns, row_count=int(state.keys.size),
                 stats_list=[stats], aggregated_rows=rows)


def _exec_aggregate(node: logical.Aggregate, options: LoweringOptions) -> Frame:
    spec = compressed_aggregate_plan(node, options)
    if spec is not None:
        if options.backend == "process" \
                and _partial_aggregate_eligible(node.child.table, spec):
            frame = _exec_aggregate_partial(node, spec, options)
            if frame is not None:
                return frame
        return _exec_aggregate_compressed(node, spec, options)
    return _exec_aggregate_materialized(node, options)


def _exec_aggregate_materialized(node: logical.Aggregate,
                                 options: LoweringOptions) -> Frame:
    child = execute(node.child, options)
    env = child.env()
    if not node.keys:
        scalars: Dict[str, Any] = {}
        for agg in node.aggregates:
            core = logical.unwrap_alias(agg)
            assert isinstance(core, AggExpr)
            name = agg.output_name()
            if core.operand is None:  # count(*)
                scalars[name] = child.row_count
                continue
            values = Column(_evaluate_full(core.operand, env, child.row_count))
            scalars[name] = scalar_aggregate(values, core.op)
        return Frame(columns={}, row_count=child.row_count, scalars=scalars,
                     stats_list=child.stats_list,
                     aggregated_rows=child.row_count)

    key_arrays = [_evaluate_full(key, env, child.row_count) for key in node.keys]
    uniques, codes = _factorize(key_arrays)
    num_groups = int(uniques[0].shape[0])
    columns: Dict[str, Column] = {}
    for key, unique in zip(node.keys, uniques):
        name = key.output_name()
        columns[name] = Column(unique, name=name)
    for agg in node.aggregates:
        core = logical.unwrap_alias(agg)
        assert isinstance(core, AggExpr)
        name = agg.output_name()
        if core.operand is None:
            values: Optional[Column] = None
        else:
            values = Column(_evaluate_full(core.operand, env, child.row_count))
        columns[name] = grouped_reduce(codes, num_groups, values,
                                       core.op).rename(name)
    return Frame(columns=columns, row_count=num_groups,
                 stats_list=child.stats_list,
                 aggregated_rows=child.row_count)


def _sort_codes(expr: Expr, descending: bool, env: Mapping[str, np.ndarray],
                row_count: int) -> np.ndarray:
    """Integer sort codes for one key: factorised ranks, negated for DESC.

    Working in rank space keeps descending order safe for every dtype
    (negating uint64 or boolean values directly would wrap).
    """
    values = _evaluate_full(expr, env, row_count)
    codes = np.unique(values, return_inverse=True)[1].reshape(-1).astype(np.int64)
    return -codes if descending else codes


def _exec_sort(node: logical.Sort, options: LoweringOptions) -> Frame:
    child = execute(node.child, options)
    env = child.env()
    code_arrays = [_sort_codes(key, desc, env, child.row_count)
                   for key, desc in zip(node.by, node.descending)]
    order = np.lexsort(tuple(code_arrays[::-1]))
    return child.take(order)


def _exec_limit(node: logical.Limit, options: LoweringOptions) -> Frame:
    # Top-k: Limit directly above a single-key Sort avoids the full stable
    # permutation — rank codes are still built with one np.unique sort of
    # the key (dtype-safe for uint64/bool), but the frame rows are only
    # partitioned and the k winners sorted.  A position-salted composite key
    # keeps the selection and order bit-identical to full-sort-then-slice.
    child_node = node.child
    if isinstance(child_node, logical.Sort) and len(child_node.by) == 1:
        base = execute(child_node.child, options)
        n = base.row_count
        count = min(node.count, n)
        codes = _sort_codes(child_node.by[0], child_node.descending[0],
                            base.env(), n)
        if 0 < count < n and n < (1 << 31):
            composite = codes * n + np.arange(n, dtype=np.int64)
            top = np.argpartition(composite, count - 1)[:count]
            order = top[np.argsort(composite[top], kind="stable")]
            return base.take(order)
        order = np.lexsort((codes,))[:count]
        return base.take(order)
    child = execute(child_node, options)
    count = min(node.count, child.row_count)
    order = np.arange(count, dtype=np.int64)
    return child.take(order)


def _exec_join(node: logical.Join, options: LoweringOptions) -> Frame:
    left = execute(node.left, options)
    right = execute(node.right, options)
    left_positions, right_positions = hash_join(left.columns[node.left_on],
                                               right.columns[node.right_on])
    lpos = left_positions.values
    rpos = right_positions.values
    columns: Dict[str, Column] = {}
    for name, column in left.columns.items():
        columns[name] = Column(column.values[lpos], name=name)
    right_env = right.columns
    for source, output in node.right_output:
        columns[output] = Column(right_env[source].values[rpos], name=output)
    return Frame(columns=columns, row_count=int(lpos.size),
                 stats_list=left.stats_list + right.stats_list)


_EXECUTORS = {
    logical.PScan: _exec_pscan,
    logical.Filter: _exec_filter,
    logical.Project: _exec_project,
    logical.WithColumn: _exec_with_column,
    logical.Aggregate: _exec_aggregate,
    logical.Sort: _exec_sort,
    logical.Limit: _exec_limit,
    logical.Join: _exec_join,
}


def execute(node: logical.LogicalNode, options: LoweringOptions) -> Frame:
    """Execute an optimized plan node, returning its frame."""
    executor = _EXECUTORS.get(type(node))
    if executor is None:
        raise QueryError(
            f"cannot lower {node.label()}: was the plan optimized first? "
            f"(unexpected node type {type(node).__name__})"
        )
    return executor(node, options)


def run_plan(root: logical.LogicalNode, options: LoweringOptions):
    """Execute an optimized plan and assemble a
    :class:`~repro.engine.query.QueryResult`."""
    from ..engine.query import QueryResult

    frame = execute(root, options)
    if not frame.stats_list:
        stats = None
    elif len(frame.stats_list) == 1:
        stats = frame.stats_list[0]
    else:
        stats = ScanStats()
        for partial in frame.stats_list:
            stats.merge(partial)
    row_count = frame.row_count
    if isinstance(root, logical.Aggregate) and frame.aggregated_rows is not None:
        # The seed engine reports the number of *qualifying input* rows for
        # aggregate queries; keep that contract.
        row_count = frame.aggregated_rows
    return QueryResult(columns=dict(frame.columns), scalars=dict(frame.scalars),
                       row_count=row_count, scan_stats=stats)

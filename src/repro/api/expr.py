"""The lazy expression DSL: ``col("price") * col("qty") > lit(100)``.

Expressions are small immutable trees.  Building one never touches data —
it only records *what* to compute.  Three consumers walk the trees:

* the **logical plan** (:mod:`repro.api.logical`) validates references and
  derives output schemas at construction time;
* the **optimizer** (:mod:`repro.api.optimize`) normalizes boolean structure
  (De Morgan, double negation, CNF splitting) and estimates per-chunk
  selectivity through :meth:`Expr.decide` / :meth:`Expr.bounds` — interval
  arithmetic over the storage layer's zone maps;
* the **lowering pass** (:mod:`repro.api.lower`) compiles predicates onto
  the scan scheduler's pushdown cascade and evaluates derived expressions
  per chunk against the scan's shared decompressed buffers via
  :meth:`Expr.evaluate`.

The operator surface mirrors the NumPy semantics the engine executes:
``+ - * / // %`` arithmetic, ``== != < <= > >=`` comparisons, ``& | ~``
boolean algebra, :meth:`Expr.isin` / :meth:`Expr.between` memberships, and
aggregate constructors ``sum/min/max/mean/count`` with ``.alias(name)``.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError

#: Interval environment: column name -> inclusive (low, high) bounds, or
#: ``None`` when the column's bounds are unknown / untrusted (float columns).
Bounds = Optional[Tuple[float, float]]
BoundsEnv = Mapping[str, Bounds]
#: Value environment: column name -> materialised values (one scan chunk, a
#: gathered slice, or a whole column — expressions are elementwise and do
#: not care).
ValueEnv = Mapping[str, np.ndarray]

_AGG_OPS = ("sum", "min", "max", "mean", "count")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating, bool, np.bool_))


class Expr(abc.ABC):
    """Base class of all DSL expressions."""

    __slots__ = ()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def columns(self) -> List[str]:
        """Referenced column names, in first-use order, without duplicates."""

    @abc.abstractmethod
    def evaluate(self, env: ValueEnv) -> np.ndarray:
        """Evaluate against materialised arrays (elementwise, NumPy semantics)."""

    def output_name(self) -> str:
        """The column name this expression produces in a result."""
        return repr(self)

    def contains_aggregate(self) -> bool:
        """Whether an aggregate (``sum()``, ...) appears anywhere in the tree."""
        return any(child.contains_aggregate() for child in self.children())

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Replace column references per *mapping* (used to inline derived columns)."""
        return self

    # ------------------------------------------------------------------ #
    # Zone-map reasoning (interval arithmetic)
    # ------------------------------------------------------------------ #

    def bounds(self, env: BoundsEnv) -> Bounds:
        """Inclusive value bounds under *env*, or ``None`` when unknown."""
        decision = self.decide(env)
        if decision is True:
            return (1, 1)
        if decision is False:
            return (0, 0)
        return None

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        """Tri-state truth of a boolean expression under *env* bounds.

        ``True`` — every row in a chunk with these bounds qualifies;
        ``False`` — no row can qualify; ``None`` — must be evaluated.
        """
        return None

    # ------------------------------------------------------------------ #
    # Operator overloads (building, never evaluating)
    # ------------------------------------------------------------------ #

    def __add__(self, other: Any) -> "Expr":
        return Arithmetic("+", self, as_expr(other))

    def __radd__(self, other: Any) -> "Expr":
        return Arithmetic("+", as_expr(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Arithmetic("-", self, as_expr(other))

    def __rsub__(self, other: Any) -> "Expr":
        return Arithmetic("-", as_expr(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return Arithmetic("*", self, as_expr(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Arithmetic("*", as_expr(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return Arithmetic("/", self, as_expr(other))

    def __floordiv__(self, other: Any) -> "Expr":
        return Arithmetic("//", self, as_expr(other))

    def __mod__(self, other: Any) -> "Expr":
        return Arithmetic("%", self, as_expr(other))

    def __neg__(self) -> "Expr":
        return Negate(self)

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Comparison("==", self, as_expr(other))

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Comparison("!=", self, as_expr(other))

    def __lt__(self, other: Any) -> "Expr":
        return Comparison("<", self, as_expr(other))

    def __le__(self, other: Any) -> "Expr":
        return Comparison("<=", self, as_expr(other))

    def __gt__(self, other: Any) -> "Expr":
        return Comparison(">", self, as_expr(other))

    def __ge__(self, other: Any) -> "Expr":
        return Comparison(">=", self, as_expr(other))

    def __and__(self, other: Any) -> "Expr":
        return BooleanAnd(self, as_expr(other))

    def __rand__(self, other: Any) -> "Expr":
        return BooleanAnd(as_expr(other), self)

    def __or__(self, other: Any) -> "Expr":
        return BooleanOr(self, as_expr(other))

    def __ror__(self, other: Any) -> "Expr":
        return BooleanOr(as_expr(other), self)

    def __invert__(self) -> "Expr":
        return BooleanNot(self)

    # Comparisons return Exprs, so Python's truthiness would silently pick a
    # branch; fail loudly instead (``and`` / ``or`` / ``if expr`` misuse).
    def __bool__(self) -> bool:
        raise QueryError(
            f"the truth value of the lazy expression {self!r} is undefined; "
            "use & | ~ to combine predicates, not 'and'/'or'/'not'"
        )

    # ``__eq__`` builds a Comparison, so identity is the only sane hash.
    __hash__ = object.__hash__

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    def isin(self, values: Iterable[Any]) -> "Expr":
        """``self ∈ values`` (mirrors :class:`repro.engine.predicates.IsIn`)."""
        return IsInExpr(self, values)

    def between(self, low: Any, high: Any) -> "Expr":
        """``low <= self <= high``, inclusive on both ends."""
        return BetweenExpr(self, low, high)

    def alias(self, name: str) -> "Expr":
        """Name the expression's output column."""
        return Alias(self, name)

    def sum(self) -> "AggExpr":
        return AggExpr("sum", self)

    def min(self) -> "AggExpr":
        return AggExpr("min", self)

    def max(self) -> "AggExpr":
        return AggExpr("max", self)

    def mean(self) -> "AggExpr":
        return AggExpr("mean", self)

    def count(self) -> "AggExpr":
        return AggExpr("count", self)


def as_expr(value: Any) -> Expr:
    """Coerce *value* into an :class:`Expr` (numbers become literals)."""
    if isinstance(value, Expr):
        return value
    if _is_number(value):
        return Literal(value)
    raise QueryError(
        f"cannot use {value!r} (type {type(value).__name__}) in an expression; "
        "expected an Expr or a number"
    )


# --------------------------------------------------------------------------- #
# Leaves
# --------------------------------------------------------------------------- #

class ColumnRef(Expr):
    """A reference to a column by name — build with :func:`col`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise QueryError(f"col() needs a non-empty column name, got {name!r}")
        self.name = name

    def columns(self) -> List[str]:
        return [self.name]

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return env[self.name]

    def bounds(self, env: BoundsEnv) -> Bounds:
        return env.get(self.name)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def output_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return self.name


class Literal(Expr):
    """A constant — build with :func:`lit` (or let numbers coerce)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        if not _is_number(value):
            raise QueryError(f"lit() supports numeric/boolean constants, got {value!r}")
        self.value = value

    def columns(self) -> List[str]:
        return []

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return self.value  # NumPy broadcasting does the rest

    def bounds(self, env: BoundsEnv) -> Bounds:
        v = float(self.value)
        return (v, v)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        if isinstance(self.value, (bool, np.bool_)):
            return bool(self.value)
        return None

    def __repr__(self) -> str:
        return repr(self.value)


# --------------------------------------------------------------------------- #
# Arithmetic
# --------------------------------------------------------------------------- #

_ARITH_FNS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: np.true_divide(a, b),
    "//": lambda a, b: np.floor_divide(a, b),
    "%": lambda a, b: np.mod(a, b),
}


def _merge_columns(parts: Sequence[Expr]) -> List[str]:
    seen: Dict[str, None] = {}
    for part in parts:
        for name in part.columns():
            seen.setdefault(name)
    return list(seen)


class Arithmetic(Expr):
    """A binary arithmetic expression (``+ - * / // %``)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_FNS:
            raise QueryError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> List[str]:
        return _merge_columns((self.left, self.right))

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return _ARITH_FNS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def bounds(self, env: BoundsEnv) -> Bounds:
        lb = self.left.bounds(env)
        rb = self.right.bounds(env)
        if lb is None or rb is None:
            return None
        (llo, lhi), (rlo, rhi) = lb, rb
        if self.op == "+":
            return (llo + rlo, lhi + rhi)
        if self.op == "-":
            return (llo - rhi, lhi - rlo)
        if self.op == "*":
            corners = (llo * rlo, llo * rhi, lhi * rlo, lhi * rhi)
            return (min(corners), max(corners))
        return None  # division / modulo: conservative

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Arithmetic(self.op, self.left.substitute(mapping),
                          self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Negate(Expr):
    """Arithmetic negation (``-expr``)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def columns(self) -> List[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return -self.operand.evaluate(env)

    def bounds(self, env: BoundsEnv) -> Bounds:
        b = self.operand.bounds(env)
        return None if b is None else (-b[1], -b[0])

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Negate(self.operand.substitute(mapping))

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


# --------------------------------------------------------------------------- #
# Comparisons and boolean algebra
# --------------------------------------------------------------------------- #

_CMP_FNS: Dict[str, Callable[[Any, Any], Any]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CMP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_CMP_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Comparison(Expr):
    """A comparison producing a boolean mask."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_FNS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> List[str]:
        return _merge_columns((self.left, self.right))

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return _CMP_FNS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        lb = self.left.bounds(env)
        rb = self.right.bounds(env)
        if lb is None or rb is None:
            return None
        (llo, lhi), (rlo, rhi) = lb, rb
        op = self.op
        if op == "<":
            if lhi < rlo:
                return True
            if llo >= rhi:
                return False
            return None
        if op == "<=":
            if lhi <= rlo:
                return True
            if llo > rhi:
                return False
            return None
        if op == ">":
            return Comparison("<", self.right, self.left).decide(env)
        if op == ">=":
            return Comparison("<=", self.right, self.left).decide(env)
        if op == "==":
            if llo == lhi == rlo == rhi:
                return True
            if lhi < rlo or llo > rhi:
                return False
            return None
        # "!="
        inner = Comparison("==", self.left, self.right).decide(env)
        return None if inner is None else not inner

    def negated(self) -> "Comparison":
        """``NOT (a < b)`` is ``a >= b`` — exact under NumPy total orders."""
        return Comparison(_CMP_NEGATE[self.op], self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Comparison(self.op, self.left.substitute(mapping),
                          self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanAnd(Expr):
    """Conjunction (``&``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def columns(self) -> List[str]:
        return _merge_columns((self.left, self.right))

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return self.left.evaluate(env) & self.right.evaluate(env)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        a, b = self.left.decide(env), self.right.decide(env)
        if a is False or b is False:
            return False
        if a is True and b is True:
            return True
        return None

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return BooleanAnd(self.left.substitute(mapping), self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class BooleanOr(Expr):
    """Disjunction (``|``)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def columns(self) -> List[str]:
        return _merge_columns((self.left, self.right))

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return self.left.evaluate(env) | self.right.evaluate(env)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        a, b = self.left.decide(env), self.right.decide(env)
        if a is True or b is True:
            return True
        if a is False and b is False:
            return False
        return None

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return BooleanOr(self.left.substitute(mapping), self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class BooleanNot(Expr):
    """Negation (``~``)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def columns(self) -> List[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return ~self.operand.evaluate(env)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        inner = self.operand.decide(env)
        return None if inner is None else not inner

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return BooleanNot(self.operand.substitute(mapping))

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


class BetweenExpr(Expr):
    """``low <= operand <= high`` (inclusive, like the engine's ``Between``)."""

    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: Expr, low: Any, high: Any):
        if not _is_number(low) or not _is_number(high):
            raise QueryError(
                f"between() bounds must be numbers, got {low!r} and {high!r}")
        if high < low:
            raise QueryError(f"between(): empty range [{low}, {high}]")
        self.operand = operand
        self.low = low
        self.high = high

    def columns(self) -> List[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        values = self.operand.evaluate(env)
        return (values >= self.low) & (values <= self.high)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        b = self.operand.bounds(env)
        if b is None:
            return None
        lo, hi = b
        if self.low <= lo and hi <= self.high:
            return True
        if hi < self.low or lo > self.high:
            return False
        return None

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return BetweenExpr(self.operand.substitute(mapping), self.low, self.high)

    def __repr__(self) -> str:
        return f"({self.operand!r} BETWEEN {self.low} AND {self.high})"


class IsInExpr(Expr):
    """``operand ∈ candidates``."""

    __slots__ = ("operand", "candidates")

    def __init__(self, operand: Expr, candidates: Iterable[Any]):
        values = tuple(sorted(set(candidates)))
        if not values:
            raise QueryError("isin() requires at least one candidate value")
        if not all(_is_number(v) for v in values):
            raise QueryError(f"isin() candidates must be numbers, got {values!r}")
        self.operand = operand
        self.candidates = values

    def columns(self) -> List[str]:
        return self.operand.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return np.isin(self.operand.evaluate(env), np.asarray(self.candidates))

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        b = self.operand.bounds(env)
        if b is None:
            return None
        lo, hi = b
        if hi < self.candidates[0] or lo > self.candidates[-1]:
            return False
        if lo == hi and lo in self.candidates:
            return True
        return None

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return IsInExpr(self.operand.substitute(mapping), self.candidates)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.candidates)
        return f"({self.operand!r} IN ({inner}))"


# --------------------------------------------------------------------------- #
# Aggregates and aliases
# --------------------------------------------------------------------------- #

class AggExpr(Expr):
    """An aggregate over an (optional) input expression.

    ``operand=None`` is ``count(*)``.  Aggregates may only appear in
    :meth:`Dataset.agg` / :meth:`GroupedDataset.agg` — the logical plan
    rejects them inside filters, projections and sort keys.
    """

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Optional[Expr]):
        if op not in _AGG_OPS:
            raise QueryError(f"unknown aggregate {op!r}; known: {_AGG_OPS}")
        if operand is not None and operand.contains_aggregate():
            raise QueryError(
                f"nested aggregates are not supported: {op}({operand!r})")
        if operand is None and op != "count":
            raise QueryError(f'only count may aggregate over "*", not {op!r}')
        self.op = op
        self.operand = operand

    def columns(self) -> List[str]:
        return [] if self.operand is None else self.operand.columns()

    def children(self) -> Tuple[Expr, ...]:
        return () if self.operand is None else (self.operand,)

    def contains_aggregate(self) -> bool:
        return True

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        raise QueryError(
            f"aggregate {self!r} cannot be evaluated elementwise; "
            "use Dataset.agg() / group_by().agg()"
        )

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        if self.operand is None:
            return self
        return AggExpr(self.op, self.operand.substitute(mapping))

    def output_name(self) -> str:
        inner = "*" if self.operand is None else self.operand.output_name()
        return f"{self.op}({inner})"

    def __repr__(self) -> str:
        inner = "*" if self.operand is None else repr(self.operand)
        return f"{self.op}({inner})"


class Alias(Expr):
    """A transparent rename of an expression's output column."""

    __slots__ = ("inner", "name")

    def __init__(self, inner: Expr, name: str):
        if not isinstance(name, str) or not name:
            raise QueryError(f"alias() needs a non-empty name, got {name!r}")
        self.inner = inner
        self.name = name

    def columns(self) -> List[str]:
        return self.inner.columns()

    def children(self) -> Tuple[Expr, ...]:
        return (self.inner,)

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        return self.inner.evaluate(env)

    def bounds(self, env: BoundsEnv) -> Bounds:
        return self.inner.bounds(env)

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        return self.inner.decide(env)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return Alias(self.inner.substitute(mapping), self.name)

    def output_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{self.inner!r} AS {self.name}"


class WrappedPredicate(Expr):
    """An engine :class:`~repro.engine.predicates.Predicate` lifted into the DSL.

    Used by the :class:`~repro.engine.query.Query` compatibility shim so the
    lowering pass hands the *exact same predicate object* back to the scan —
    guaranteeing bit-identical results and :class:`ScanStats` versus the
    pre-DSL engine.
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Any):
        self.predicate = predicate

    def columns(self) -> List[str]:
        return [self.predicate.column_name]

    def evaluate(self, env: ValueEnv) -> np.ndarray:
        from ..columnar.column import Column
        return self.predicate.evaluate(Column(env[self.predicate.column_name])).values

    def decide(self, env: BoundsEnv) -> Optional[bool]:
        return None  # chunk decisions go through the predicate itself in the scan

    def __repr__(self) -> str:
        return repr(self.predicate)


# --------------------------------------------------------------------------- #
# Boolean normalization (shared by the optimizer)
# --------------------------------------------------------------------------- #

def normalize_boolean(expr: Expr) -> Expr:
    """Push ``NOT`` inward (De Morgan) and drop double negations.

    ``~(a | b)`` becomes ``~a & ~b`` so CNF splitting can push both halves
    into the scan independently; ``~(a < b)`` becomes ``a >= b`` which the
    lowering pass may turn into a native range predicate.
    """
    if isinstance(expr, BooleanNot):
        inner = expr.operand
        if isinstance(inner, BooleanNot):
            return normalize_boolean(inner.operand)
        if isinstance(inner, BooleanOr):
            return BooleanAnd(normalize_boolean(BooleanNot(inner.left)),
                              normalize_boolean(BooleanNot(inner.right)))
        if isinstance(inner, BooleanAnd):
            return BooleanOr(normalize_boolean(BooleanNot(inner.left)),
                             normalize_boolean(BooleanNot(inner.right)))
        if isinstance(inner, Comparison):
            return inner.negated()
        return BooleanNot(normalize_boolean(inner))
    if isinstance(expr, BooleanAnd):
        return BooleanAnd(normalize_boolean(expr.left), normalize_boolean(expr.right))
    if isinstance(expr, BooleanOr):
        return BooleanOr(normalize_boolean(expr.left), normalize_boolean(expr.right))
    return expr


def split_conjuncts(expr: Expr) -> List[Expr]:
    """CNF-split a normalized expression into its top-level AND conjuncts."""
    if isinstance(expr, BooleanAnd):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    if isinstance(expr, Alias):
        return split_conjuncts(expr.inner)
    return [expr]


# --------------------------------------------------------------------------- #
# Public constructors
# --------------------------------------------------------------------------- #

def col(name: str) -> ColumnRef:
    """Reference a column by name: ``col("price")``."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """A literal constant: ``lit(100)``."""
    return Literal(value)


def count() -> AggExpr:
    """``count(*)`` — counts qualifying rows (per group under ``group_by``)."""
    return AggExpr("count", None)

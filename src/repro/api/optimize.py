"""The logical optimizer: normalize, push down, reorder, prune.

Passes, in order:

1. **Filter normalization and pushdown** — predicates are boolean-normalized
   (De Morgan, double-negation, ``NOT`` of comparisons folded into flipped
   comparisons), CNF-split into conjuncts, and pushed as close to the scans
   as legality allows: below ``sort``, below ``select``/``with_column``
   (rewriting through the derived-column definitions), below ``join`` to
   whichever side(s) the conjunct's columns come from (a conjunct on a
   shared join key goes to *both* sides), and below ``group_by`` when it
   touches only group keys.  Scans become :class:`~repro.api.logical.PScan`
   nodes carrying their conjunct lists.
2. **Select-below-sort** — a projection sitting above a sort slides beneath
   it when the sort keys survive the projection, so the sort moves less
   data and the projection can fuse into the scan.
3. **Fold, classify, reorder, prune** — ``select``/``with_column`` chains
   above a scan fold into it (derived expressions inlined down to base
   columns); each conjunct is classified (native predicate / single-column
   expression / multi-column row filter) and annotated with a zone-map
   selectivity estimate; conjuncts are reordered cheapest-and-most-selective
   first (disable with ``preserve_filter_order``); and the scan's
   ``materialize`` list is pruned to exactly the base columns the rest of
   the plan reads.

Selectivity estimation is interval arithmetic over chunk statistics: for a
range conjunct the per-chunk estimate is the overlap fraction of the
predicate's interval with the chunk's [min, max]; for point/membership
conjuncts it is ``k / distinct_count``; anything else falls back to the
tri-state ``decide()`` (1, 0, or an uninformative 0.5).  Estimates are
weighted by chunk row counts.  Only integer columns participate — float
zone maps are rounded by the statistics layer and cannot be trusted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..engine.predicates import Between as _Between, Equals as _Equals, \
    IsIn as _IsIn
from ..errors import QueryError
from ..storage.table import Table
from . import logical
from .expr import (
    BetweenExpr,
    ColumnRef,
    Comparison,
    Expr,
    IsInExpr,
    WrappedPredicate,
    normalize_boolean,
    split_conjuncts,
)
from .lower import LoweringOptions, _column_bounds, _comparison_parts, \
    classify_conjunct

__all__ = ["optimize", "estimate_selectivity"]

_KIND_RANK = {"native": 0, "expr": 1, "rows": 2}


def _conjoin(conjuncts: Sequence[Expr]) -> Expr:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = result & conjunct
    return result


def _ordered_unique(names: Sequence[str]) -> List[str]:
    return list(dict.fromkeys(names))


# --------------------------------------------------------------------------- #
# Pass 1: filter normalization and pushdown
# --------------------------------------------------------------------------- #

def _push_filters(node: logical.LogicalNode,
                  conjuncts: List[Expr]) -> logical.LogicalNode:
    """Push *conjuncts* (valid against ``node.schema()``) below *node*."""
    if isinstance(node, logical.Filter):
        own = [normalize_boolean(c) for c in split_conjuncts(node.predicate)]
        # Tautological column-free conjuncts (the `lit(True)` half of a CNF
        # split) are dropped here; false constants keep flowing — they are
        # pushable below every node (the result is empty either way) and
        # fold the scan to always-empty.
        own = [c for c in own
               if c.columns() or not bool(np.asarray(c.evaluate({})))]
        # The node's own filter ran closer to the scan, so it goes first.
        return _push_filters(node.child, own + conjuncts)

    if isinstance(node, logical.Scan):
        raw = [logical.Conjunct(expr=expr, kind="raw", source_order=index)
               for index, expr in enumerate(conjuncts)]
        return logical.PScan(node.table, node.name, raw,
                             materialize=list(node.schema()), derived=[],
                             output=list(node.schema()))

    if isinstance(node, logical.WithColumn):
        mapping = {node.name: node.expr}
        pushed = [c.substitute(mapping) for c in conjuncts]
        return logical.WithColumn(_push_filters(node.child, pushed),
                                  node.name, node.expr)

    if isinstance(node, logical.Project):
        mapping = {expr.output_name(): logical.unwrap_alias(expr)
                   for expr in node.exprs}
        pushed = [c.substitute(mapping) for c in conjuncts]
        return logical.Project(_push_filters(node.child, pushed), node.exprs)

    if isinstance(node, logical.Sort):
        return logical.Sort(_push_filters(node.child, conjuncts),
                            node.by, node.descending)

    if isinstance(node, logical.Limit):
        # A filter must not slide below a limit — except column-free (false)
        # constants, which empty the result on either side.
        constant = [c for c in conjuncts if not c.columns()]
        blocked = [c for c in conjuncts if c.columns()]
        below = logical.Limit(_push_filters(node.child, constant), node.count)
        if blocked:
            return logical.Filter(below, _conjoin(blocked))
        return below

    if isinstance(node, logical.Aggregate):
        key_map = {key.output_name(): key for key in node.keys}
        pushable: List[Expr] = []
        residual: List[Expr] = []
        for conjunct in conjuncts:
            refs = set(conjunct.columns())
            # Key-only conjuncts commute with grouping; column-free (false)
            # constants empty the result on either side of it.
            if refs <= set(key_map):
                pushable.append(conjunct.substitute(key_map))
            else:
                residual.append(conjunct)
        rebuilt = logical.Aggregate(_push_filters(node.child, pushable),
                                    node.keys, node.aggregates)
        if residual:
            return logical.Filter(rebuilt, _conjoin(residual))
        return rebuilt

    if isinstance(node, logical.Join):
        left_names = set(node.left.schema())
        right_map: Dict[str, str] = {output: source
                                     for source, output in node.right_output}
        if node.left_on == node.right_on:
            # The shared key survives under the left name; a conjunct on it
            # restricts both inputs.
            right_map.setdefault(node.left_on, node.right_on)
        right_sub = {output: ColumnRef(source)
                     for output, source in right_map.items()}
        to_left: List[Expr] = []
        to_right: List[Expr] = []
        residual = []
        for conjunct in conjuncts:
            refs = set(conjunct.columns())
            fits_left = refs <= left_names
            fits_right = refs <= set(right_map)
            if fits_left:
                to_left.append(conjunct)
            if fits_right:
                to_right.append(conjunct.substitute(right_sub))
            if not fits_left and not fits_right:
                residual.append(conjunct)
        rebuilt = logical.Join(_push_filters(node.left, to_left),
                               _push_filters(node.right, to_right),
                               node.left_on, node.right_on, node.suffix)
        if residual:
            return logical.Filter(rebuilt, _conjoin(residual))
        return rebuilt

    raise QueryError(f"optimizer cannot push filters through {node.label()}")


# --------------------------------------------------------------------------- #
# Pass 2: select below sort
# --------------------------------------------------------------------------- #

def _map_children(node: logical.LogicalNode, fn) -> logical.LogicalNode:
    if isinstance(node, (logical.PScan, logical.Scan)):
        return node
    if isinstance(node, logical.Filter):
        return logical.Filter(fn(node.child), node.predicate)
    if isinstance(node, logical.Project):
        return logical.Project(fn(node.child), node.exprs)
    if isinstance(node, logical.WithColumn):
        return logical.WithColumn(fn(node.child), node.name, node.expr)
    if isinstance(node, logical.Aggregate):
        return logical.Aggregate(fn(node.child), node.keys, node.aggregates)
    if isinstance(node, logical.Sort):
        return logical.Sort(fn(node.child), node.by, node.descending)
    if isinstance(node, logical.Limit):
        return logical.Limit(fn(node.child), node.count)
    if isinstance(node, logical.Join):
        return logical.Join(fn(node.left), fn(node.right),
                            node.left_on, node.right_on, node.suffix)
    raise QueryError(f"optimizer cannot rebuild {node.label()}")


def _select_below_sort(node: logical.LogicalNode) -> logical.LogicalNode:
    node = _map_children(node, _select_below_sort)
    if isinstance(node, logical.Project) and isinstance(node.child, logical.Sort):
        sort = node.child
        passthrough: Set[str] = set()
        for expr in node.exprs:
            core = logical.unwrap_alias(expr)
            if isinstance(core, ColumnRef) and core.name == expr.output_name():
                passthrough.add(core.name)
        if all(set(key.columns()) <= passthrough for key in sort.by):
            return logical.Sort(logical.Project(sort.child, node.exprs),
                                sort.by, sort.descending)
    return node


# --------------------------------------------------------------------------- #
# Selectivity estimation
# --------------------------------------------------------------------------- #

def _extract_interval(expr: Expr
                      ) -> Optional[Tuple[str, Optional[int], Optional[int], int]]:
    """Decompose a simple single-column conjunct into
    ``(column, low, high, candidate_count)``; ``None`` bounds are open ends,
    ``candidate_count > 0`` marks point/membership predicates."""
    if isinstance(expr, WrappedPredicate):
        predicate = expr.predicate
        if isinstance(predicate, _Between):
            return predicate.column_name, predicate.bounds.low, \
                predicate.bounds.high, 0
        if isinstance(predicate, _Equals) and isinstance(predicate.value, int):
            return predicate.column_name, predicate.value, predicate.value, 1
        if isinstance(predicate, _IsIn):
            return predicate.column_name, int(predicate.candidates.min()), \
                int(predicate.candidates.max()), int(predicate.candidates.size)
        return None
    if isinstance(expr, BetweenExpr) and isinstance(expr.operand, ColumnRef):
        try:
            return expr.operand.name, int(expr.low), int(expr.high), 0
        except (TypeError, ValueError):
            return None
    if isinstance(expr, IsInExpr) and isinstance(expr.operand, ColumnRef):
        values = expr.candidates
        if not all(isinstance(v, (int, np.integer)) for v in values):
            return None
        return expr.operand.name, int(min(values)), int(max(values)), len(values)
    if isinstance(expr, Comparison):
        parts = _comparison_parts(expr)
        if parts is None:
            return None
        name, op, value = parts
        if op == "==":
            return name, value, value, 1
        if op == "<":
            return name, None, value - 1, 0
        if op == "<=":
            return name, None, value, 0
        if op == ">":
            return name, value + 1, None, 0
        if op == ">=":
            return name, value, None, 0
        return None  # "!="
    return None


def estimate_selectivity(expr: Expr, table: Table) -> Optional[float]:
    """Estimated fraction of rows satisfying *expr*, from zone maps alone.

    Returns ``None`` when the statistics carry no information (float
    columns, opaque expressions over in-range chunks).
    """
    referenced = expr.columns()
    if not referenced:
        return None
    primary = referenced[0]
    stored = table.column(primary)
    primary_trusted = np.issubdtype(stored.dtype, np.integer)
    other_bounds = {name: _column_bounds(table, name) for name in referenced[1:]}
    interval = _extract_interval(expr)

    weighted = 0.0
    total = 0
    informed = False
    for chunk in stored.chunks:
        statistics = chunk.statistics
        if statistics.count == 0:
            continue
        total += statistics.count
        bounds = ((statistics.minimum, statistics.maximum)
                  if primary_trusted and statistics.minimum is not None else None)
        env = {primary: bounds, **other_bounds}
        decision = expr.decide(env)
        if decision is True:
            fraction, knows = 1.0, True
        elif decision is False:
            fraction, knows = 0.0, True
        elif interval is not None and interval[0] == primary and bounds is not None:
            __, low, high, candidates = interval
            smin, smax = bounds
            low = smin if low is None else max(low, smin)
            high = smax if high is None else min(high, smax)
            if high < low:
                fraction = 0.0
            elif candidates:
                fraction = min(1.0, candidates / max(statistics.distinct_count, 1))
            else:
                fraction = min(1.0, (high - low + 1) / (smax - smin + 1))
            knows = True
        else:
            fraction, knows = 0.5, False
        informed = informed or knows
        weighted += fraction * statistics.count
    if not informed or total == 0:
        return None
    return weighted / total


# --------------------------------------------------------------------------- #
# Pass 3: fold projections into scans, classify + reorder, prune
# --------------------------------------------------------------------------- #

def _scan_stage(node: logical.LogicalNode
                ) -> Optional[Tuple[logical.PScan, Dict[str, Expr], List[str]]]:
    """Recognise a ``PScan`` under a chain of ``Project``/``WithColumn``.

    Returns ``(scan, mapping, outputs)`` where *mapping* defines every
    non-passthrough output as an expression over **base** columns and
    *outputs* is the chain's ordered output schema.
    """
    if isinstance(node, logical.PScan):
        return node, {}, list(node.output)
    if isinstance(node, logical.WithColumn):
        stage = _scan_stage(node.child)
        if stage is None:
            return None
        scan, mapping, outputs = stage
        mapping = dict(mapping)
        mapping[node.name] = node.expr.substitute(mapping)
        return scan, mapping, outputs + [node.name]
    if isinstance(node, logical.Project):
        stage = _scan_stage(node.child)
        if stage is None:
            return None
        scan, mapping, __ = stage
        new_mapping: Dict[str, Expr] = {}
        new_outputs: List[str] = []
        for expr in node.exprs:
            name = expr.output_name()
            core = logical.unwrap_alias(expr).substitute(mapping)
            if not (isinstance(core, ColumnRef) and core.name == name):
                new_mapping[name] = core
            new_outputs.append(name)
        return scan, new_mapping, new_outputs
    return None


def _finalize_scan(scan: logical.PScan, mapping: Dict[str, Expr],
                   outputs: List[str], required: Optional[Sequence[str]],
                   options: LoweringOptions) -> logical.PScan:
    needed = _ordered_unique(list(required) if required is not None else outputs)
    notes: List[str] = []
    always_empty = False
    live: List[logical.Conjunct] = []
    for conjunct in scan.conjuncts:
        # Constant-fold column-free conjuncts (e.g. the `lit(True)` half of
        # a CNF split) — they must never reach the scan, which schedules and
        # evaluates in terms of referenced columns.
        if not conjunct.expr.columns():
            if bool(np.asarray(conjunct.expr.evaluate({}))):
                notes.append(f"constant conjunct {conjunct.expr!r} folded away")
            else:
                notes.append(f"constant conjunct {conjunct.expr!r} is false — "
                             "scan folded to empty")
                always_empty = True
            continue
        live.append(conjunct)
    conjuncts = [classify_conjunct(c.expr, scan.table, c.source_order)
                 for c in live]
    for conjunct in conjuncts:
        conjunct.selectivity = estimate_selectivity(conjunct.expr, scan.table)
        if not options.use_pushdown:
            # With pushdown disabled every conjunct evaluates on
            # decompressed values, whatever the forms could have done.
            conjunct.domain = "decompress"
    if not options.preserve_filter_order:
        conjuncts = sorted(
            conjuncts,
            key=lambda c: (c.selectivity if c.selectivity is not None else 1.5,
                           _KIND_RANK[c.kind], c.source_order))
    else:
        # Row filters still run after the per-column cascade physically;
        # keep the source order within each class.
        conjuncts = sorted(conjuncts, key=lambda c: c.source_order)
    if [c.source_order for c in conjuncts] != sorted(c.source_order
                                                     for c in conjuncts):
        notes.append("conjuncts reordered by estimated selectivity")
    materialize = [name for name in needed if name not in mapping]
    derived = [(name, mapping[name]) for name in needed if name in mapping]
    base_count = len(scan.table.column_names)
    if len(materialize) < base_count:
        notes.append(f"projection pruned to {len(materialize)} of "
                     f"{base_count} base columns")
    return logical.PScan(scan.table, scan.name, conjuncts, materialize,
                         derived, needed, notes, always_empty=always_empty)


def _fold(node: logical.LogicalNode, required: Optional[Sequence[str]],
          options: LoweringOptions) -> logical.LogicalNode:
    stage = _scan_stage(node)
    if stage is not None:
        scan, mapping, outputs = stage
        return _finalize_scan(scan, mapping, outputs, required, options)

    if isinstance(node, logical.Filter):
        base = list(required) if required is not None else list(node.schema())
        child_required = _ordered_unique(base + node.predicate.columns())
        return logical.Filter(_fold(node.child, child_required, options),
                              node.predicate)

    if isinstance(node, logical.Project):
        child_required = _ordered_unique(
            [name for expr in node.exprs for name in expr.columns()])
        return logical.Project(_fold(node.child, child_required, options),
                               node.exprs)

    if isinstance(node, logical.WithColumn):
        if required is None:
            child_required = None
        else:
            child_required = _ordered_unique(
                [name for name in required if name != node.name]
                + node.expr.columns())
        return logical.WithColumn(_fold(node.child, child_required, options),
                                  node.name, node.expr)

    if isinstance(node, logical.Aggregate):
        child_required = _ordered_unique(
            [name for key in node.keys for name in key.columns()]
            + [name for agg in node.aggregates for name in agg.columns()])
        return logical.Aggregate(_fold(node.child, child_required, options),
                                 node.keys, node.aggregates)

    if isinstance(node, logical.Sort):
        base = list(required) if required is not None else list(node.schema())
        child_required = _ordered_unique(
            base + [name for key in node.by for name in key.columns()])
        return logical.Sort(_fold(node.child, child_required, options),
                            node.by, node.descending)

    if isinstance(node, logical.Limit):
        return logical.Limit(_fold(node.child, required, options), node.count)

    if isinstance(node, logical.Join):
        wanted = list(required) if required is not None else list(node.schema())
        right_map = {output: source for source, output in node.right_output}
        left_schema = set(node.left.schema())
        left_required = [name for name in wanted if name in left_schema]
        right_required = [right_map[name] for name in wanted
                         if name in right_map]
        # Keep left columns whose presence forces the suffix on a required
        # right output — pruning them would silently rename join outputs.
        for source, output in node.right_output:
            if output in wanted and output != source:
                left_required.append(source)
        left_required = _ordered_unique(left_required + [node.left_on])
        right_required = _ordered_unique(right_required + [node.right_on])
        return logical.Join(_fold(node.left, left_required, options),
                            _fold(node.right, right_required, options),
                            node.left_on, node.right_on, node.suffix)

    raise QueryError(f"optimizer cannot fold {node.label()}")


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #

def optimize(root: logical.LogicalNode,
             options: Optional[LoweringOptions] = None) -> logical.LogicalNode:
    """Rewrite a user-built logical plan into its optimized, lowerable form."""
    options = options or LoweringOptions()
    node = _push_filters(root, [])
    node = _select_below_sort(node)
    return _fold(node, None, options)

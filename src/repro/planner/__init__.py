"""Compression planning: cost model, scheme advisor, partial-decompression rules.

The planner turns the paper's enlarged scheme space — stand-alone schemes
plus the composites its decomposition view suggests — into per-column
decisions (:mod:`repro.planner.advisor`), and decides how far a query needs
to decompress at all (:mod:`repro.planner.partial`).
"""

from .advisor import (
    AdvisorReport,
    CandidateEvaluation,
    advise,
    choose_scheme,
    default_candidates,
)
from .cost_model import (
    SchemeCostEstimate,
    estimate_bits_per_value,
    measure_bits_per_value,
    measure_decompression_cost,
)
from .partial import INTENTS, PartialPlan, plan_for_intent

__all__ = [
    "AdvisorReport",
    "CandidateEvaluation",
    "advise",
    "choose_scheme",
    "default_candidates",
    "SchemeCostEstimate",
    "estimate_bits_per_value",
    "measure_bits_per_value",
    "measure_decompression_cost",
    "INTENTS",
    "PartialPlan",
    "plan_for_intent",
]

"""Partial-decompression planning.

Lessons-learned 1 of the paper: partial decompression of one scheme's
compressed form often *is* another scheme's compressed form, trading
compression ratio for decompression ease — and since decompression is made
of query operators, a query may not need to decompress at all.

This module decides, for a (query intent, compressed form) pair, how far to
decompress:

* ``"none"``      — answer directly on the compressed form (e.g. SUM over
  qualifying rows of an RLE/RPE column can stay in the run domain);
* ``"partial"``   — execute a prefix of the decompression plan and answer on
  the intermediate representation (e.g. convert RLE to RPE by one prefix
  sum to enable cheap positional access, or evaluate only the model part of
  FOR for approximate answers);
* ``"full"``      — materialise the values and proceed conventionally.

The decisions are intentionally rule-based and transparent: each returns a
:class:`PartialPlan` naming the strategy, the plan fragment to run, and the
reasoning, which the E10 benchmark prints alongside its measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..columnar.plan import Plan
from ..errors import PlanningError
from ..schemes.base import CompressedForm, CompressionScheme
from ..schemes.rle import build_rle_decompression_plan

#: Query intents the partial planner understands.
INTENTS = ("full_scan", "range_aggregate", "point_lookup", "range_filter",
           "approximate_aggregate")


@dataclass
class PartialPlan:
    """A decision about how far to decompress for a given query intent.

    Attributes
    ----------
    strategy:
        ``"none"``, ``"partial"`` or ``"full"``.
    plan:
        The operator-plan fragment to execute (``None`` when no columnar
        work is needed, e.g. run-domain aggregation handled by the pushdown
        kernels).
    stop_after:
        When *plan* is the scheme's full decompression plan, the binding to
        stop at (partial evaluation); ``None`` to run it to completion.
    reason:
        One-line human-readable justification (surfaced by benchmarks).
    """

    strategy: str
    plan: Optional[Plan]
    stop_after: Optional[str]
    reason: str

    def execute(self, scheme: CompressionScheme, form: CompressedForm):
        """Run the decided plan fragment through the compiled executor.

        Partial evaluation no longer relies on the interpreter's
        ``stop_after`` early-exit: the plan is *truncated* at the stop
        binding, and the truncated plan is optimized, compiled and cached in
        its own right (:mod:`repro.columnar.compile`), so e.g. "Algorithm 1
        up to the prefix sum" costs one compilation ever, then pure
        execution.  Returns the materialised column, or ``None`` for the
        ``"none"`` strategy (the pushdown kernels answer without any
        columnar work).
        """
        if self.plan is None:
            return None
        from ..columnar.compile import compiled_partial_plan, compiled_plan

        if self.stop_after is not None:
            compiled = compiled_partial_plan(self.plan, self.stop_after)
        else:
            compiled = compiled_plan(self.plan)
        return compiled.run(scheme.plan_inputs(form))


def plan_for_intent(scheme: CompressionScheme, form: CompressedForm,
                    intent: str) -> PartialPlan:
    """Decide a decompression strategy for *intent* over *form*.

    The rules encode the paper's examples:

    * run-compressed columns (RLE/RPE) answer range aggregates in the run
      domain and point lookups via RPE positions — RLE first converts itself
      to RPE by executing exactly the first step of Algorithm 1;
    * FOR-family columns answer approximate aggregates from the model alone
      (stop before the offsets are added) and range filters via segment
      bounds;
    * anything else, or a full scan, decompresses fully.
    """
    if intent not in INTENTS:
        raise PlanningError(f"unknown query intent {intent!r}; known: {INTENTS}")

    scheme_name = form.scheme

    if intent == "full_scan":
        return PartialPlan("full", scheme.decompression_plan(form), None,
                           "a full scan needs every value materialised")

    if scheme_name in ("RLE", "RPE"):
        if intent in ("range_aggregate", "range_filter", "approximate_aggregate"):
            return PartialPlan(
                "none", None, None,
                "run-compressed data answers range predicates and aggregates in "
                "the run domain (one verdict per run, lengths as weights)",
            )
        if intent == "point_lookup":
            if scheme_name == "RPE":
                return PartialPlan(
                    "none", None, None,
                    "RPE stores run end positions; a point lookup is one binary search",
                )
            rle_plan = build_rle_decompression_plan()
            return PartialPlan(
                "partial", rle_plan, "run_positions",
                "RLE converts to RPE by executing only Algorithm 1's first step "
                "(prefix sum of lengths); lookups then binary-search the positions",
            )

    if scheme_name in ("FOR", "PFOR", "STEPFUNCTION"):
        if intent == "approximate_aggregate":
            plan = scheme.decompression_plan(form)
            # STEPFUNCTION's own plan already evaluates just the model; for
            # FOR/PFOR we stop right after the reference replication, i.e.
            # before the offsets are added back.
            stop_after = None if scheme_name == "STEPFUNCTION" else "replicated"
            return PartialPlan(
                "partial", plan, stop_after,
                "the step-function model (Algorithm 2 truncated before the final "
                "addition) approximates every value to within the offset width",
            )
        if intent == "range_filter":
            return PartialPlan(
                "none", None, None,
                "segment reference bounds accept/reject whole segments; only "
                "straddling segments decode their offsets",
            )

    if scheme_name == "DICT" and intent in ("range_filter", "range_aggregate"):
        return PartialPlan(
            "none", None, None,
            "an order-preserving dictionary rewrites the range onto codes; the "
            "values column is never reconstructed",
        )

    return PartialPlan("full", scheme.decompression_plan(form), None,
                       f"no partial strategy applies to {scheme_name} for {intent}")

"""The compression advisor: choose a scheme (or cascade) per column.

Given a column (or a sample of it), the advisor:

1. computes statistics (:mod:`repro.storage.statistics`);
2. draws up a candidate list — the stand-alone schemes plus the cascades the
   decomposition view makes natural (RLE∘DELTA-on-values for sorted runs,
   DELTA-under-NS via FOR for smooth data, ...);
3. scores every candidate by *measured* bits-per-value and decompression
   cost on a sample (statistics-only estimates are used to prune candidates
   that cannot win, so the expensive trial compressions stay few);
4. returns a ranked :class:`AdvisorReport`.

The advisor is deliberately empirical ("compress a sample and look") — the
thing the paper contributes is the *space of candidates*, in particular the
composites; the advisor's job is to search that space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..columnar.column import Column
from ..errors import CompressionError, PlanningError
from ..schemes import (
    Cascade,
    Delta,
    DictionaryEncoding,
    FrameOfReference,
    Identity,
    NullSuppression,
    PatchedFrameOfReference,
    PiecewiseLinear,
    RunLengthEncoding,
    RunPositionEncoding,
    VariableWidth,
)
from ..schemes.base import CompressionScheme
from ..storage.statistics import ColumnStatistics, compute_statistics
from .cost_model import form_pushdown_capability, measure_decompression_cost


@dataclass
class CandidateEvaluation:
    """One candidate scheme's measured performance on the sample."""

    scheme: CompressionScheme
    bits_per_value: float
    decompression_cost_per_value: float
    error: Optional[str] = None
    #: Whether the scheme's forms evaluate range predicates in the
    #: compressed domain (:data:`repro.schemes.base.KERNEL_FILTER_RANGE`).
    #: Query-time cost the size/decompression pair cannot see; used to break
    #: near-ties in the ranking.
    pushdown_capable: bool = False

    @property
    def feasible(self) -> bool:
        return self.error is None

    def score(self, size_weight: float = 1.0, speed_weight: float = 0.25) -> float:
        if not self.feasible:
            return float("inf")
        return (size_weight * self.bits_per_value
                + speed_weight * self.decompression_cost_per_value)


@dataclass
class AdvisorReport:
    """The advisor's ranked verdict for one column."""

    column_name: str
    statistics: ColumnStatistics
    evaluations: List[CandidateEvaluation] = field(default_factory=list)
    size_weight: float = 1.0
    speed_weight: float = 0.25
    #: Relative score margin within which two candidates count as tied; ties
    #: break toward pushdown-capable schemes (query-time cost the
    #: size/decompression score ignores).
    tie_margin: float = 0.02

    @property
    def best(self) -> CandidateEvaluation:
        """The winning candidate: lowest score, with near-ties (within
        ``tie_margin``, relative) broken toward pushdown-capable schemes.

        The size/decompression score is deliberately blind to *query-time*
        cost; when it cannot separate two schemes, the one whose forms can
        evaluate predicates without decompressing is strictly better to
        query and wins the tie.
        """
        feasible = [e for e in self.evaluations if e.feasible]
        if not feasible:
            raise PlanningError(f"no feasible scheme for column {self.column_name!r}")
        scores = {id(e): e.score(self.size_weight, self.speed_weight)
                  for e in feasible}
        threshold = min(scores.values()) * (1.0 + self.tie_margin) + 1e-12
        contenders = [e for e in feasible if scores[id(e)] <= threshold]
        return min(contenders,
                   key=lambda e: (not e.pushdown_capable, scores[id(e)]))

    def ranked(self) -> List[CandidateEvaluation]:
        """All feasible evaluations, best first (pushdown breaks exact ties)."""
        feasible = [e for e in self.evaluations if e.feasible]
        return sorted(feasible,
                      key=lambda e: (e.score(self.size_weight, self.speed_weight),
                                     not e.pushdown_capable))

    def summary(self) -> str:
        """A small text table of the ranking (scheme, bits/value, cost)."""
        lines = [f"Advisor report for {self.column_name!r} "
                 f"(n={self.statistics.count}, runs={self.statistics.run_count}, "
                 f"distinct={self.statistics.distinct_count})"]
        for evaluation in self.ranked():
            lines.append(
                f"  {evaluation.scheme.describe():55s} "
                f"{evaluation.bits_per_value:8.2f} bits/value   "
                f"cost {evaluation.decompression_cost_per_value:8.2f}   "
                f"{'pushdown' if evaluation.pushdown_capable else '-'}"
            )
        return "\n".join(lines)


def default_candidates(stats: ColumnStatistics,
                       segment_length: int = 128) -> List[CompressionScheme]:
    """The candidate list for a column with the given statistics.

    Statistics prune obvious non-starters (RLE when there are no runs, DICT
    when nearly every value is distinct) and add the composites that the
    statistics make promising.
    """
    candidates: List[CompressionScheme] = [Identity(), NullSuppression(),
                                           VariableWidth()]
    candidates.append(FrameOfReference(segment_length=segment_length))
    candidates.append(PatchedFrameOfReference(segment_length=segment_length))
    candidates.append(PiecewiseLinear(segment_length=segment_length))
    candidates.append(Delta())

    if stats.average_run_length >= 1.5:
        candidates.append(RunLengthEncoding())
        candidates.append(RunPositionEncoding())
        # The paper's §I example: runs whose values themselves form a smooth
        # (e.g. monotone) sequence compress much further when the run values
        # are DELTA'd and the lengths narrowed.
        candidates.append(Cascade(RunLengthEncoding(),
                                  {"values": Delta(), "lengths": NullSuppression()}))
        candidates.append(Cascade(RunPositionEncoding(),
                                  {"values": Delta(), "run_positions": Delta()}))
    if 1 < stats.distinct_count and stats.distinct_fraction <= 0.5:
        candidates.append(DictionaryEncoding())
    if stats.max_delta_bits <= stats.value_bits:
        candidates.append(Cascade(Delta(narrow=False), {"deltas": NullSuppression()}))
        candidates.append(Cascade(Delta(narrow=False), {"deltas": VariableWidth()}))
    return candidates


def advise(
    column: Column,
    candidates: Optional[Sequence[CompressionScheme]] = None,
    sample_size: int = 8192,
    size_weight: float = 1.0,
    speed_weight: float = 0.25,
    seed: int = 0,
) -> AdvisorReport:
    """Rank candidate schemes for *column* and return an :class:`AdvisorReport`.

    A contiguous sample (plus the column's head) of about *sample_size*
    values is used for the trial compressions; contiguity matters because
    run- and locality-exploiting schemes would be destroyed by random-row
    sampling.
    """
    if len(column) == 0:
        raise PlanningError("cannot advise on an empty column")
    stats = compute_statistics(column)
    if candidates is None:
        candidates = default_candidates(stats)

    sample = column
    if len(column) > sample_size:
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(column) - sample_size + 1))
        sample = Column(column.values[start:start + sample_size], name=column.name)

    report = AdvisorReport(column_name=column.name or "<unnamed>", statistics=stats,
                           size_weight=size_weight, speed_weight=speed_weight)
    for scheme in candidates:
        try:
            form = scheme.compress(sample)
            bits = form.bits_per_value()
            capable = form_pushdown_capability(scheme, form)
            cost = measure_decompression_cost(scheme, sample)
            if not scheme.is_lossless:
                raise CompressionError("lossy model schemes are not stand-alone candidates")
            report.evaluations.append(
                CandidateEvaluation(scheme, bits, cost, pushdown_capable=capable))
        except CompressionError as exc:
            report.evaluations.append(
                CandidateEvaluation(scheme, float("inf"), float("inf"), error=str(exc))
            )
    return report


def choose_scheme(column: Column, **advise_kwargs) -> CompressionScheme:
    """Convenience wrapper: return only the best scheme for *column*.

    This is the callable the storage layer accepts as a per-chunk scheme
    chooser: ``StoredColumn.from_column(col, scheme=choose_scheme)``.
    """
    return advise(column, **advise_kwargs).best.scheme

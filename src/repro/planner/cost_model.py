"""Cost model: estimated size and decompression effort of a scheme on a column.

The paper's framing of compression in a DBMS is explicitly two-sided: the
ratio buys bandwidth, but "overly-demanding decompression would slow down
the speed of processing data below what the incoming bandwidth allows".  A
scheme choice therefore needs *both* numbers, and the planner scores
candidates by a weighted combination of:

* **estimated compressed bits per value**, derived from column statistics
  (and, when a sample is available, refined by actually compressing the
  sample); and
* **decompression effort**, measured hardware-agnostically from the scheme's
  decompression plan: weighted operator invocations and elements touched
  (random-access movement weighted above streaming arithmetic).

Both estimates are intentionally simple, monotone formulas — this is an
advisor that must be right about *which* scheme wins, not about absolute
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..columnar.column import Column
from ..errors import PlanningError
from ..schemes.base import CompressionScheme
from ..storage.statistics import ColumnStatistics


@dataclass(frozen=True)
class SchemeCostEstimate:
    """Estimated cost of using one scheme for one column.

    Attributes
    ----------
    scheme:
        The scheme description string.
    estimated_bits_per_value:
        Expected compressed size per value (lower is better).
    decompression_cost_per_value:
        Weighted operator cost per decompressed value (lower is better).
    feasible:
        Whether the scheme can represent the column at all / is worthwhile
        (e.g. DICT with an enormous dictionary is marked infeasible).
    """

    scheme: str
    estimated_bits_per_value: float
    decompression_cost_per_value: float
    feasible: bool = True

    def score(self, size_weight: float = 1.0, speed_weight: float = 0.25) -> float:
        """Single scalar used for ranking (lower is better)."""
        if not feasible_guard(self):
            return float("inf")
        return (size_weight * self.estimated_bits_per_value
                + speed_weight * self.decompression_cost_per_value)


def feasible_guard(estimate: "SchemeCostEstimate") -> bool:
    """True when the estimate refers to a usable scheme."""
    return estimate.feasible and np.isfinite(estimate.estimated_bits_per_value)


# --------------------------------------------------------------------------- #
# Size estimation from statistics
# --------------------------------------------------------------------------- #

def estimate_bits_per_value(scheme_name: str, stats: ColumnStatistics,
                            segment_length: int = 128) -> float:
    """Estimate compressed bits per value for *scheme_name* from statistics alone.

    The formulas mirror each scheme's actual layout:

    * ``NS``     — the column's value width.
    * ``FOR``    — range width within a segment is unknown from global stats,
      so the global range width is used as a pessimistic bound, plus the
      amortised reference.
    * ``DELTA``  — the width of the largest adjacent difference (zig-zag).
    * ``RLE``    — (value width + length width) per run, amortised over the
      average run length.
    * ``RPE``    — (value width + position width) per run, likewise.
    * ``DICT``   — ``log2(distinct)`` bits per code plus the amortised
      dictionary.
    * ``ID``     — the physical width of the dtype (8 × itemsize ≈ 64).
    """
    if stats.count == 0:
        return 1.0
    n = stats.count
    value_bits = stats.value_bits
    if scheme_name == "ID":
        return 64.0
    if scheme_name == "NS":
        return float(value_bits)
    if scheme_name == "FOR":
        refs_amortised = 64.0 / segment_length
        return float(stats.range_bits) + refs_amortised
    if scheme_name == "DELTA":
        return float(stats.max_delta_bits)
    if scheme_name in ("RLE", "RPE"):
        per_run = value_bits + (64 if scheme_name == "RPE" else stats.range_bits + 1)
        return per_run / max(stats.average_run_length, 1.0)
    if scheme_name == "DICT":
        if stats.distinct_count <= 1:
            code_bits = 1.0
        else:
            code_bits = float(int(stats.distinct_count - 1).bit_length())
        dictionary_amortised = 64.0 * stats.distinct_count / n
        if stats.distinct_fraction > 0.5:
            return float("inf")
        return code_bits + dictionary_amortised
    raise PlanningError(f"no size estimator for scheme {scheme_name!r}")


# --------------------------------------------------------------------------- #
# Decompression-effort estimation from the plan
# --------------------------------------------------------------------------- #

def measure_decompression_cost(scheme: CompressionScheme, sample: Column,
                               optimized: bool = True) -> float:
    """Weighted plan cost per value, measured by decompressing a sample.

    The sample is compressed, its decompression plan evaluated with cost
    accounting, and the weighted cost normalised per output value.  Lossy
    model schemes are charged for their model evaluation.

    By default the cost is measured on the *optimized* plan — the one the
    compiled execution path actually runs (``optimized=False`` recovers the
    uncompiled plan's cost, which is what the operator-counting experiments
    report).  Since the advisor ranks schemes by this number, estimating
    from the unoptimized plan would systematically overcharge schemes whose
    plans the optimizer shrinks the most.
    """
    if len(sample) == 0:
        return 0.0
    form = scheme.compress(sample)
    produced = max(form.original_length, 1)
    if optimized:
        compiled = scheme.compiled_decompression_plan(form)
        result = compiled.run_detailed(scheme.plan_inputs(form), collect_cost=True)
    else:
        plan = scheme.decompression_plan(form)
        result = plan.evaluate_detailed(scheme.plan_inputs(form))
    return result.cost.weighted_cost / produced


def measure_bits_per_value(scheme: CompressionScheme, sample: Column) -> float:
    """Actual compressed bits per value on a sample (refines the estimate)."""
    if len(sample) == 0:
        return 1.0
    form = scheme.compress(sample)
    return form.bits_per_value()


def form_pushdown_capability(scheme: CompressionScheme, form) -> bool:
    """Whether *form* supports predicate pushdown — the
    :data:`~repro.schemes.base.KERNEL_FILTER_RANGE` kernel.

    Query-time cost is the half of the paper's trade-off the bits/cost pair
    alone misses: two schemes with equal size and decompression effort are
    *not* equal if one can evaluate selections without decompressing at all.
    :func:`repro.planner.advisor.advise` records this per candidate (from
    the trial-compressed sample form) and
    :meth:`repro.planner.advisor.AdvisorReport.best` breaks near-ties on it.
    """
    from ..schemes.base import KERNEL_FILTER_RANGE

    return KERNEL_FILTER_RANGE in scheme.kernel_capabilities(form)


def measure_pushdown_capability(scheme: CompressionScheme,
                                sample: Column) -> bool:
    """:func:`form_pushdown_capability` of *scheme* trial-compressed on
    *sample* (for callers without a form at hand; the advisor reuses the
    form it already compressed instead of paying a second compression)."""
    if len(sample) == 0:
        return False
    return form_pushdown_capability(scheme, scheme.compress(sample))

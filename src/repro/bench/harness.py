"""Benchmark harness: timing, comparison rows, and paper-style text tables.

Every experiment (E1–E10, see DESIGN.md) produces rows of named values —
"scheme, workload parameters, compression ratio, decompression cost, time" —
and prints them as a fixed-width table.  The helpers here keep the
per-experiment benchmark modules small and keep their output format uniform
so EXPERIMENTS.md can quote it directly.

Wall-clock numbers are reported alongside the hardware-agnostic quantities
(bits per value, operator counts, elements touched); the reproduction's
claims rest on the latter, as the substrate is NumPy rather than the
vectorised C++/GPU kernels a production engine would use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..columnar.column import Column
from ..schemes.base import CompressionScheme


@dataclass
class TimingResult:
    """Result of timing a callable: best and mean wall-clock seconds."""

    best_seconds: float
    mean_seconds: float
    repeats: int
    result: Any = None


def time_callable(fn: Callable[[], Any], repeats: int = 5,
                  warmup: int = 1) -> TimingResult:
    """Time ``fn()`` with warm-up, returning best/mean seconds and the last result."""
    result = None
    for _ in range(max(0, warmup)):
        result = fn()
    samples = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(best_seconds=min(samples),
                        mean_seconds=sum(samples) / len(samples),
                        repeats=len(samples), result=result)


# --------------------------------------------------------------------------- #
# Comparison rows
# --------------------------------------------------------------------------- #

def compression_row(scheme: CompressionScheme, column: Column,
                    time_decompression: bool = True,
                    repeats: int = 3) -> Dict[str, Any]:
    """Measure one (scheme, column) pair: ratio, bits/value, plan cost, times."""
    compress_timing = time_callable(lambda: scheme.compress(column), repeats=repeats)
    form = compress_timing.result
    row: Dict[str, Any] = {
        "scheme": scheme.describe(),
        "ratio": form.compression_ratio(),
        "bits_per_value": form.bits_per_value(),
        "compress_s": compress_timing.best_seconds,
    }
    if scheme.is_lossless:
        plan = scheme.decompression_plan(form)
        detailed = plan.evaluate_detailed(scheme.plan_inputs(form))
        row["plan_operators"] = detailed.cost.operator_invocations
        row["plan_weighted_cost"] = detailed.cost.weighted_cost
        row["optimized_operators"] = len(scheme.compiled_decompression_plan(form).plan.steps)
        if time_decompression:
            plan_timing = time_callable(lambda: scheme.decompress(form), repeats=repeats)
            interpreted_timing = time_callable(
                lambda: scheme.decompress_interpreted(form), repeats=repeats)
            fused_timing = time_callable(lambda: scheme.decompress_fused(form),
                                         repeats=repeats)
            row["decompress_plan_s"] = plan_timing.best_seconds
            row["decompress_interpreted_s"] = interpreted_timing.best_seconds
            row["decompress_fused_s"] = fused_timing.best_seconds
            row["compiled_speedup"] = (interpreted_timing.best_seconds
                                       / max(plan_timing.best_seconds, 1e-12))
    return row


def compare_schemes(schemes: Sequence[CompressionScheme], column: Column,
                    repeats: int = 3) -> List[Dict[str, Any]]:
    """A compression/decompression comparison row per scheme over one column."""
    return [compression_row(scheme, column, repeats=repeats) for scheme in schemes]


# --------------------------------------------------------------------------- #
# Table formatting
# --------------------------------------------------------------------------- #

def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render rows of dictionaries as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """A named experiment's rows plus free-form notes, with uniform printing."""

    experiment: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        text = format_table(self.rows, columns=columns,
                            title=f"[{self.experiment}] {self.description}")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text

    def print(self, columns: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
        print(self.render(columns=columns))

"""Compressed-execution benchmark: kernels vs decompress-then-compute.

Measures, over a multi-chunk table whose columns are FOR-, DICT- and
RLE-cascade-compressed, the same selective filter+aggregate queries two ways:

* the **compressed** path (the default): range conjuncts dispatch through
  the capability layer (run-domain masks, translated segment bounds,
  word-parallel comparison of packed words), aggregate inputs are gathered
  positionally from the compressed forms, and dictionary group-bys reuse the
  stored codes as group codes;
* the **decompress** path (``.without_pushdown().without_compressed_execution()``):
  every surviving chunk is decompressed and the aggregates reduce over
  materialised values — the classical decompress-then-compute execution.

Zone maps stay ON for both paths (chunk pruning is orthogonal to
compressed-domain execution, and the filter columns are deliberately
unsorted so zone maps cannot decide chunks either way).  Every scenario
asserts bit-identical results between the two paths and records the
compressed-execution counters (``rows_computed_compressed``,
``bytes_decompressed_saved``).  Results go to ``BENCH_compressed_exec.json``.

Run as a module::

    python -m repro.bench.compressed_exec [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..api import Dataset, col, dataset
from ..columnar.compile import clear_caches
from ..schemes import (
    Cascade,
    Delta,
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
)
from ..storage.table import Table
from .harness import time_callable

DEFAULT_NUM_ROWS = 1_000_000
QUICK_NUM_ROWS = 131_072
CHUNK_SIZE = 65_536


def build_table(num_rows: int, seed: int = 20_180_416) -> Tuple[Dict[str, np.ndarray], Table]:
    """The benchmark table.

    * ``mode`` — 16 distinct spread-out values in random order (DICT, packed
      4-bit codes; unsorted so zone maps cannot prune);
    * ``date`` — sorted with long runs (the RLE∘DELTA cascade of the
      paper's §I example, lengths narrowed);
    * ``price`` — a smooth random walk (FOR, packed offsets);
    * ``qty`` — uniform noise (NS, packed).
    """
    rng = np.random.default_rng(seed)
    data = {
        "mode": (rng.integers(0, 16, num_rows) * 5).astype(np.int64),
        "date": np.sort(rng.integers(0, 2_000, num_rows)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, num_rows)) + 100_000).astype(np.int64),
        "qty": rng.integers(0, 1 << 10, num_rows).astype(np.int64),
    }
    table = Table.from_pydict(
        data,
        schemes={
            "mode": DictionaryEncoding(),
            "date": Cascade(
                RunLengthEncoding(),
                {"values": Delta(), "lengths": NullSuppression()},
            ),
            "price": FrameOfReference(segment_length=256),
            "qty": NullSuppression(),
        },
        chunk_size=CHUNK_SIZE,
    )
    return data, table


def _scenarios(data: Dict[str, np.ndarray], table: Table) -> List[Dict[str, Any]]:
    date_hi = int(data["date"].max())
    ds = dataset(table, "bench")
    date_lo = date_hi // 4
    return [
        {
            "name": "selective_filter_sum",
            "description": (
                "dict-code filter (word-parallel) + selective date range, "
                "SUM over FOR-gathered price (the acceptance query)"
            ),
            "dataset": ds.filter(
                col("mode").between(20, 25)
                & col("date").between(date_lo, date_lo + date_hi // 10)
            ).agg(col("price").sum().alias("total")),
        },
        {
            "name": "run_domain_sum",
            "description": (
                "dict filter, SUM/MIN over the RLE∘DELTA cascade in the run domain"
            ),
            "dataset": ds.filter(col("mode") == 35).agg(
                col("date").sum().alias("total"),
                col("date").min().alias("first"),
            ),
        },
        {
            "name": "word_parallel_count",
            "description": "NS packed-word range filter (BitWeaving-style) + count",
            "dataset": ds.filter(col("qty").between(100, 227)).agg(
                col("price").min().alias("floor"),
            ),
        },
        {
            "name": "group_by_dict_codes",
            "description": "date-range filter, GROUP BY dictionary codes, SUM(price)",
            "dataset": ds.filter(col("date").between(date_hi // 3, (date_hi * 2) // 3))
            .group_by("mode")
            .agg(col("price").sum().alias("total")),
        },
    ]


def _assert_identical(compressed, decompressed, name: str) -> None:
    assert compressed.scalars == decompressed.scalars, name
    assert sorted(compressed.columns) == sorted(decompressed.columns), name
    for column in compressed.columns:
        left = compressed.columns[column].values
        right = decompressed.columns[column].values
        assert left.dtype == right.dtype, (name, column)
        assert np.array_equal(left, right), (name, column)


def measure_scenario(scenario: Dict[str, Any], repeats: int) -> Dict[str, Any]:
    fast: Dataset = scenario["dataset"]
    slow: Dataset = fast.without_pushdown().without_compressed_execution()

    compressed = fast.collect()
    baseline = slow.collect()
    _assert_identical(compressed, baseline, scenario["name"])
    stats = compressed.scan_stats
    assert stats is not None and stats.rows_computed_compressed > 0, scenario["name"]

    fast_timing = time_callable(fast.collect, repeats=repeats, warmup=1)
    slow_timing = time_callable(slow.collect, repeats=repeats, warmup=1)
    baseline_stats = baseline.scan_stats
    return {
        "scenario": scenario["name"],
        "description": scenario["description"],
        "rows_selected": compressed.row_count,
        "compressed_s": fast_timing.best_seconds,
        "decompress_s": slow_timing.best_seconds,
        "speedup": slow_timing.best_seconds / max(fast_timing.best_seconds, 1e-12),
        "rows_computed_compressed": stats.rows_computed_compressed,
        "bytes_decompressed_saved": stats.bytes_decompressed_saved,
        "chunks_pushed_down": stats.chunks_pushed_down,
        "chunks_decompressed": stats.chunks_decompressed,
        "baseline_chunks_decompressed": (
            baseline_stats.chunks_decompressed if baseline_stats is not None else None
        ),
    }


def run_benchmark(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, Any]:
    num_rows = QUICK_NUM_ROWS if quick else DEFAULT_NUM_ROWS
    repeats = repeats if repeats is not None else (2 if quick else 5)
    clear_caches()
    data, table = build_table(num_rows)
    rows = [measure_scenario(scenario, repeats) for scenario in _scenarios(data, table)]
    return {
        "benchmark": "compressed_exec",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "num_rows": num_rows,
        "chunk_size": CHUNK_SIZE,
    }


def write_bench_json(
    path: str = "BENCH_compressed_exec.json",
    quick: bool = False,
) -> Dict[str, Any]:
    report = run_benchmark(quick=quick)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small data, few repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_compressed_exec.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    report = write_bench_json(args.out, quick=args.quick)
    for row in report["rows"]:
        print(
            f"{row['scenario']:>22}"
            f"  decompress {row['decompress_s'] * 1e3:8.2f} ms"
            f"  compressed {row['compressed_s'] * 1e3:8.2f} ms"
            f"  speedup {row['speedup']:5.2f}x"
            f"  rows-compressed {row['rows_computed_compressed']}"
            f"  saved {row['bytes_decompressed_saved'] / 1e6:.1f} MB"
        )
    print(f"wrote {args.out} (cpu_count={report['cpu_count']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

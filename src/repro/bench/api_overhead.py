"""Lazy-API benchmark: plan-build/optimize overhead and reordering wins.

Two questions about :mod:`repro.api`, answered with numbers:

1. **What does laziness cost?**  For representative query shapes, the time
   to build the ``Dataset`` chain plus run the optimizer is measured against
   the end-to-end ``collect()`` — the overhead a user pays for the logical
   plan indirection (expected: well under a percent on real data sizes).
2. **What does the optimizer buy?**  A 3-conjunct scan is written in a
   deliberately bad order (cheap-but-unselective conjuncts first, a highly
   selective clustered-date range last).  The selectivity-based conjunct
   reordering hoists the selective range to the front, where zone maps skip
   most chunks and the per-chunk short-circuit spares the remaining
   conjuncts; the speedup versus ``without_optimizer_reordering()`` is the
   recorded win.

Results go to ``BENCH_api_plan.json`` so successive PRs keep a perf
trajectory.  Run as a module::

    PYTHONPATH=src python -m repro.bench.api_overhead [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..api import Dataset, col, count, dataset
from ..columnar.compile import clear_caches
from ..schemes import FrameOfReference, NullSuppression, RunLengthEncoding
from ..storage.table import Table
from .harness import time_callable

DEFAULT_NUM_ROWS = 1_000_000
QUICK_NUM_ROWS = 131_072
CHUNK_SIZE = 65_536


def build_table(num_rows: int, seed: int = 20_180_416
                ) -> Tuple[Dict[str, np.ndarray], Table]:
    """A clustered date, a smooth price, a noisy quantity (scan-bench shape)."""
    rng = np.random.default_rng(seed)
    data = {
        "ship_date": np.sort(rng.integers(0, 2_000, num_rows)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, num_rows)) + 100_000).astype(np.int64),
        "quantity": rng.integers(0, 1 << 10, num_rows).astype(np.int64),
    }
    table = Table.from_pydict(
        data,
        schemes={
            "ship_date": RunLengthEncoding(),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
        },
        chunk_size=CHUNK_SIZE,
    )
    return data, table


def _query_shapes(table: Table, data: Dict[str, np.ndarray]) -> List[Dict[str, Any]]:
    date_hi = int(data["ship_date"].max())
    price_lo = int(np.percentile(data["price"], 20))
    price_hi = int(np.percentile(data["price"], 80))

    def filter_aggregate() -> Dataset:
        return (dataset(table, "bench")
                .filter(col("ship_date").between(date_hi // 4, date_hi // 2)
                        & col("quantity").between(64, 512))
                .agg(col("price").sum(), count()))

    def derived_group_by() -> Dataset:
        return (dataset(table, "bench")
                .filter(col("price").between(price_lo, price_hi))
                .with_column("revenue", col("price") * col("quantity"))
                .group_by((col("ship_date") // 100).alias("epoch"))
                .agg(col("revenue").sum().alias("total"), count()))

    def top_k() -> Dataset:
        return (dataset(table, "bench")
                .filter(col("quantity") > 16)
                .select("ship_date", "price")
                .sort("price", descending=True)
                .limit(100))

    return [
        {"name": "filter_aggregate", "build": filter_aggregate},
        {"name": "derived_group_by", "build": derived_group_by},
        {"name": "top_k", "build": top_k},
    ]


def measure_overhead(shape: Dict[str, Any], repeats: int) -> Dict[str, Any]:
    build = shape["build"]

    def plan_only():
        return build().optimized_plan()

    def end_to_end():
        return build().collect()

    plan_timing = time_callable(plan_only, repeats=repeats, warmup=1)
    collect_timing = time_callable(end_to_end, repeats=repeats, warmup=1)
    return {
        "query": shape["name"],
        "plan_build_optimize_s": plan_timing.best_seconds,
        "collect_s": collect_timing.best_seconds,
        "overhead_fraction": plan_timing.best_seconds
        / max(collect_timing.best_seconds, 1e-12),
    }


def measure_reordering(table: Table, data: Dict[str, np.ndarray],
                       repeats: int) -> Dict[str, Any]:
    """The 3-conjunct scan with the selective conjunct written *last*."""
    date_hi = int(data["ship_date"].max())
    price_lo = int(np.percentile(data["price"], 10))
    price_hi = int(np.percentile(data["price"], 90))

    def build() -> Dataset:
        return (dataset(table, "bench")
                .filter(col("quantity") >= 8)                       # ~99%
                .filter(col("price").between(price_lo, price_hi))   # ~80%
                .filter(col("ship_date").between(0, date_hi // 50))  # ~2%
                .agg(count()))

    def optimized():
        return build().collect()

    def source_order():
        return build().without_optimizer_reordering().collect()

    fast = optimized()
    slow = source_order()
    assert fast.scalars == slow.scalars  # the reorder must not change answers

    optimized_timing = time_callable(optimized, repeats=repeats, warmup=1)
    baseline_timing = time_callable(source_order, repeats=repeats, warmup=1)
    stats = fast.scan_stats
    return {
        "query": "reorder_3_conjuncts",
        "rows_selected": fast.scalars["count(*)"],
        "optimized_s": optimized_timing.best_seconds,
        "source_order_s": baseline_timing.best_seconds,
        "reorder_speedup": baseline_timing.best_seconds
        / max(optimized_timing.best_seconds, 1e-12),
        "chunks_skipped": stats.chunks_skipped,
        "chunks_short_circuited": stats.chunks_short_circuited,
        "chunks_decompressed": stats.chunks_decompressed,
    }


def run_benchmark(quick: bool = False,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    num_rows = QUICK_NUM_ROWS if quick else DEFAULT_NUM_ROWS
    repeats = repeats if repeats is not None else (2 if quick else 5)
    clear_caches()
    data, table = build_table(num_rows)
    overhead_rows = [measure_overhead(shape, repeats)
                     for shape in _query_shapes(table, data)]
    return {
        "benchmark": "api_plan",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "rows": num_rows,
        "plan_overhead": overhead_rows,
        "predicate_reordering": measure_reordering(table, data, repeats),
    }


def write_bench_json(path: str = "BENCH_api_plan.json",
                     quick: bool = False) -> Dict[str, Any]:
    report = run_benchmark(quick=quick)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data, few repeats (CI smoke mode)")
    parser.add_argument("--out", default="BENCH_api_plan.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    report = write_bench_json(args.out, quick=args.quick)
    for row in report["plan_overhead"]:
        print(f"{row['query']:>18}  plan+optimize {row['plan_build_optimize_s'] * 1e3:7.3f} ms"
              f"  collect {row['collect_s'] * 1e3:8.2f} ms"
              f"  overhead {row['overhead_fraction'] * 100:6.2f}%")
    reorder = report["predicate_reordering"]
    print(f"{reorder['query']:>18}  source-order {reorder['source_order_s'] * 1e3:8.2f} ms"
          f"  optimized {reorder['optimized_s'] * 1e3:8.2f} ms"
          f"  speedup {reorder['reorder_speedup']:5.2f}x")
    print(f"wrote {args.out} (cpu_count={report['cpu_count']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

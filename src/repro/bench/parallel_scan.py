"""Parallel-scan benchmark: serial vs thread vs process backends.

Over a packed v2 table (the process backend's natural habitat — workers
``mmap`` the same file), this measures the same work on every backend at
1/2/4 workers:

* the **3-column conjunction** filter scenario from the scan-pipeline
  benchmark (the acceptance scenario: the process backend must reach
  ``parallel_speedup >= 2.0`` at 4 workers on a >= 4-core machine, and must
  never be slower than serial);
* a **grouped aggregate** (dictionary-coded key) that exercises the
  partial-aggregate-state merge instead of positions-over-the-pipe.

Each (backend, workers) cell reports a **cold** time — caches cleared,
process pools torn down, so pool startup and per-worker cache warming are
*in* the number — and a **warm** best-of-N.  Bit-identity against the
serial backend is asserted for every cell regardless of timing.

On a single-core runner (the methodology fix this benchmark family got:
``cpu_count`` is recorded and respected), timings that cannot show
parallelism are skipped and flagged instead of reporting noise; pass
``--force`` to measure anyway.

Run as a module::

    PYTHONPATH=src python -m repro.bench.parallel_scan [--quick] [--force] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..api import col, dataset
from ..columnar.compile import clear_caches
from ..engine import parallel
from ..engine.scan import scan_table
from ..engine.predicates import Between
from ..io.writer import write_packed_table
from ..io.reader import open_packed_table
from ..schemes import (
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
)
from ..storage.table import Table
from .harness import time_callable

DEFAULT_NUM_ROWS = 1_000_000
QUICK_NUM_ROWS = 131_072
DEFAULT_CHUNK_SIZE = 65_536
QUICK_CHUNK_SIZE = 8_192
WORKER_COUNTS = (1, 2, 4)
MEASURED_BACKENDS = ("thread", "process")


def build_packed_table(directory: Path, num_rows: int, chunk_size: int,
                       seed: int = 20_180_416) -> Table:
    """The scan-pipeline table plus a dictionary-coded group key, packed."""
    rng = np.random.default_rng(seed)
    data = {
        "ship_date": np.sort(rng.integers(0, 2_000, num_rows)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, num_rows)) + 100_000).astype(np.int64),
        "quantity": rng.integers(0, 1 << 10, num_rows).astype(np.int64),
        "category": rng.integers(0, 48, num_rows).astype(np.int64),
    }
    table = Table.from_pydict(
        data,
        schemes={
            "ship_date": RunLengthEncoding(),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
            "category": DictionaryEncoding(),
        },
        chunk_size=chunk_size,
    )
    path = directory / "parallel_scan.rpk"
    write_packed_table(table, path)
    return open_packed_table(path).table


def _predicates(table: Table) -> List[Between]:
    date_hi = 2_000
    prices = table.column("price")
    price_lo = min(c.statistics.minimum for c in prices.chunks) + 200
    price_hi = max(c.statistics.maximum for c in prices.chunks) - 200
    return [
        Between("ship_date", date_hi // 10, (date_hi * 6) // 10),
        Between("price", price_lo, price_hi),
        Between("quantity", 32, 768),
    ]


def _cold(fn: Callable[[], Any]) -> float:
    """One timed run from truly cold state: compiled-plan caches cleared and
    every process pool torn down (so pool startup is part of the number)."""
    clear_caches()
    parallel.shutdown_pools()
    return time_callable(fn, repeats=1, warmup=0).best_seconds


def _scenarios(table: Table) -> List[Dict[str, Any]]:
    predicates = _predicates(table)

    def filter_run(backend: Optional[str], workers: int) -> np.ndarray:
        return scan_table(table, predicates, backend=backend,
                          parallelism=workers).selection.positions.values

    def aggregate_run(backend: Optional[str], workers: int) -> Dict[str, Any]:
        ds = (dataset(table)
              .filter(col("quantity").between(32, 768))
              .group_by("category")
              .agg(col("price").sum().alias("revenue"),
                   col("price").min().alias("floor"),
                   col("quantity").count().alias("n")))
        if backend is not None:
            ds = ds.with_backend(backend, workers=workers)
        result = ds.collect()
        return {name: column.values
                for name, column in result.columns.items()}

    def filter_equal(a: np.ndarray, b: np.ndarray) -> bool:
        return np.array_equal(a, b)

    def aggregate_equal(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
        return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)

    return [
        {"name": "three_columns",
         "description": "3-predicate Between conjunction over 3 columns",
         "run": filter_run, "equal": filter_equal},
        {"name": "grouped_aggregate",
         "description": "group-by over a dictionary-coded key with "
                        "sum/min/count (partial-state merge on the process "
                        "backend)",
         "run": aggregate_run, "equal": aggregate_equal},
    ]


def measure_scenario(scenario: Dict[str, Any], repeats: int,
                     measure_parallel: bool) -> Dict[str, Any]:
    run = scenario["run"]
    equal = scenario["equal"]

    reference = run("serial", 1)
    serial_warm = time_callable(lambda: run("serial", 1),
                                repeats=repeats, warmup=1).best_seconds
    serial_cold = _cold(lambda: run("serial", 1))

    cells: List[Dict[str, Any]] = []
    for backend in MEASURED_BACKENDS:
        for workers in WORKER_COUNTS:
            # Correctness gate first, timed or not: every backend/worker
            # combination must be bit-identical to serial.
            assert equal(reference, run(backend, workers)), \
                (scenario["name"], backend, workers)
            cell: Dict[str, Any] = {"backend": backend, "workers": workers}
            if measure_parallel:
                cell["cold_s"] = _cold(lambda: run(backend, workers))
                cell["warm_s"] = time_callable(
                    lambda: run(backend, workers),
                    repeats=repeats, warmup=1).best_seconds
                cell["parallel_speedup"] = serial_warm / max(cell["warm_s"],
                                                             1e-12)
            else:
                cell["cold_s"] = None
                cell["warm_s"] = None
                cell["parallel_speedup"] = None
            cells.append(cell)

    return {
        "scenario": scenario["name"],
        "description": scenario["description"],
        "serial_cold_s": serial_cold,
        "serial_warm_s": serial_warm,
        "backends": cells,
    }


def run_benchmark(quick: bool = False, force: bool = False,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    num_rows = QUICK_NUM_ROWS if quick else DEFAULT_NUM_ROWS
    chunk_size = QUICK_CHUNK_SIZE if quick else DEFAULT_CHUNK_SIZE
    repeats = repeats if repeats is not None else (2 if quick else 5)
    cpu_count = os.cpu_count() or 1
    measure_parallel = force or cpu_count > 1
    skip_reason = None if measure_parallel else (
        "cpu_count == 1: parallel timings would only measure scheduling "
        "overhead (pass --force to record them anyway); bit-identity is "
        "still asserted for every backend")

    with tempfile.TemporaryDirectory(prefix="repro-parallel-bench-") as tmp:
        table = build_packed_table(Path(tmp), num_rows, chunk_size)
        scenarios = [measure_scenario(scenario, repeats, measure_parallel)
                     for scenario in _scenarios(table)]
    parallel.shutdown_pools()

    return {
        "benchmark": "parallel_scan",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "worker_counts": list(WORKER_COUNTS),
        "rows": num_rows,
        "chunk_size": chunk_size,
        "chunks": -(-num_rows // chunk_size),
        "timings_skipped": not measure_parallel,
        "skip_reason": skip_reason,
        "scenarios": scenarios,
    }


def write_bench_json(path: str = "BENCH_parallel_scan.json",
                     quick: bool = False, force: bool = False) -> Dict[str, Any]:
    report = run_benchmark(quick=quick, force=force)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def _format_cell(cell: Dict[str, Any]) -> str:
    label = f"{cell['backend']}[{cell['workers']}]"
    if cell["warm_s"] is None:
        return f"  {label:>12}  (timing skipped)"
    return (f"  {label:>12}  cold {cell['cold_s'] * 1e3:8.2f} ms"
            f"  warm {cell['warm_s'] * 1e3:8.2f} ms"
            f"  speedup {cell['parallel_speedup']:5.2f}x")


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data, few repeats (CI smoke mode)")
    parser.add_argument("--force", action="store_true",
                        help="measure parallel timings even on one CPU")
    parser.add_argument("--out", default="BENCH_parallel_scan.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    report = write_bench_json(args.out, quick=args.quick, force=args.force)
    for scenario in report["scenarios"]:
        print(f"{scenario['scenario']}: serial"
              f" cold {scenario['serial_cold_s'] * 1e3:8.2f} ms"
              f" warm {scenario['serial_warm_s'] * 1e3:8.2f} ms")
        for cell in scenario["backends"]:
            print(_format_cell(cell))
    if report["timings_skipped"]:
        print(f"note: {report['skip_reason']}")
    print(f"wrote {args.out} (cpu_count={report['cpu_count']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

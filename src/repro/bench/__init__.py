"""Benchmark harness utilities shared by the experiment benchmarks (E1–E10).

:mod:`repro.bench.plan_compile` additionally provides the interpreted-vs-
compiled decompression benchmark (``python -m repro.bench.plan_compile``),
:mod:`repro.bench.scan_pipeline` the seed-scan-vs-chunk-parallel-scheduler
benchmark (``python -m repro.bench.scan_pipeline``), and
:mod:`repro.bench.api_overhead` the lazy-API plan-overhead and
predicate-reordering benchmark (``python -m repro.bench.api_overhead``), and
:mod:`repro.bench.io_scan` the cold-scan benchmark of the packed v2 format
against the eager v1 loader (``python -m repro.bench.io_scan``), and
:mod:`repro.bench.parallel_scan` the serial-vs-thread-vs-process backend
benchmark over a packed table (``python -m repro.bench.parallel_scan``);
they write ``BENCH_plan_compile.json`` / ``BENCH_scan_pipeline.json`` /
``BENCH_api_plan.json`` / ``BENCH_io.json`` / ``BENCH_parallel_scan.json``
for cross-PR perf tracking.
"""

from .harness import (
    ExperimentReport,
    TimingResult,
    compare_schemes,
    compression_row,
    format_table,
    time_callable,
)

# NOTE: repro.bench.plan_compile is deliberately not imported here — it is a
# runnable module (``python -m repro.bench.plan_compile``) and importing it
# from the package __init__ would trigger runpy's double-import warning.

__all__ = [
    "ExperimentReport",
    "TimingResult",
    "compare_schemes",
    "compression_row",
    "format_table",
    "time_callable",
]

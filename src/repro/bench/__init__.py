"""Benchmark harness utilities shared by the experiment benchmarks (E1–E10)."""

from .harness import (
    ExperimentReport,
    TimingResult,
    compare_schemes,
    compression_row,
    format_table,
    time_callable,
)

__all__ = [
    "ExperimentReport",
    "TimingResult",
    "compare_schemes",
    "compression_row",
    "format_table",
    "time_callable",
]

"""Scan-pipeline benchmark: seed scan loop vs the chunk-parallel scheduler.

Measures, over a multi-chunk multi-column table, three executions of the
same multi-predicate conjunction:

* the **seed** path — one full-table pass per predicate (each chunk of each
  predicate's column decompressed independently, no short-circuiting) with
  the global position lists intersected via ``np.intersect1d``; this is a
  faithful re-implementation of the engine's pre-scheduler ``_selection``;
* the **pipeline** path — :func:`repro.engine.scan.scan_table`: the whole
  conjunction evaluated chunk-at-a-time with chunk-local mask intersection,
  per-chunk short-circuiting and shared per-chunk decompression;
* the **parallel pipeline** — the same, fanned out over a thread pool with
  ``parallelism="auto"`` (``min(cpu_count, chunks)``, serial on tiny
  tables).

Results go to ``BENCH_scan_pipeline.json`` so successive PRs have a perf
trajectory.  Parallel timings are only *measured* when the machine can
actually run anything in parallel: on a single-core runner (or when
``"auto"`` resolves to one worker) the scenario records
``parallel_skipped`` with the reason instead of a meaningless ~1.0x number
— the old harness timed ``parallelism=4`` on ``cpu_count: 1`` machines and
dutifully reported slowdowns that said nothing about the scheduler.
Bit-identity of the parallel path is asserted regardless.

Run as a module::

    PYTHONPATH=src python -m repro.bench.scan_pipeline [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..columnar.compile import clear_caches
from ..engine.operators import SelectionVector
from ..engine.predicates import Between, Predicate
from ..engine.pushdown import range_mask_on_form
from ..engine.scan import resolve_parallelism, scan_table
from ..schemes import FrameOfReference, NullSuppression, RunLengthEncoding
from ..storage.table import Table
from .harness import time_callable

DEFAULT_NUM_ROWS = 1_000_000
QUICK_NUM_ROWS = 131_072
CHUNK_SIZE = 65_536
PARALLELISM = "auto"


def build_table(num_rows: int, seed: int = 20_180_416) -> Tuple[Dict[str, np.ndarray], Table]:
    """The benchmark table: a clustered date, a smooth price, a random quantity."""
    rng = np.random.default_rng(seed)
    data = {
        "ship_date": np.sort(rng.integers(0, 2_000, num_rows)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, num_rows)) + 100_000).astype(np.int64),
        "quantity": rng.integers(0, 1 << 10, num_rows).astype(np.int64),
    }
    table = Table.from_pydict(
        data,
        schemes={
            "ship_date": RunLengthEncoding(),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
        },
        chunk_size=CHUNK_SIZE,
    )
    return data, table


def seed_selection(table: Table, predicates: Sequence[Predicate],
                   use_pushdown: bool = True,
                   use_zone_maps: bool = True) -> np.ndarray:
    """The engine's pre-scheduler selection loop, re-implemented faithfully:
    one full pass per predicate, merged with global ``np.intersect1d``."""
    combined: Optional[np.ndarray] = None
    for predicate in predicates:
        stored = table.column(predicate.column_name)
        pieces: List[np.ndarray] = []
        for chunk in stored.iter_chunks():
            decision = (predicate.chunk_decision(chunk.statistics)
                        if use_zone_maps else None)
            if decision is False:
                continue
            if decision is True:
                pieces.append(np.arange(chunk.row_offset,
                                        chunk.row_offset + chunk.row_count,
                                        dtype=np.int64))
                continue
            mask = None
            if use_pushdown and isinstance(predicate, Between):
                pushed = range_mask_on_form(chunk.form, predicate.bounds)
                if pushed is not None:
                    mask = pushed[0].values
            if mask is None:
                mask = predicate.evaluate(chunk.decompress()).values
            pieces.append(np.flatnonzero(mask).astype(np.int64) + chunk.row_offset)
        positions = (np.concatenate(pieces) if pieces
                     else np.empty(0, dtype=np.int64))
        combined = positions if combined is None else np.intersect1d(
            combined, positions, assume_unique=True)
    assert combined is not None
    return combined


def _scenarios(data: Dict[str, np.ndarray]) -> List[Dict[str, Any]]:
    date_hi = int(data["ship_date"].max())
    price_lo = int(np.percentile(data["price"], 10))
    price_hi = int(np.percentile(data["price"], 70))
    return [
        {
            "name": "three_columns",
            "description": "3-predicate Between conjunction over 3 columns",
            "predicates": [
                Between("ship_date", date_hi // 10, (date_hi * 6) // 10),
                Between("price", price_lo, price_hi),
                Between("quantity", 32, 768),
            ],
            "use_pushdown": True,
            "use_zone_maps": True,
        },
        {
            "name": "same_column",
            "description": "3 Between conjuncts on one column, no pushdown "
                           "(shared per-chunk decompression)",
            "predicates": [
                Between("price", price_lo, price_hi),
                Between("price", price_lo + 50, price_hi + 50),
                Between("price", price_lo - 50, price_hi - 50),
            ],
            "use_pushdown": False,
            "use_zone_maps": False,
        },
        {
            "name": "selective_first",
            "description": "very selective first conjunct short-circuits the rest",
            "predicates": [
                Between("ship_date", 0, date_hi // 50),
                Between("price", price_lo, price_hi),
                Between("quantity", 32, 768),
            ],
            "use_pushdown": True,
            "use_zone_maps": True,
        },
    ]


def measure_scenario(scenario: Dict[str, Any], table: Table,
                     repeats: int) -> Dict[str, Any]:
    predicates = scenario["predicates"]
    kwargs = dict(use_pushdown=scenario["use_pushdown"],
                  use_zone_maps=scenario["use_zone_maps"])

    def seed() -> np.ndarray:
        return seed_selection(table, predicates, **kwargs)

    def pipeline() -> SelectionVector:
        return scan_table(table, predicates, **kwargs).selection

    def pipeline_parallel() -> SelectionVector:
        return scan_table(table, predicates, parallelism=PARALLELISM,
                          **kwargs).selection

    num_chunks = table.column(predicates[0].column_name).num_chunks
    effective_workers = resolve_parallelism(PARALLELISM, num_chunks,
                                            table.row_count)

    # Correctness gate: all three paths must select identical positions
    # (asserted even when the parallel timing below is skipped).
    reference = seed()
    serial_positions = pipeline().positions.values
    parallel_positions = pipeline_parallel().positions.values
    assert np.array_equal(reference, serial_positions), scenario["name"]
    assert np.array_equal(serial_positions, parallel_positions), scenario["name"]

    seed_timing = time_callable(seed, repeats=repeats, warmup=1)
    serial_timing = time_callable(pipeline, repeats=repeats, warmup=1)

    parallel_seconds: Optional[float] = None
    parallel_speedup: Optional[float] = None
    parallel_skipped: Optional[str] = None
    if (os.cpu_count() or 1) == 1:
        parallel_skipped = "cpu_count == 1: nothing can run in parallel"
    elif effective_workers <= 1:
        parallel_skipped = ("parallelism='auto' resolved to 1 worker "
                            "(tiny table or single chunk)")
    else:
        parallel_timing = time_callable(pipeline_parallel, repeats=repeats,
                                        warmup=1)
        parallel_seconds = parallel_timing.best_seconds
        parallel_speedup = (serial_timing.best_seconds
                            / max(parallel_timing.best_seconds, 1e-12))

    stats = scan_table(table, predicates, **kwargs).stats
    return {
        "scenario": scenario["name"],
        "description": scenario["description"],
        "num_predicates": len(predicates),
        "rows": table.row_count,
        "chunks_per_column": num_chunks,
        "rows_selected": int(reference.size),
        "parallelism_effective": effective_workers,
        "seed_s": seed_timing.best_seconds,
        "pipeline_s": serial_timing.best_seconds,
        "pipeline_parallel_s": parallel_seconds,
        "multi_predicate_speedup": seed_timing.best_seconds
        / max(serial_timing.best_seconds, 1e-12),
        "parallel_speedup": parallel_speedup,
        "parallel_skipped": parallel_skipped,
        "chunks_total": stats.chunks_total,
        "chunks_decompressed": stats.chunks_decompressed,
        "chunks_short_circuited": stats.chunks_short_circuited,
        "chunks_pushed_down": stats.chunks_pushed_down,
        "chunks_skipped": stats.chunks_skipped,
    }


def run_benchmark(quick: bool = False,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    num_rows = QUICK_NUM_ROWS if quick else DEFAULT_NUM_ROWS
    repeats = repeats if repeats is not None else (2 if quick else 5)
    clear_caches()
    data, table = build_table(num_rows)
    rows = [measure_scenario(scenario, table, repeats)
            for scenario in _scenarios(data)]
    return {
        "benchmark": "scan_pipeline",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "parallelism": PARALLELISM,
        "rows": rows,
    }


def _format_parallel(row: Dict[str, Any]) -> str:
    if row["parallel_skipped"] is not None:
        return f"parallel skipped ({row['parallel_skipped']})"
    return (f"parallel[{row['parallelism_effective']}] "
            f"{row['pipeline_parallel_s'] * 1e3:8.2f} ms"
            f"  parallel {row['parallel_speedup']:5.2f}x")


def write_bench_json(path: str = "BENCH_scan_pipeline.json",
                     quick: bool = False) -> Dict[str, Any]:
    report = run_benchmark(quick=quick)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data, few repeats (CI smoke mode)")
    parser.add_argument("--out", default="BENCH_scan_pipeline.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    report = write_bench_json(args.out, quick=args.quick)
    for row in report["rows"]:
        print(f"{row['scenario']:>16}  seed {row['seed_s'] * 1e3:8.2f} ms"
              f"  pipeline {row['pipeline_s'] * 1e3:8.2f} ms"
              f"  multi-pred {row['multi_predicate_speedup']:5.2f}x"
              f"  {_format_parallel(row)}")
    print(f"wrote {args.out} (cpu_count={report['cpu_count']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Cold-scan benchmark: packed v2 mmap-lazy reads vs the eager v1 loader.

Builds a multi-scheme orders table, persists it twice — as a deprecated v1
loose-``.npy`` directory and as one packed v2 file — and then times, per
selectivity level, a **cold** query (storage reopened from scratch inside
the timed region):

* the **v1** path pays the eager tax: ``read_table`` materialises every
  constituent of every chunk of every column before the first predicate
  runs;
* the **v2** path opens the footer, prunes chunks on the persisted zone
  maps, and maps only the surviving chunks' constituent byte ranges — the
  win grows as the query gets more selective, and ``mapped_fraction``
  records exactly how little of the file a scan touched.

Results go to ``BENCH_io.json``.  "Cold" here means cold *library* state,
not a cold OS page cache (CI runners cannot drop caches); the v1/v2 gap is
therefore dominated by deserialisation and decompression work, which is the
part the format actually controls.

Run as a module::

    PYTHONPATH=src python -m repro.bench.io_scan [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..columnar.compile import clear_caches
from ..engine import Between, Query
from ..io.reader import open_packed_table
from ..io.writer import write_packed_table
from ..schemes import (
    Cascade,
    Delta,
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
)
from ..storage.serialization import read_table, write_table
from ..storage.table import Table
from .harness import time_callable

DEFAULT_NUM_ROWS = 1_000_000
QUICK_NUM_ROWS = 131_072
CHUNK_SIZE = 65_536

#: (name, fraction of the ship_date domain the Between window covers)
SELECTIVITIES: List[Tuple[str, float]] = [
    ("needle_1pct", 0.01),
    ("narrow_5pct", 0.05),
    ("band_20pct", 0.20),
    ("half_50pct", 0.50),
    ("full_100pct", 1.00),
]


def build_table(num_rows: int, seed: int = 20_180_416) -> Table:
    """Clustered date + smooth price + random quantity + skewed category."""
    rng = np.random.default_rng(seed)
    data = {
        "ship_date": np.sort(rng.integers(0, 2_000, num_rows)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, num_rows)) + 100_000).astype(np.int64),
        "quantity": rng.integers(0, 1 << 10, num_rows).astype(np.int64),
        "category": rng.integers(0, 64, num_rows).astype(np.int64),
    }
    return Table.from_pydict(
        data,
        schemes={
            "ship_date": Cascade(RunLengthEncoding(), {"values": Delta()}),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
            "category": DictionaryEncoding(),
        },
        chunk_size=CHUNK_SIZE,
    )


def _window(table: Table, fraction: float) -> Tuple[int, int]:
    dates = table.column("ship_date")
    lo = dates.chunks[0].statistics.minimum
    hi = dates.chunks[-1].statistics.maximum
    width = max(1, int((hi - lo) * fraction))
    return lo, min(hi, lo + width)


def _query(table: Table, bounds: Tuple[int, int]):
    return (Query(table)
            .filter(Between("ship_date", bounds[0], bounds[1]))
            .aggregate("price", "sum")
            .run())


def measure_selectivity(name: str, fraction: float, v1_dir: Path,
                        v2_path: Path, repeats: int) -> Dict[str, Any]:
    probe = open_packed_table(v2_path)
    bounds = _window(probe.table, fraction)

    def cold_v1():
        return _query(read_table(v1_dir), bounds)

    def cold_v2():
        return _query(open_packed_table(v2_path).table, bounds)

    reference = cold_v1()
    check = cold_v2()
    assert reference.scalars == check.scalars, name
    assert reference.row_count == check.row_count, name

    v1_timing = time_callable(cold_v1, repeats=repeats, warmup=1)
    v2_timing = time_callable(cold_v2, repeats=repeats, warmup=1)

    accounted = open_packed_table(v2_path)
    result = _query(accounted.table, bounds)
    return {
        "scenario": name,
        "window_fraction": fraction,
        "rows_selected": int(result.row_count),
        "selectivity": result.row_count / max(1, accounted.table.row_count),
        "cold_v1_s": v1_timing.best_seconds,
        "cold_v2_s": v2_timing.best_seconds,
        "cold_speedup": v1_timing.best_seconds / max(v2_timing.best_seconds, 1e-12),
        "bytes_mapped": int(accounted.bytes_mapped),
        "file_size": int(accounted.file_size),
        "mapped_fraction": accounted.bytes_mapped / max(1, accounted.file_size),
        "chunks_skipped": (result.scan_stats.chunks_skipped
                           if result.scan_stats else 0),
        "chunks_total": (result.scan_stats.chunks_total
                         if result.scan_stats else 0),
    }


def run_benchmark(quick: bool = False,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    num_rows = QUICK_NUM_ROWS if quick else DEFAULT_NUM_ROWS
    repeats = repeats if repeats is not None else (2 if quick else 5)
    clear_caches()
    table = build_table(num_rows)
    workdir = Path(tempfile.mkdtemp(prefix="repro-io-bench-"))
    try:
        v1_dir = workdir / "v1_table"
        v2_path = workdir / "table.rpk"
        write_table(table, v1_dir)
        write_packed_table(table, v2_path)
        v1_bytes = sum(f.stat().st_size for f in v1_dir.rglob("*") if f.is_file())
        rows = [measure_selectivity(name, fraction, v1_dir, v2_path, repeats)
                for name, fraction in SELECTIVITIES]
        return {
            "benchmark": "io_scan",
            "quick": quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "rows": rows,
            "table_rows": num_rows,
            "v1_on_disk_bytes": int(v1_bytes),
            "v2_on_disk_bytes": int(v2_path.stat().st_size),
            "uncompressed_bytes": int(table.uncompressed_size_bytes()),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def write_bench_json(path: str = "BENCH_io.json",
                     quick: bool = False) -> Dict[str, Any]:
    report = run_benchmark(quick=quick)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data, few repeats (CI smoke mode)")
    parser.add_argument("--out", default="BENCH_io.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    report = write_bench_json(args.out, quick=args.quick)
    for row in report["rows"]:
        print(f"{row['scenario']:>14}  cold v1 {row['cold_v1_s'] * 1e3:8.2f} ms"
              f"  cold v2 {row['cold_v2_s'] * 1e3:8.2f} ms"
              f"  speedup {row['cold_speedup']:6.2f}x"
              f"  mapped {row['mapped_fraction'] * 100:5.1f}% of file")
    print(f"wrote {args.out} (v1 {report['v1_on_disk_bytes']} B across files, "
          f"v2 {report['v2_on_disk_bytes']} B in one file)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

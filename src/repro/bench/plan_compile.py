"""Plan-compiler benchmark: interpreted vs compiled decompression throughput.

Measures, per scheme, the chunk-at-a-time decompression throughput of

* the **interpreted** path — rebuild the decompression plan and walk it with
  the cost-accounting interpreter per chunk (the pre-compiler behaviour of
  ``CompressionScheme.decompress``), and
* the **compiled** path — the cached, optimized
  :class:`~repro.columnar.compile.executor.CompiledPlan` the library now
  executes,

and writes the rows to ``BENCH_plan_compile.json`` so successive PRs have a
perf trajectory to compare against.  Chunked execution (default 8192 rows,
the vectorised engine granularity) is the representative workload: a scan
over a large table decompresses thousands of chunks that all share one
compiled plan.

Run as a module::

    PYTHONPATH=src python -m repro.bench.plan_compile [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..columnar.column import Column
from ..columnar.compile import cache_info, clear_caches
from ..schemes.base import CompressionScheme
from ..schemes.composite import Cascade
from ..schemes.delta import Delta
from ..schemes.dict_ import DictionaryEncoding
from ..schemes.for_ import FrameOfReference
from ..schemes.ns import NullSuppression
from ..schemes.rle import RunLengthEncoding
from ..schemes.rpe import RunPositionEncoding
from ..workloads import (
    monotone_identifiers,
    runs_column,
    smooth_measure,
    uniform_random,
    zipfian_categories,
)
from .harness import time_callable

#: Rows per chunk: the vector granularity of the query engine (vectorised
#: engines process 1–4K-row vectors so intermediates stay cache-resident).
DEFAULT_CHUNK_ROWS = 4096
DEFAULT_NUM_CHUNKS = 96
QUICK_NUM_CHUNKS = 12


def _workloads(num_rows: int) -> Dict[str, Callable[[], Column]]:
    return {
        "runs": lambda: runs_column(num_rows, average_run_length=32.0,
                                    num_distinct_values=512, seed=11),
        "smooth": lambda: smooth_measure(num_rows, seed=12),
        "monotone": lambda: monotone_identifiers(num_rows, seed=13),
        "categories": lambda: zipfian_categories(num_rows, num_categories=128, seed=14),
        "uniform": lambda: uniform_random(num_rows, low=0, high=1 << 20, seed=15),
    }


#: (scheme factory, workload name) pairs benchmarked by default.  RLE and FOR
#: are the acceptance-gate pair (experiments E2/E3); the rest track the
#: compiler's effect across the operator mix.
def _scheme_matrix() -> List[Tuple[str, CompressionScheme, str]]:
    return [
        ("RLE", RunLengthEncoding(), "runs"),
        ("RPE", RunPositionEncoding(), "runs"),
        ("FOR", FrameOfReference(segment_length=128), "smooth"),
        ("DELTA", Delta(), "monotone"),
        ("DICT", DictionaryEncoding(), "categories"),
        ("NS", NullSuppression(), "uniform"),
        ("RLE∘DELTA", Cascade.rle_then_delta_on_values(), "runs"),
    ]


def measure_scheme(scheme: CompressionScheme, column: Column,
                   chunk_rows: int, repeats: int) -> Dict[str, Any]:
    """Interpreted-vs-compiled decompression over all chunks of *column*."""
    forms = []
    for start in range(0, len(column), chunk_rows):
        piece = Column(column.values[start:start + chunk_rows], name=column.name)
        forms.append(scheme.compress(piece))

    def interpreted() -> int:
        total = 0
        for form in forms:
            total += len(scheme.decompress_interpreted(form))
        return total

    def compiled() -> int:
        total = 0
        for form in forms:
            total += len(scheme.decompress(form))
        return total

    # Correctness first: the two paths must agree chunk for chunk.
    for form in forms:
        assert scheme.decompress(form).equals(scheme.decompress_interpreted(form)), \
            f"compiled/interpreted divergence for {scheme.describe()}"

    interpreted_timing = time_callable(interpreted, repeats=repeats, warmup=1)
    compiled_timing = time_callable(compiled, repeats=repeats, warmup=1)
    rows = len(column)
    compiled_plan = scheme.compiled_decompression_plan(forms[0])
    return {
        "scheme": scheme.describe(),
        "rows": rows,
        "chunks": len(forms),
        "chunk_rows": chunk_rows,
        "plan_steps": len(compiled_plan.source.steps),
        "optimized_steps": len(compiled_plan.plan.steps),
        "interpreted_s": interpreted_timing.best_seconds,
        "compiled_s": compiled_timing.best_seconds,
        "interpreted_mvalues_per_s": rows / interpreted_timing.best_seconds / 1e6,
        "compiled_mvalues_per_s": rows / compiled_timing.best_seconds / 1e6,
        "speedup": interpreted_timing.best_seconds / max(compiled_timing.best_seconds, 1e-12),
    }


def run_benchmark(quick: bool = False, chunk_rows: int = DEFAULT_CHUNK_ROWS,
                  repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run the full matrix and return the report dictionary."""
    num_chunks = QUICK_NUM_CHUNKS if quick else DEFAULT_NUM_CHUNKS
    repeats = repeats if repeats is not None else (2 if quick else 5)
    num_rows = chunk_rows * num_chunks
    clear_caches()
    workloads = _workloads(num_rows)
    rows = []
    for name, scheme, workload in _scheme_matrix():
        column = workloads[workload]()
        row = measure_scheme(scheme, column, chunk_rows, repeats)
        row["name"] = name
        row["workload"] = workload
        rows.append(row)
    return {
        "benchmark": "plan_compile",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
        "cache": cache_info(),
    }


def write_bench_json(path: str = "BENCH_plan_compile.json", quick: bool = False,
                     chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Dict[str, Any]:
    """Run the benchmark and write the JSON report to *path*."""
    report = run_benchmark(quick=quick, chunk_rows=chunk_rows)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data, few repeats (CI smoke mode)")
    parser.add_argument("--out", default="BENCH_plan_compile.json",
                        help="output JSON path")
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS)
    args = parser.parse_args(argv)
    if args.chunk_rows <= 0:
        parser.error(f"--chunk-rows must be positive, got {args.chunk_rows}")
    report = write_bench_json(args.out, quick=args.quick, chunk_rows=args.chunk_rows)
    for row in report["rows"]:
        print(f"{row['name']:>10}  interpreted {row['interpreted_mvalues_per_s']:8.1f} Mv/s"
              f"  compiled {row['compiled_mvalues_per_s']:8.1f} Mv/s"
              f"  speedup {row['speedup']:5.2f}x"
              f"  steps {row['plan_steps']}->{row['optimized_steps']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Stored columns: a sequence of (optionally differently-encoded) chunks.

A :class:`StoredColumn` is what the table layer holds for each attribute:
the column cut into fixed-size chunks, each chunk compressed with whatever
scheme was chosen for it (all chunks may share one scheme, or the advisor
may pick per chunk).  It exposes enough structure for the query engine to
work chunk-at-a-time — the standard vectorised execution granularity — and
to push predicates down to chunk statistics and compressed forms.

A stored column does not care where its chunks' constituents live: built
from memory they are plain arrays, loaded from a packed file
(:mod:`repro.io`) they are mmap-backed lazy segments that materialise on
first access — either way the engine sees the same
:class:`~repro.storage.chunk.ColumnChunk` interface.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..columnar.column import Column, concat_columns
from ..errors import StorageError
from ..schemes.base import CompressionScheme
from ..schemes.identity import Identity
from .chunk import ColumnChunk
from .statistics import ColumnStatistics, compute_statistics

#: A scheme, or a callable choosing a scheme per chunk (given the chunk column).
SchemeChooser = Union[CompressionScheme, Callable[[Column], CompressionScheme], None]

DEFAULT_CHUNK_SIZE = 1 << 16


class StoredColumn:
    """A named, chunked, compressed column."""

    def __init__(self, name: str, chunks: Sequence[ColumnChunk], dtype: np.dtype):
        if not chunks:
            raise StorageError(f"stored column {name!r} must have at least one chunk")
        self.name = name
        self.chunks: List[ColumnChunk] = list(chunks)
        self.dtype = np.dtype(dtype)
        offsets = [chunk.row_offset for chunk in self.chunks]
        if offsets != sorted(offsets):
            raise StorageError(f"chunks of column {name!r} are not in row order")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_column(
        column: Column,
        name: Optional[str] = None,
        scheme: SchemeChooser = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "StoredColumn":
        """Chunk and compress *column*.

        *scheme* may be a single scheme (used for every chunk), a callable
        invoked per chunk (the hook the compression advisor plugs into), or
        ``None`` for no compression.
        """
        if chunk_size <= 0:
            raise StorageError(f"chunk_size must be positive, got {chunk_size}")
        if len(column) == 0:
            raise StorageError("cannot store an empty column")
        name = name or column.name or "column"
        chunks: List[ColumnChunk] = []
        for start in range(0, len(column), chunk_size):
            piece = Column(column.values[start:start + chunk_size], name=name)
            if scheme is None:
                chunk_scheme: CompressionScheme = Identity()
            elif isinstance(scheme, CompressionScheme):
                chunk_scheme = scheme
            else:
                chunk_scheme = scheme(piece)
            chunks.append(ColumnChunk.from_column(piece, chunk_scheme, row_offset=start))
        return StoredColumn(name, chunks, column.dtype)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def row_count(self) -> int:
        """Total number of rows across all chunks."""
        last = self.chunks[-1]
        return last.row_offset + last.row_count

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def encodings(self) -> List[str]:
        """The encoding used by each chunk, in order."""
        return [chunk.encoding for chunk in self.chunks]

    def compressed_size_bytes(self) -> int:
        """Total compressed bytes across all chunks."""
        return sum(chunk.compressed_size_bytes() for chunk in self.chunks)

    def uncompressed_size_bytes(self) -> int:
        """Total uncompressed bytes across all chunks."""
        return sum(chunk.uncompressed_size_bytes() for chunk in self.chunks)

    def compression_ratio(self) -> float:
        """Uncompressed bytes divided by compressed bytes."""
        compressed = self.compressed_size_bytes()
        return self.uncompressed_size_bytes() / compressed if compressed else float("inf")

    def statistics(self) -> ColumnStatistics:
        """Column-level statistics, recomputed from the materialised values.

        Chunk-level statistics remain available on each chunk; this is the
        whole-column view (used by the advisor when choosing a single scheme
        for the column).
        """
        return compute_statistics(self.materialize())

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def iter_chunks(self) -> Iterator[ColumnChunk]:
        """Iterate over the chunks in row order."""
        return iter(self.chunks)

    # ------------------------------------------------------------------ #
    # Compiled-plan reuse across chunks
    # ------------------------------------------------------------------ #

    def warm_decompression_cache(self) -> int:
        """Compile the decompression plan of every distinct chunk scheme.

        Returns the number of *distinct* compiled plans backing this column
        — typically 1 when all chunks share a scheme, even though there may
        be thousands of chunks.  Calling this is optional (the first
        decompression of each scheme compiles lazily); it exists so bulk
        readers can front-load compilation before a timed scan.
        """
        distinct = {id(chunk.compiled_plan()) for chunk in self.chunks}
        return len(distinct)

    @staticmethod
    def decompression_cache_info() -> dict:
        """Statistics of the process-wide compiled-plan cache."""
        from ..columnar.compile import cache_info
        return cache_info()

    def materialize(self) -> Column:
        """Decompress the whole column into one :class:`Column`."""
        pieces = [chunk.decompress() for chunk in self.chunks]
        out = concat_columns(pieces, name=self.name)
        return out if out.dtype == self.dtype else out.astype(self.dtype)

    def materialize_rows(self, positions: Column, parallelism: int = 1) -> Column:
        """Materialise only the given (sorted or unsorted) global row positions.

        Chunks not containing any requested position are never decompressed —
        the storage-level half of "there is no clear distinction between
        decompression and query execution".  The gather goes through
        :func:`gather_rows` (the scan scheduler's materialisation half):
        positions are bucketed per chunk with one ``searchsorted`` instead of
        one boolean mask per chunk, and ``parallelism > 1`` fans the
        per-chunk gathers out over a thread pool.
        """
        return gather_rows(self, positions, parallelism=parallelism)


def gather_rows(stored: StoredColumn, positions: Column,
                parallelism: int = 1) -> Column:
    """Materialise *stored* at the given global row positions.

    Positions may be sorted or unsorted; the output preserves their order.
    Positions are bucketed per chunk with a single ``searchsorted`` +
    stable argsort, and only chunks containing at least one requested
    position are decompressed.  With ``parallelism > 1`` the per-chunk
    gathers fan out over a thread pool (each worker writes a disjoint slice
    of the output).
    """
    pos = positions.values.astype(np.int64)
    if pos.size and (pos.min() < 0 or pos.max() >= stored.row_count):
        raise StorageError("materialize_rows(): positions out of range")
    result = np.empty(pos.size, dtype=stored.dtype)
    if pos.size == 0:
        return Column(result, name=stored.name)

    starts = np.asarray([chunk.row_offset for chunk in stored.chunks],
                        dtype=np.int64)
    chunk_of = np.searchsorted(starts, pos, side="right") - 1
    order = np.argsort(chunk_of, kind="stable")
    sorted_chunks = chunk_of[order]
    hit_chunks = np.unique(sorted_chunks)
    bounds = np.searchsorted(sorted_chunks, hit_chunks, side="left")
    ends = np.append(bounds[1:], sorted_chunks.size)

    def gather_one(task: Tuple[int, int, int]) -> None:
        chunk_index, start, stop = task
        chunk = stored.chunks[chunk_index]
        take = order[start:stop]
        values = chunk.decompress().values
        result[take] = values[pos[take] - chunk.row_offset]

    tasks = [(int(ci), int(s), int(e))
             for ci, s, e in zip(hit_chunks, bounds, ends)]
    if parallelism > 1 and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=parallelism) as pool:
            list(pool.map(gather_one, tasks))
    else:
        for task in tasks:
            gather_one(task)
    return Column(result, name=stored.name)

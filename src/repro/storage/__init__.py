"""Columnar storage substrate: chunks, stored columns, tables, statistics.

This package carries the "implementation-specific adornments" the paper's
pure-columns view deliberately strips from compressed forms: fixed-size
chunking, per-chunk statistics (zone maps), per-chunk encoding choices, and
the table abstraction the examples and query engine work against.

Durable storage lives in :mod:`repro.io` (the packed single-file v2 format
with mmap-lazy scans, plus the table catalog); ``save_table`` and
``load_table`` are re-exported here for convenience.  The loose-``.npy``
v1 writers below (``write_form`` .. ``read_table``) remain readable but are
deprecated in favour of the packed format.
"""

from .chunk import ColumnChunk
from .column_store import DEFAULT_CHUNK_SIZE, StoredColumn, gather_rows
from .serialization import (
    read_form,
    read_stored_column,
    read_table,
    write_form,
    write_stored_column,
    write_table,
)
from .statistics import ColumnStatistics, compute_statistics
from .table import Table

__all__ = [
    "gather_rows",
    "ColumnChunk",
    "StoredColumn",
    "Table",
    "ColumnStatistics",
    "compute_statistics",
    "DEFAULT_CHUNK_SIZE",
    "write_form",
    "read_form",
    "write_stored_column",
    "read_stored_column",
    "write_table",
    "read_table",
    "save_table",
    "load_table",
]


def __getattr__(name):
    # Lazy re-exports from repro.io (which imports this package) — PEP 562
    # keeps the import graph acyclic.
    if name in ("save_table", "load_table"):
        from .. import io
        return getattr(io, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Columnar storage substrate: chunks, stored columns, tables, statistics.

This package carries the "implementation-specific adornments" the paper's
pure-columns view deliberately strips from compressed forms: fixed-size
chunking, per-chunk statistics (zone maps), per-chunk encoding choices, and
the table abstraction the examples and query engine work against.
"""

from .chunk import ColumnChunk
from .column_store import DEFAULT_CHUNK_SIZE, StoredColumn, gather_rows
from .serialization import (
    read_form,
    read_stored_column,
    read_table,
    write_form,
    write_stored_column,
    write_table,
)
from .statistics import ColumnStatistics, compute_statistics
from .table import Table

__all__ = [
    "gather_rows",
    "ColumnChunk",
    "StoredColumn",
    "Table",
    "ColumnStatistics",
    "compute_statistics",
    "DEFAULT_CHUNK_SIZE",
    "write_form",
    "read_form",
    "write_stored_column",
    "read_stored_column",
    "write_table",
    "read_table",
]

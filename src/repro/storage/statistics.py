"""Per-column / per-chunk statistics.

The storage layer keeps, for every column chunk, the light statistics an
analytic DBMS would keep anyway (min/max "zone maps", counts, run counts,
distinct estimates).  They serve two masters:

* the **compression advisor** (:mod:`repro.planner`) uses them to estimate
  how well each scheme would do before trying it;
* the **query engine** (:mod:`repro.engine`) uses min/max bounds to skip
  chunks that cannot satisfy a predicate — the simplest instance of the
  paper's "use the coarse model to speed up selections".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..columnar import dtypes as _dt
from ..columnar.column import Column
from ..columnar.ops import runs as _runs
from ..errors import StorageError


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column (or column chunk).

    Attributes
    ----------
    count:
        Number of values.
    minimum / maximum:
        Value bounds (``None`` for an empty column).
    distinct_count:
        Exact number of distinct values.
    run_count:
        Number of maximal runs of equal values.
    is_sorted:
        Whether the values are non-decreasing.
    value_bits:
        Bits needed to store any value as-is (sign-aware).
    range_bits:
        Bits needed to store ``value - minimum`` (the width a global FOR
        reference would give).
    max_delta_bits:
        Bits needed for the largest adjacent difference (zig-zag), an
        indicator of how well DELTA+NS would do.
    """

    count: int
    minimum: Optional[int]
    maximum: Optional[int]
    distinct_count: int
    run_count: int
    is_sorted: bool
    value_bits: int
    range_bits: int
    max_delta_bits: int

    @property
    def average_run_length(self) -> float:
        """Mean number of elements per run (``count / run_count``)."""
        return self.count / self.run_count if self.run_count else 0.0

    @property
    def distinct_fraction(self) -> float:
        """Distinct values as a fraction of the count (1.0 = all unique)."""
        return self.distinct_count / self.count if self.count else 0.0

    def overlaps_range(self, lo, hi) -> bool:
        """Whether any value in [lo, hi] *could* be present (zone-map test)."""
        if self.count == 0 or self.minimum is None or self.maximum is None:
            return False
        return not (hi < self.minimum or lo > self.maximum)

    def contained_in_range(self, lo, hi) -> bool:
        """Whether *every* value is certainly within [lo, hi]."""
        if self.count == 0 or self.minimum is None or self.maximum is None:
            return False
        return lo <= self.minimum and self.maximum <= hi


def compute_statistics(column: Column) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for *column* in a handful of vector passes."""
    if not isinstance(column, Column):
        raise StorageError("compute_statistics() expects a Column")
    n = len(column)
    if n == 0:
        return ColumnStatistics(
            count=0, minimum=None, maximum=None, distinct_count=0, run_count=0,
            is_sorted=True, value_bits=1, range_bits=1, max_delta_bits=1,
        )
    values = column.values
    minimum = int(values.min())
    maximum = int(values.max())
    distinct = int(np.unique(values).size)
    run_count = _runs.count_runs(column)
    is_sorted = bool(np.all(values[1:] >= values[:-1])) if n > 1 else True
    value_bits = column.logical_bits_per_value()
    range_bits = _dt.bits_for_range(minimum, maximum)
    if n > 1:
        deltas = np.diff(values.astype(np.int64))
        max_delta = int(np.abs(deltas).max())
        max_delta_bits = max(1, max_delta.bit_length() + 1)
    else:
        max_delta_bits = 1
    return ColumnStatistics(
        count=n,
        minimum=minimum,
        maximum=maximum,
        distinct_count=distinct,
        run_count=run_count,
        is_sorted=is_sorted,
        value_bits=value_bits,
        range_bits=range_bits,
        max_delta_bits=max_delta_bits,
    )

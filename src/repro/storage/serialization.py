"""Persisting compressed columns and tables to disk (v1, deprecated).

A compressed form is just named columns plus scalar parameters, so
persistence is deliberately boring: each stored column becomes a directory
with one ``.npy`` file per constituent (nested constituents use
``<constituent>/`` subdirectories) and a JSON manifest recording the scheme
name, its construction parameters, the form parameters, dtypes and chunk
boundaries.  Loading rebuilds the scheme objects through the registry
(:mod:`repro.schemes.registry`) and returns fully functional
:class:`~repro.storage.column_store.StoredColumn` / :class:`~repro.storage.
table.Table` objects — the on-disk format *is* the paper's pure-columns view.

This loose-directory layout is the **deprecated v1 format**: it reloads
tables eagerly and fully, so a cold query pays for every chunk of every
column.  Durable tables now live in :mod:`repro.io` — a versioned packed
single-file format whose scans are mmap-lazy — and
:func:`repro.io.load_table` keeps v1 directories readable (with a
:class:`DeprecationWarning`; :func:`repro.io.migrate_v1` converts in one
call).  The scheme-description helpers (:func:`describe_scheme` /
:func:`rebuild_scheme`) are shared by both formats and are not deprecated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from ..columnar.column import Column
from ..errors import StorageError
from ..schemes.base import CompressedForm, CompressionScheme
from ..schemes.composite import Cascade
from ..schemes.registry import make_scheme
from .chunk import ColumnChunk
from .column_store import StoredColumn
from .statistics import ColumnStatistics
from .table import Table

FORMAT_VERSION = 1

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# Scheme <-> description
# --------------------------------------------------------------------------- #

def describe_scheme(scheme: CompressionScheme) -> Dict[str, Any]:
    """A JSON-serialisable description from which the scheme can be rebuilt."""
    if isinstance(scheme, Cascade):
        return {
            "kind": "cascade",
            "outer": describe_scheme(scheme.outer),
            "inner": {name: describe_scheme(inner) for name, inner in scheme.inner.items()},
        }
    return {"kind": "scheme", "name": scheme.name, "parameters": scheme.parameters()}


def rebuild_scheme(description: Dict[str, Any]) -> CompressionScheme:
    """Invert :func:`describe_scheme` via the scheme registry."""
    if description["kind"] == "cascade":
        outer = rebuild_scheme(description["outer"])
        inner = {name: rebuild_scheme(sub) for name, sub in description["inner"].items()}
        return Cascade(outer, inner)
    return make_scheme(description["name"], **description["parameters"])


def _load_manifest(manifest_path: Path, what: str) -> Dict[str, Any]:
    """Parse a v1 JSON manifest, with clear errors naming the path.

    Garbage JSON and version mismatches both raise :class:`StorageError`
    (naming the path and the found vs. expected version) instead of leaking
    an opaque ``json``/``KeyError`` to the caller.
    """
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise StorageError(
            f"{manifest_path}: corrupt {what} manifest ({error})"
        ) from None
    found = manifest.get("format_version")
    if found != FORMAT_VERSION:
        raise StorageError(
            f"{manifest_path}: unsupported {what} format version {found!r}, "
            f"this reader handles version {FORMAT_VERSION} "
            "(packed v2 files are read by repro.io.load_table)"
        )
    return manifest


# --------------------------------------------------------------------------- #
# Compressed forms
# --------------------------------------------------------------------------- #

def _json_safe(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def write_form(form: CompressedForm, directory: PathLike) -> None:
    """Write a compressed form into *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, column in form.columns.items():
        np.save(directory / f"{name}.npy", column.values, allow_pickle=False)
    for name, nested in form.nested.items():
        write_form(nested, directory / name)
    manifest = {
        "format_version": FORMAT_VERSION,
        "scheme": form.scheme,
        "parameters": _json_safe(form.parameters),
        "original_length": form.original_length,
        "original_dtype": np.dtype(form.original_dtype).str,
        "columns": sorted(form.columns),
        "nested": sorted(form.nested),
    }
    (directory / "form.json").write_text(json.dumps(manifest, indent=2))


def read_form(directory: PathLike) -> CompressedForm:
    """Read a compressed form previously written by :func:`write_form`."""
    directory = Path(directory)
    manifest_path = directory / "form.json"
    if not manifest_path.exists():
        raise StorageError(f"{directory} does not contain a compressed form manifest")
    manifest = _load_manifest(manifest_path, "compressed form")
    columns = {
        name: Column(np.load(directory / f"{name}.npy", allow_pickle=False), name=name)
        for name in manifest["columns"]
    }
    nested = {name: read_form(directory / name) for name in manifest["nested"]}
    return CompressedForm(
        scheme=manifest["scheme"],
        columns=columns,
        parameters=dict(manifest["parameters"]),
        original_length=int(manifest["original_length"]),
        original_dtype=np.dtype(manifest["original_dtype"]),
        nested=nested,
    )


# --------------------------------------------------------------------------- #
# Stored columns and tables
# --------------------------------------------------------------------------- #

def write_stored_column(column: StoredColumn, directory: PathLike) -> None:
    """Persist a chunked, compressed column."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    chunk_manifests = []
    for index, chunk in enumerate(column.iter_chunks()):
        chunk_dir = directory / f"chunk_{index:06d}"
        write_form(chunk.form, chunk_dir)
        chunk_manifests.append({
            "directory": chunk_dir.name,
            "row_offset": chunk.row_offset,
            "scheme": describe_scheme(chunk.scheme),
            "statistics": _json_safe(vars(chunk.statistics)),
        })
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": column.name,
        "dtype": np.dtype(column.dtype).str,
        "chunks": chunk_manifests,
    }
    (directory / "column.json").write_text(json.dumps(manifest, indent=2))


def read_stored_column(directory: PathLike) -> StoredColumn:
    """Load a column previously written by :func:`write_stored_column`."""
    directory = Path(directory)
    manifest_path = directory / "column.json"
    if not manifest_path.exists():
        raise StorageError(f"{directory} does not contain a stored-column manifest")
    manifest = _load_manifest(manifest_path, "stored-column")
    chunks = []
    for chunk_manifest in manifest["chunks"]:
        form = read_form(directory / chunk_manifest["directory"])
        scheme = rebuild_scheme(chunk_manifest["scheme"])
        statistics = ColumnStatistics(**chunk_manifest["statistics"])
        chunks.append(ColumnChunk(form=form, scheme=scheme, statistics=statistics,
                                  row_offset=int(chunk_manifest["row_offset"])))
    return StoredColumn(manifest["name"], chunks, np.dtype(manifest["dtype"]))


def write_table(table: Table, directory: PathLike) -> None:
    """Persist a whole table (one subdirectory per column)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in table.column_names:
        write_stored_column(table.column(name), directory / name)
    manifest = {
        "format_version": FORMAT_VERSION,
        "columns": table.column_names,
        "row_count": table.row_count,
    }
    (directory / "table.json").write_text(json.dumps(manifest, indent=2))


def read_table(directory: PathLike) -> Table:
    """Load a table previously written by :func:`write_table`."""
    directory = Path(directory)
    manifest_path = directory / "table.json"
    if not manifest_path.exists():
        raise StorageError(f"{directory} does not contain a table manifest")
    manifest = _load_manifest(manifest_path, "table")
    columns = {name: read_stored_column(directory / name) for name in manifest["columns"]}
    table = Table(columns)
    if table.row_count != manifest["row_count"]:
        raise StorageError(
            f"table manifest claims {manifest['row_count']} rows, "
            f"columns hold {table.row_count}"
        )
    return table

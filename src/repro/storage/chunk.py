"""Column chunks: the storage-layer wrapper around compressed forms.

The paper deliberately strips compressed forms down to "pure" columns; the
storage adornments it strips away — fixed-length blocks, per-block headers
and statistics, padding — have to live *somewhere*, and in this library they
live here.  A :class:`ColumnChunk` is one fixed-size horizontal slice of a
column: its compressed form (or plain values), the scheme that produced it,
its statistics, and its position in the column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..columnar.column import Column
from ..errors import StorageError
from ..schemes.base import CompressedForm, CompressionScheme
from ..schemes.identity import Identity
from .statistics import ColumnStatistics, compute_statistics


@dataclass
class ColumnChunk:
    """One horizontal slice of a stored column.

    Attributes
    ----------
    form:
        The compressed form of the chunk's values.
    scheme:
        The scheme object able to decompress ``form``.
    statistics:
        Statistics of the *uncompressed* values (computed at write time).
    row_offset:
        Index of the chunk's first row within the column.
    """

    form: CompressedForm
    scheme: CompressionScheme
    statistics: ColumnStatistics
    row_offset: int = 0

    @property
    def row_count(self) -> int:
        """Number of rows stored in this chunk."""
        return self.form.original_length

    @property
    def encoding(self) -> str:
        """Name of the compression scheme used for this chunk."""
        return self.form.scheme

    def compressed_size_bytes(self) -> int:
        """Physical bytes used by the chunk's compressed form."""
        return self.form.compressed_size_bytes()

    def uncompressed_size_bytes(self) -> int:
        """Bytes the chunk's values would occupy uncompressed."""
        return self.form.uncompressed_size_bytes()

    def decompress(self) -> Column:
        """Materialise the chunk's values.

        Decompression goes through the scheme's *compiled* plan: the
        compiled artifact is cached by scheme structural signature
        (:mod:`repro.columnar.compile`), so every chunk of a column encoded
        with the same scheme executes the same optimized plan — the
        per-chunk cost is execution only, never plan building or
        optimization.
        """
        return self.scheme.decompress(self.form)

    def compiled_plan(self):
        """The shared :class:`~repro.columnar.compile.executor.CompiledPlan`
        this chunk decompresses through (one object per scheme signature)."""
        return self.scheme.compiled_decompression_plan(self.form)

    def row_range(self) -> range:
        """Global row indices covered by this chunk."""
        return range(self.row_offset, self.row_offset + self.row_count)

    @staticmethod
    def from_column(values: Column, scheme: Optional[CompressionScheme] = None,
                    row_offset: int = 0) -> "ColumnChunk":
        """Compress *values* with *scheme* (default: no compression) into a chunk."""
        if len(values) == 0:
            raise StorageError("cannot create a chunk from an empty column")
        scheme = scheme if scheme is not None else Identity()
        statistics = compute_statistics(values)
        form = scheme.compress(values)
        return ColumnChunk(form=form, scheme=scheme, statistics=statistics,
                           row_offset=row_offset)

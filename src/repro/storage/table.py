"""Tables: named collections of stored columns of equal length.

This is the thin relational veneer over :class:`~repro.storage.column_store.
StoredColumn` that the examples and the query engine work against.  It is
deliberately small — the paper is about columns, not about SQL — but it is
complete enough to express the motivating workload (a shipped-orders table
with a date column) and the queries of experiments E9/E10.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..columnar.column import Column
from ..errors import StorageError
from .column_store import DEFAULT_CHUNK_SIZE, SchemeChooser, StoredColumn


class Table:
    """A collection of equal-length stored columns."""

    def __init__(self, columns: Mapping[str, StoredColumn]):
        if not columns:
            raise StorageError("a table needs at least one column")
        counts = {name: column.row_count for name, column in columns.items()}
        if len(set(counts.values())) != 1:
            raise StorageError(f"columns disagree on row count: {counts}")
        self._columns: Dict[str, StoredColumn] = dict(columns)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_columns(
        columns: Mapping[str, Column],
        schemes: Union[Mapping[str, SchemeChooser], str, None] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "Table":
        """Build a table from in-memory columns.

        *schemes* optionally maps column names to the scheme (or per-chunk
        scheme chooser) used to store them; unmentioned columns are stored
        uncompressed.  The string ``"auto"`` routes every column through the
        compression advisor over the default scheme registry, so in-memory
        results (query outputs, join products) round-trip into first-class
        compressed storage.
        """
        if schemes == "auto":
            # Imported lazily: the planner depends on storage statistics.
            from ..planner import choose_scheme
            schemes = {name: choose_scheme for name in columns}
        schemes = schemes or {}
        stored = {
            name: StoredColumn.from_column(column, name=name,
                                           scheme=schemes.get(name),
                                           chunk_size=chunk_size)
            for name, column in columns.items()
        }
        return Table(stored)

    @staticmethod
    def from_pydict(
        data: Mapping[str, Sequence],
        schemes: Union[Mapping[str, SchemeChooser], str, None] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "Table":
        """Build a table from plain Python sequences / NumPy arrays (see
        :meth:`from_columns` for the *schemes* forms, including ``"auto"``)."""
        columns = {name: Column(np.asarray(values), name=name)
                   for name, values in data.items()}
        return Table.from_columns(columns, schemes=schemes, chunk_size=chunk_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def row_count(self) -> int:
        return next(iter(self._columns.values())).row_count

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> StoredColumn:
        """The stored column *name* (raises on unknown names)."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table has no column {name!r}; columns: {self.column_names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def compressed_size_bytes(self) -> int:
        """Total compressed bytes across all columns."""
        return sum(column.compressed_size_bytes() for column in self._columns.values())

    def uncompressed_size_bytes(self) -> int:
        """Total uncompressed bytes across all columns."""
        return sum(column.uncompressed_size_bytes() for column in self._columns.values())

    def compression_ratio(self) -> float:
        """Table-wide compression ratio."""
        compressed = self.compressed_size_bytes()
        return self.uncompressed_size_bytes() / compressed if compressed else float("inf")

    def summary(self) -> str:
        """A multi-line, human-readable storage summary (per-column encodings and sizes)."""
        lines = [f"Table: {self.row_count} rows, {len(self._columns)} columns, "
                 f"ratio {self.compression_ratio():.2f}x"]
        for name, column in self._columns.items():
            encodings = sorted(set(column.encodings()))
            lines.append(
                f"  {name}: {column.uncompressed_size_bytes()} B -> "
                f"{column.compressed_size_bytes()} B "
                f"({column.compression_ratio():.2f}x) via {', '.join(encodings)}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def materialize(self, names: Optional[Iterable[str]] = None) -> Dict[str, Column]:
        """Decompress the requested (default: all) columns."""
        names = list(names) if names is not None else self.column_names
        return {name: self.column(name).materialize() for name in names}

    def materialize_rows(self, positions: Column,
                         names: Optional[Iterable[str]] = None) -> Dict[str, Column]:
        """Decompress only the given rows of the requested columns (late materialisation)."""
        names = list(names) if names is not None else self.column_names
        return {name: self.column(name).materialize_rows(positions) for name in names}

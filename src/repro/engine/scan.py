"""Selection-aware, chunk-parallel scan scheduling.

The seed engine evaluated a multi-predicate filter as one full-table pass
*per predicate* and intersected the resulting global position lists with
``np.intersect1d`` — every conjunct paid for every chunk, all predicates but
the first lost their :class:`~repro.engine.operators.ScanStats`, and the
whole thing ran on one thread.  This module replaces that with a
chunk-at-a-time scheduler that evaluates the *whole conjunction* per chunk:

* per chunk, each conjunct goes through the usual cascade — zone-map
  decision, compressed-form pushdown, decompress-and-compare — but the
  surviving-position set is a chunk-local boolean mask that is AND-ed in
  place (no global ``intersect1d``), and the chunk **short-circuits** as
  soon as the mask goes empty: later conjuncts are never evaluated there;
* values decompressed for one conjunct are cached for the duration of the
  chunk, so several predicates over the same column cost one decompression
  pass, and the projection/aggregation columns requested via *materialize*
  are gathered inside the same per-chunk step (reusing that cache) instead
  of in a second global pass;
* :class:`~repro.engine.operators.ScanStats` are merged across **all**
  conjuncts (the seed kept only the first predicate's stats);
* chunks optionally fan out over a ``ThreadPoolExecutor`` — the NumPy
  kernels doing the actual work release the GIL, and the compiled-plan
  caches of :mod:`repro.columnar.compile.cache` are thread-safe — while the
  merge happens in chunk order, so parallel results are bit-identical to
  serial ones.

The scheduler is storage-agnostic about where chunk constituents live: over
a packed table opened through :mod:`repro.io`, each chunk's compressed form
is mmap-lazy, so the zone-map decisions above (taken from footer statistics)
happen **before any file I/O**, a pruned chunk's byte ranges are never
mapped, and compressed-form pushdown maps only the constituents it reads.
Nothing here special-cases that — laziness lives behind the
:class:`~repro.schemes.base.CompressedForm` constituent mapping.

:func:`repro.storage.column_store.gather_rows` (re-exported here) is the
scheduler's materialisation half on its own: it buckets a position list by
chunk with one ``searchsorted`` (instead of one boolean mask per chunk) and
decompresses only the chunks that are actually hit;
:meth:`~repro.storage.column_store.StoredColumn.materialize_rows` goes
through it.

Two extension points serve the lazy query API (:mod:`repro.api`):

* **row filters** — duck-typed objects with ``columns`` (referenced column
  names), ``evaluate(env) -> bool ndarray`` (*env* maps each referenced
  column to its values over the chunk range) and ``chunk_decision(stats_env)
  -> Optional[bool]`` — express predicates the single-column
  :class:`~repro.engine.predicates.Predicate` cascade cannot, e.g.
  ``a < b`` across columns.  They are evaluated after the per-column
  conjuncts (sharing the same per-chunk decompression cache and
  short-circuiting), with zone-map decisions from interval arithmetic over
  every referenced column's statistics;
* **derived columns** — ``(name, spec)`` pairs where *spec* has ``columns``
  and ``evaluate(env) -> ndarray``; the expression is evaluated per chunk
  range against values gathered at the surviving positions from the scan's
  shared decompressed buffers, so a projection like ``price * qty`` never
  materialises its inputs table-wide.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..columnar.column import Column
from ..errors import CorruptionError, QueryError, ScanTimeoutError
from ..storage.column_store import StoredColumn, gather_rows
from ..storage.table import Table
from . import kernels, resilience
from .operators import ScanStats, SelectionVector
from .predicates import Between, Equals, Predicate, RangeBounds
from .resilience import DEFAULT_FAULT_POLICY, FaultPlan, FaultPolicy

__all__ = ["ScanResult", "scan_table", "gather_rows", "resolve_parallelism",
           "describe_backend", "BACKENDS"]

#: The pluggable execution backends a scan can run on: ``serial`` (one
#: thread), ``thread`` (the historical ``ThreadPoolExecutor`` fan-out — GIL
#: -bound for NumPy-light chunks, wins only when kernels release the GIL for
#: long stretches), and ``process`` (a pool of long-lived worker processes
#: that mmap the same packed file, see :mod:`repro.engine.parallel`).
BACKENDS = ("serial", "thread", "process")

#: Tables below this row count resolve ``parallelism="auto"`` to serial —
#: fan-out overhead cannot pay for itself on data this small.
MIN_PARALLEL_ROWS = 1 << 16


# --------------------------------------------------------------------------- #
# Shared thread pools (one per worker count, created lazily, kept for the
# life of the process so the thread path stops paying pool startup per query)
# --------------------------------------------------------------------------- #

_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}
_THREAD_POOLS_LOCK = threading.Lock()


def _shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    with _THREAD_POOLS_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"repro-scan-{workers}")
            _THREAD_POOLS[workers] = pool
        return pool


def _shutdown_thread_pools() -> None:
    with _THREAD_POOLS_LOCK:
        pools = list(_THREAD_POOLS.values())
        _THREAD_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False)


atexit.register(_shutdown_thread_pools)


def resolve_parallelism(parallelism: Union[int, str], num_ranges: int,
                        row_count: Optional[int] = None) -> int:
    """Resolve a parallelism request to an effective worker count.

    ``"auto"`` means ``min(cpu_count, num_ranges)``, falling back to serial
    for tiny tables (fewer than :data:`MIN_PARALLEL_ROWS` rows) — a
    single-core machine or a single-chunk table resolves to 1.  An explicit
    integer is honoured but never exceeds the number of chunk ranges (extra
    workers would only idle).
    """
    if parallelism == "auto":
        if row_count is not None and row_count < MIN_PARALLEL_ROWS:
            return 1
        return max(1, min(os.cpu_count() or 1, num_ranges))
    workers = int(parallelism)
    if workers < 1:
        raise QueryError(f"parallelism must be >= 1 or 'auto', got {parallelism!r}")
    return max(1, min(workers, num_ranges)) if num_ranges else 1


@dataclass
class ScanResult:
    """What one scheduled scan produced.

    Attributes
    ----------
    selection:
        Qualifying global row positions, in ascending order.
    stats:
        Merged :class:`ScanStats` over every conjunct, or ``None`` for a
        predicate-less scan.
    columns:
        The columns requested via ``materialize``, gathered at the selected
        positions chunk-by-chunk inside the scan pass.
    """

    selection: SelectionVector
    stats: Optional[ScanStats]
    columns: Dict[str, Column] = field(default_factory=dict)
    #: What actually executed: ``"serial"``, ``"thread[n]"``, ``"process[n]"``
    #: — including any fallback note (e.g. a process scan over a table that
    #: is not backed by one packed file runs serially and says why).
    backend: str = "serial"


@dataclass
class _RangeOutcome:
    """Per-chunk-range result, merged in range order by the scheduler."""

    positions: np.ndarray
    stats: ScanStats
    pieces: Dict[str, np.ndarray]


def _quarantined_outcome(table: Table, materialize: Sequence[str],
                         derive: Sequence[Tuple[str, object]]
                         ) -> _RangeOutcome:
    """The outcome of a chunk range skipped under ``on_corruption="quarantine"``.

    Zero rows, output arrays of the dtypes a real outcome would carry
    (derived expressions are evaluated over empty inputs so their result
    dtype matches), and the skip accounted in ``chunks_quarantined`` (a
    result-affecting counter — it stays in ``ScanStats.comparable()``) and
    ``fault_events``.
    """
    stats = ScanStats()
    stats.chunks_quarantined = 1
    stats.fault_events = 1
    positions = np.empty(0, dtype=np.int64)
    pieces: Dict[str, np.ndarray] = {
        name: np.empty(0, dtype=table.column(name).dtype)
        for name in materialize}
    if derive:
        gathered: Dict[str, np.ndarray] = dict(pieces)
        for out_name, spec in derive:
            for name in spec.columns:
                if name not in gathered:
                    gathered[name] = np.empty(0,
                                              dtype=table.column(name).dtype)
            value = np.asarray(spec.evaluate({name: gathered[name]
                                              for name in spec.columns}))
            if value.ndim == 0:
                value = np.full(0, value[()])
            pieces[out_name] = value
    return _RangeOutcome(positions=positions, stats=stats, pieces=pieces)


# --------------------------------------------------------------------------- #
# Chunk bucketing
# --------------------------------------------------------------------------- #

def _chunk_starts(stored: StoredColumn) -> np.ndarray:
    return np.asarray([chunk.row_offset for chunk in stored.chunks], dtype=np.int64)


def _pushable_bounds(predicate: Predicate) -> Optional[RangeBounds]:
    """The inclusive range a predicate pushes down as, if any.

    ``Between`` carries its bounds; an integer ``Equals`` is the degenerate
    range ``[value, value]``.  Anything else stays on the decompress-and-
    compare path.
    """
    if isinstance(predicate, Between):
        return predicate.bounds
    if isinstance(predicate, Equals):
        value = predicate.value
        if isinstance(value, (int, np.integer)) \
                and not isinstance(value, (bool, np.bool_)):
            return RangeBounds(int(value), int(value))
    return None


def _overlapping_chunks(stored: StoredColumn, starts: np.ndarray,
                        lo: int, hi: int):
    """Chunks of *stored* intersecting the global row range ``[lo, hi)``."""
    first = int(np.searchsorted(starts, lo, side="right")) - 1
    for index in range(max(first, 0), stored.num_chunks):
        chunk = stored.chunks[index]
        if chunk.row_offset >= hi:
            break
        yield chunk


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #

def _scan_starts(table: Table, predicates: Sequence[Predicate],
                 row_filters: Sequence,
                 materialize: Sequence[str],
                 derive: Sequence[Tuple[str, object]]
                 ) -> Dict[str, np.ndarray]:
    """Chunk-start offsets for every column the conjunction touches.

    Worker processes (:mod:`repro.engine.parallel`) rebuild this from the
    same spec, so coordinator and workers bucket chunks identically.
    """
    derive_inputs = [name for __, spec in derive for name in spec.columns]
    filter_inputs = [name for rf in row_filters for name in rf.columns]
    return {
        name: _chunk_starts(table.column(name))
        for name in dict.fromkeys(
            [p.column_name for p in predicates] + filter_inputs
            + list(materialize) + derive_inputs)
    }


def _grid_ranges(table: Table, predicates: Sequence[Predicate],
                 row_filters: Sequence) -> List[Tuple[int, int]]:
    """The scheduling grid: the chunk ranges of the first conjunct's column.

    (Tables built through :meth:`Table.from_columns` share one chunk size,
    so in practice every conjunct sees exactly one chunk per range; the
    scheduler still handles misaligned columns by slicing overlaps.)
    """
    if predicates:
        grid_name = predicates[0].column_name
    else:
        grid_name = next((name for rf in row_filters for name in rf.columns),
                         None)
        if grid_name is None:  # only column-free (constant) row filters
            grid_name = table.column_names[0]
    grid_column = table.column(grid_name)
    return [(chunk.row_offset, chunk.row_offset + chunk.row_count)
            for chunk in grid_column.iter_chunks()]


def _scan_range(table: Table, predicates: Sequence[Predicate],
                starts_by_column: Dict[str, np.ndarray],
                lo: int, hi: int, use_pushdown: bool, use_zone_maps: bool,
                materialize: Sequence[str],
                row_filters: Sequence = (),
                derive: Sequence[Tuple[str, object]] = (),
                use_compressed_exec: bool = True,
                chunk_cache=None) -> _RangeOutcome:
    """Evaluate the whole conjunction (and gather columns) over ``[lo, hi)``.

    *chunk_cache*, when given, is a hot-chunk decompression cache (see
    :class:`repro.engine.parallel.ChunkCache`) consulted before scheduling a
    decompression; hits serve the cached column without decoding (the cache
    traffic lands in the ``hot_cache_*`` stats, and ``chunks_decompressed``
    counts hits too so it stays warm/cold-comparable).
    """
    stats = ScanStats()
    span = hi - lo
    mask: Optional[np.ndarray] = None  # None == every row still alive
    alive = True
    #: (column name, chunk row offset) -> decompressed chunk values; shared
    #: between conjuncts and with the materialisation step below, so each
    #: chunk is decompressed at most once per scan pass.
    values_cache: Dict[Tuple[str, int], Column] = {}
    #: (column name, chunk row offset) -> uncompressed bytes, for chunks some
    #: step served in the compressed domain; chunks still unmaterialised when
    #: the range finishes count as decompression output actually avoided.
    compressed_saved: Dict[Tuple[str, int], int] = {}

    def chunk_values(name: str, chunk) -> Column:
        key = (name, chunk.row_offset)
        values = values_cache.get(key)
        if values is None:
            if chunk_cache is not None:
                values = chunk_cache.lookup(key)
            # chunks_decompressed counts chunks whose decompressed values
            # this scan needed — hit or miss — so it stays comparable()
            # between cold and warm caches; hot_cache_misses is the number
            # of actual decodes.
            stats.chunks_decompressed += 1
            if values is not None:
                stats.hot_cache_hits += 1
            else:
                if chunk_cache is not None:
                    stats.hot_cache_misses += 1
                values = chunk.decompress()
                if chunk_cache is not None:
                    stats.hot_cache_evictions += chunk_cache.insert(key, values)
            values_cache[key] = values
        return values

    def span_values(name: str) -> np.ndarray:
        """The column's values over ``[lo, hi)`` (no copy when one chunk covers it)."""
        stored = table.column(name)
        out: Optional[np.ndarray] = None
        for chunk in _overlapping_chunks(stored, starts_by_column[name], lo, hi):
            o_lo = max(lo, chunk.row_offset)
            o_hi = min(hi, chunk.row_offset + chunk.row_count)
            piece = chunk_values(name, chunk).values[
                o_lo - chunk.row_offset:o_hi - chunk.row_offset]
            if out is None and o_lo == lo and o_hi == hi:
                return piece
            if out is None:
                out = np.empty(span, dtype=stored.dtype)
            out[o_lo - lo:o_hi - lo] = piece
        assert out is not None, f"column {name!r} does not cover rows [{lo}, {hi})"
        return out

    for predicate in predicates:
        name = predicate.column_name
        stored = table.column(name)
        for chunk in _overlapping_chunks(stored, starts_by_column[name], lo, hi):
            stats.chunks_total += 1
            if not alive:
                stats.chunks_short_circuited += 1
                continue
            o_lo = max(lo, chunk.row_offset)
            o_hi = min(hi, chunk.row_offset + chunk.row_count)
            stats.rows_scanned += o_hi - o_lo

            decision = (predicate.chunk_decision(chunk.statistics)
                        if use_zone_maps else None)
            if decision is True:
                stats.chunks_fully_accepted += 1
                continue
            if decision is False:
                stats.chunks_skipped += 1
                if mask is None:
                    mask = np.ones(span, dtype=bool)
                mask[o_lo - lo:o_hi - lo] = False
                continue

            chunk_mask: Optional[np.ndarray] = None
            if use_pushdown:
                bounds = _pushable_bounds(predicate)
                if bounds is not None:
                    pushed = kernels.filter_range(chunk.scheme, chunk.form,
                                                  bounds)
                    if pushed is not None:
                        chunk_mask, push_stats = pushed
                        stats.chunks_pushed_down += 1
                        stats.rows_computed_compressed += o_hi - o_lo
                        compressed_saved.setdefault(
                            (name, chunk.row_offset),
                            chunk.uncompressed_size_bytes())
                        stats.merge_pushdown(push_stats)
            if chunk_mask is None:
                chunk_mask = predicate.evaluate(chunk_values(name, chunk)).values

            segment = chunk_mask[o_lo - chunk.row_offset:o_hi - chunk.row_offset]
            if mask is None:
                mask = np.ones(span, dtype=bool)
            region = mask[o_lo - lo:o_hi - lo]
            np.logical_and(region, segment, out=region)
        if mask is not None and not mask.any():
            alive = False

    # Row filters: multi-column conjuncts, evaluated against the chunk
    # range's shared decompressed buffers after the per-column cascade.
    span_cache: Dict[str, np.ndarray] = {}
    for row_filter in row_filters:
        stats.chunks_total += 1
        if not alive:
            stats.chunks_short_circuited += 1
            continue
        stats.rows_scanned += span
        decision = None
        if use_zone_maps:
            stats_env: Optional[Dict[str, object]] = {}
            for name in row_filter.columns:
                stored = table.column(name)
                overlapping = list(
                    _overlapping_chunks(stored, starts_by_column[name], lo, hi))
                if len(overlapping) != 1:
                    stats_env = None  # misaligned chunks: no single zone map
                    break
                stats_env[name] = overlapping[0].statistics
            if stats_env is not None:
                decision = row_filter.chunk_decision(stats_env)
        if decision is True:
            stats.chunks_fully_accepted += 1
            continue
        if decision is False:
            stats.chunks_skipped += 1
            if mask is None:
                mask = np.zeros(span, dtype=bool)
            else:
                mask[:] = False
            alive = False
            continue
        for name in row_filter.columns:
            if name not in span_cache:
                span_cache[name] = span_values(name)
        filter_mask = np.asarray(
            row_filter.evaluate({name: span_cache[name]
                                 for name in row_filter.columns}), dtype=bool)
        if filter_mask.ndim == 0:  # constant filter: broadcast over the range
            filter_mask = np.full(span, bool(filter_mask))
        if mask is None:
            mask = filter_mask.copy()
        else:
            np.logical_and(mask, filter_mask, out=mask)
        if not mask.any():
            alive = False

    if mask is None:
        positions = np.arange(lo, hi, dtype=np.int64)
    else:
        positions = np.flatnonzero(mask).astype(np.int64) + lo
    stats.rows_selected += positions.size

    def gather(name: str) -> np.ndarray:
        stored = table.column(name)
        out = np.empty(positions.size, dtype=stored.dtype)
        if positions.size:
            for chunk in _overlapping_chunks(stored, starts_by_column[name], lo, hi):
                c_lo, c_hi = chunk.row_offset, chunk.row_offset + chunk.row_count
                start, stop = np.searchsorted(positions, [c_lo, c_hi])
                if start == stop:
                    continue
                key = (name, chunk.row_offset)
                hits = stop - start
                # Sparse hits on a not-yet-decompressed chunk whose form can
                # gather positionally: stay in the compressed domain instead
                # of scheduling a decompression (bit-identical either way).
                if (use_compressed_exec and key not in values_cache
                        and hits * 4 <= chunk.row_count):
                    gathered = kernels.gather(chunk.scheme, chunk.form,
                                              positions[start:stop] - c_lo)
                    if gathered is not None:
                        out[start:stop] = gathered
                        stats.rows_computed_compressed += hits
                        compressed_saved.setdefault(
                            key, chunk.uncompressed_size_bytes())
                        continue
                values = chunk_values(name, chunk).values
                out[start:stop] = values[positions[start:stop] - c_lo]
        return out

    pieces: Dict[str, np.ndarray] = {}
    for name in materialize:
        pieces[name] = gather(name)
    if derive:
        gathered: Dict[str, np.ndarray] = dict(pieces)
        for out_name, spec in derive:
            for name in spec.columns:
                if name not in gathered:
                    gathered[name] = gather(name)
            value = np.asarray(spec.evaluate({name: gathered[name]
                                              for name in spec.columns}))
            if value.ndim == 0:  # constant expression: broadcast
                value = np.full(positions.size, value[()])
            pieces[out_name] = value
    for key, saved_bytes in compressed_saved.items():
        if key not in values_cache:
            stats.bytes_decompressed_saved += saved_bytes
    return _RangeOutcome(positions=positions, stats=stats, pieces=pieces)


def _resolve_backend_kind(backend: Optional[str], workers: int
                          ) -> str:
    """The execution kind for a resolved worker count: ``backend=None``
    keeps the historical contract (``parallelism > 1`` means threads), an
    explicit backend degrades to serial when only one worker is useful."""
    if backend is None or backend == "auto":
        return "thread" if workers > 1 else "serial"
    if backend not in BACKENDS:
        raise QueryError(f"unknown execution backend {backend!r}; "
                         f"known: {BACKENDS}")
    if workers <= 1:
        return "serial"
    return backend


def describe_backend(table: Table, backend: Optional[str],
                     parallelism: Union[int, str]) -> str:
    """A human-readable account of the backend a scan over *table* will
    choose — used by ``explain()`` so the report cannot drift from the
    executor's decision."""
    grid_chunks = table.column(table.column_names[0]).num_chunks
    workers = resolve_parallelism(parallelism, grid_chunks, table.row_count)
    kind = _resolve_backend_kind(backend, workers)
    if kind == "process":
        from .parallel import packed_source_path

        if packed_source_path(table) is None:
            return (f"serial (process[{parallelism}] requested; table is not "
                    "backed by a single packed file)")
    if kind != "serial":
        return f"{kind}[{workers}]"
    asked_parallel = parallelism == "auto" or (
        isinstance(parallelism, int) and parallelism > 1)
    if backend in ("thread", "process") or (backend != "serial" and asked_parallel):
        requested = backend if backend not in (None, "auto") else "thread"
        return f"serial ({requested}[{parallelism}] resolved to 1 worker)"
    return "serial"


def _first_line(error: BaseException) -> str:
    text = str(error).strip() or type(error).__name__
    return text.splitlines()[0]


def scan_table(table: Table, predicates: Sequence[Predicate],
               use_pushdown: bool = True, use_zone_maps: bool = True,
               parallelism: Union[int, str] = 1,
               materialize: Optional[Sequence[str]] = None,
               row_filters: Optional[Sequence] = None,
               derive: Optional[Sequence[Tuple[str, object]]] = None,
               use_compressed_exec: bool = True,
               backend: Optional[str] = None,
               cache_bytes: int = 0,
               fault_plan: Optional[FaultPlan] = None,
               fault_policy: Optional[FaultPolicy] = None
               ) -> ScanResult:
    """Run the chunk-at-a-time scan pipeline over *table*.

    Evaluates the conjunction of *predicates* plus *row_filters* (all of
    them, short-circuiting per chunk) and, when *materialize* names columns,
    gathers those columns at the qualifying positions inside the same pass.
    *derive* is an ordered sequence of ``(output name, spec)`` pairs whose
    expressions are evaluated per chunk range against the gathered values
    (see the module docstring for the spec protocol).  ``parallelism > 1``
    fans the chunk ranges out over a thread pool; results are merged in
    chunk order and are bit-identical to a serial scan.

    Compressed-domain execution is consulted before any decompression is
    scheduled: with *use_pushdown*, range/point conjuncts dispatch through
    the capability layer (:func:`repro.engine.kernels.filter_range`, which
    also peels cascades and compares packed words word-parallel), and with
    *use_compressed_exec* (default on) sparse materialisation gathers run
    positionally on capable compressed forms instead of decompressing the
    chunk.  ``ScanStats.rows_computed_compressed`` and
    ``ScanStats.bytes_decompressed_saved`` account for both.

    *fault_policy* governs what happens when faults surface (retries,
    deadline, corruption quarantine, process → thread → serial
    degradation); *fault_plan* injects deterministic faults for chaos
    testing — when ``None``, the ``REPRO_FAULT_PLAN`` environment variable
    may supply one.  See :mod:`repro.engine.resilience`.
    """
    from ..columnar.compile import cache_info

    materialize = list(materialize) if materialize is not None else []
    row_filters = list(row_filters) if row_filters else []
    derive = list(derive) if derive else []
    derive_inputs = [name for __, spec in derive for name in spec.columns]
    filter_inputs = [name for rf in row_filters for name in rf.columns]
    for name in materialize + derive_inputs + filter_inputs:
        if name not in table:
            raise QueryError(f"unknown scan column {name!r}")
    output_names = materialize + [name for name, __ in derive]
    if len(set(output_names)) != len(output_names):
        raise QueryError(f"duplicate scan output names in {output_names!r}")

    if not predicates and not row_filters:
        selection = SelectionVector.all_rows(table.row_count)
        columns = {name: table.column(name).materialize() for name in materialize}
        if derive:
            base: Dict[str, np.ndarray] = {
                name: column.values for name, column in columns.items()}
            for out_name, spec in derive:
                for name in spec.columns:
                    if name not in base:
                        base[name] = table.column(name).materialize().values
                value = np.asarray(spec.evaluate({name: base[name]
                                                  for name in spec.columns}))
                if value.ndim == 0:
                    value = np.full(table.row_count, value[()])
                columns[out_name] = Column(value, name=out_name)
        return ScanResult(selection=selection, stats=None, columns=columns)

    starts_by_column = _scan_starts(table, predicates, row_filters,
                                    materialize, derive)
    ranges = _grid_ranges(table, predicates, row_filters)

    workers = resolve_parallelism(parallelism, len(ranges), table.row_count)
    kind = _resolve_backend_kind(backend, workers)
    backend_note: Optional[str] = None
    policy = fault_policy if fault_policy is not None else DEFAULT_FAULT_POLICY
    plan = fault_plan if fault_plan is not None else resilience.plan_from_env()
    degradation: List[str] = []

    cache_before = cache_info()
    deadline = (time.monotonic() + policy.deadline_s
                if policy.deadline_s is not None else None)

    def run_range(bounds: Tuple[int, int]) -> _RangeOutcome:
        if deadline is not None and time.monotonic() > deadline:
            raise ScanTimeoutError(
                f"scan exceeded its {policy.deadline_s:g}s fault-policy "
                f"deadline before finishing chunk range "
                f"[{bounds[0]}, {bounds[1]})")
        try:
            return _scan_range(table, predicates, starts_by_column,
                               bounds[0], bounds[1], use_pushdown,
                               use_zone_maps, materialize,
                               row_filters=row_filters, derive=derive,
                               use_compressed_exec=use_compressed_exec)
        except CorruptionError:
            if policy.on_corruption != "quarantine":
                raise
            return _quarantined_outcome(table, materialize, derive)

    outcomes: Optional[List[_RangeOutcome]] = None
    pool_report = None
    if kind == "process":
        from . import parallel

        spec = parallel.ScanSpec(
            predicates=tuple(predicates), row_filters=tuple(row_filters),
            derive=tuple(derive), materialize=tuple(materialize),
            use_pushdown=use_pushdown, use_zone_maps=use_zone_maps,
            use_compressed_exec=use_compressed_exec, cache_bytes=cache_bytes,
            fault_plan=plan, on_corruption=policy.on_corruption)
        try:
            outcomes, pool_report = parallel.run_process_scan(
                table, ranges, workers, spec, policy)
        except parallel.ProcessBackendUnavailable as unavailable:
            kind, backend_note = "serial", str(unavailable)
        except parallel.ParallelExecutionError as failure:
            # ScanTimeoutError is deliberately not caught: the deadline is
            # spent, degrading would only blow the budget further.
            if policy.on_fault != "degrade":
                raise
            degradation.append(
                f"process[{workers}] failed: {_first_line(failure)}")
            kind = "thread" if workers > 1 else "serial"
    if outcomes is None:
        # resolve_parallelism clamps workers to len(ranges), so a "thread"
        # kind here always has more than one range to fan out.  Read-path
        # fault injection is installed for the duration (worker faults in
        # the plan are inert outside pool workers).
        with resilience.active(plan):
            if kind == "thread":
                try:
                    outcomes = list(
                        _shared_thread_pool(workers).map(run_range, ranges))
                except ScanTimeoutError:
                    raise
                except Exception as failure:
                    if policy.on_fault != "degrade":
                        raise
                    degradation.append(
                        f"thread[{workers}] failed: {_first_line(failure)}")
                    kind = "serial"
            if outcomes is None:
                outcomes = [run_range(bounds) for bounds in ranges]

    stats = ScanStats(predicates_total=len(predicates) + len(row_filters))
    for outcome in outcomes:
        stats.merge(outcome.stats)
    if pool_report is not None:
        pool_report.apply(stats)
    if kind != "process":
        # Process workers measure their own compile-cache deltas; the
        # coordinator's cache never warmed, so its delta would report 0.
        cache_after = cache_info()
        stats.plan_cache_hits = (cache_after["scheme_hits"] - cache_before["scheme_hits"]
                                 + cache_after["plan_hits"] - cache_before["plan_hits"])
        stats.plan_cache_misses = cache_after["plan_misses"] - cache_before["plan_misses"]

    backend_name = f"{kind}[{workers}]" if kind != "serial" else "serial"
    if degradation:
        backend_name += f" (degraded: {'; then '.join(degradation)})"
    elif backend_note is not None:
        backend_name += f" ({backend_note})"

    # A stored column always has at least one chunk, so outcomes is non-empty.
    positions = np.concatenate([o.positions for o in outcomes])
    selection = SelectionVector(Column(positions))
    columns = {
        name: Column(np.concatenate([o.pieces[name] for o in outcomes]),
                     name=name)
        for name in output_names
    }
    return ScanResult(selection=selection, stats=stats, columns=columns,
                      backend=backend_name)

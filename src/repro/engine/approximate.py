"""Approximate and gradually-refined query answers from coarse models.

Section II-B of the paper notes that the correspondence of a column to a
simple low-dimensional model can be used "in the context of approximate or
gradual-refinement query processing".  For model+residual schemes this is
almost free: the model part of the compressed form (the references of
FOR/PFOR, or a STEPFUNCTION form) already approximates every value to within
a known bound — the offset width — so aggregates computed from the model
alone come with hard error bounds, and the exact answer is one residual
decode away.

This module implements that for sums and averages over FOR-family forms:

* :func:`approximate_sum` — an estimate plus a guaranteed ±bound, computed
  from the references (and patch values) only;
* :func:`refine_sum` — the exact answer, obtained by adding the decoded
  offsets' contribution (the "gradual refinement" step);
* :class:`ApproximateAnswer` — the value/bounds container both return.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..model.fitting import segment_index
from ..schemes import _residuals
from ..schemes.base import CompressedForm

_SUPPORTED = ("FOR", "PFOR", "STEPFUNCTION")


@dataclass(frozen=True)
class ApproximateAnswer:
    """An estimate with hard lower/upper bounds (inclusive).

    ``exact`` is true when the bounds have collapsed onto the estimate —
    either because the answer was computed exactly, or because the model had
    no residual freedom left.
    """

    estimate: float
    lower_bound: float
    upper_bound: float

    @property
    def exact(self) -> bool:
        return self.lower_bound == self.upper_bound

    @property
    def uncertainty(self) -> float:
        """Half-width of the bound interval."""
        return (self.upper_bound - self.lower_bound) / 2.0

    def contains(self, value: float) -> bool:
        """Whether *value* lies within the guaranteed bounds."""
        return self.lower_bound <= value <= self.upper_bound


def _check_form(form: CompressedForm) -> None:
    if form.scheme not in _SUPPORTED:
        raise QueryError(
            f"approximate aggregation expects a FOR/PFOR/STEPFUNCTION form, "
            f"got {form.scheme!r}"
        )


def _per_element_offset_bounds(form: CompressedForm) -> tuple[int, int]:
    """The (lo, hi) range every element's offset is guaranteed to lie in."""
    if form.scheme == "STEPFUNCTION":
        return 0, 0
    width = int(form.parameter("offsets_width", 64))
    span = (1 << min(width, 62)) - 1
    if bool(form.parameter("offsets_zigzag", False)):
        half = (span + 1) // 2
        return -half, half
    return 0, span


def _model_sum(form: CompressedForm) -> int:
    """Sum of the model evaluation (references replicated over their segments)."""
    n = form.original_length
    segment_length = int(form.parameter("segment_length"))
    refs = form.constituent("refs").values.astype(np.int64)
    # Full segments contribute ref * segment_length; the last may be shorter.
    num_segments = len(refs)
    counts = np.full(num_segments, segment_length, dtype=np.int64)
    if num_segments:
        counts[-1] = n - segment_length * (num_segments - 1)
    total = int((refs * counts).sum())
    if form.scheme == "PFOR":
        # Patched elements' true values replace model + 0-offset values.
        positions = form.constituent("patch_positions").values
        if positions.size:
            seg = segment_index(n, segment_length)
            patch_values = form.constituent("patch_values").values.astype(np.int64)
            total += int((patch_values - refs[seg[positions]]).sum())
    return total


def approximate_sum(form: CompressedForm) -> ApproximateAnswer:
    """SUM(column) estimated from the model part of *form* alone.

    The estimate assumes every offset sits at the middle of its possible
    range; the bounds assume they all sit at one extreme.  No offsets are
    decoded.
    """
    _check_form(form)
    n = form.original_length
    if n == 0:
        return ApproximateAnswer(0.0, 0.0, 0.0)
    model_total = _model_sum(form)
    offset_lo, offset_hi = _per_element_offset_bounds(form)
    patch_count = int(form.parameter("patch_count", 0)) if form.scheme == "PFOR" else 0
    free_elements = n - patch_count
    lower = model_total + offset_lo * free_elements
    upper = model_total + offset_hi * free_elements
    return ApproximateAnswer(
        estimate=(lower + upper) / 2.0,
        lower_bound=float(lower),
        upper_bound=float(upper),
    )


def approximate_mean(form: CompressedForm) -> ApproximateAnswer:
    """AVG(column) estimated from the model part of *form* alone."""
    _check_form(form)
    n = form.original_length
    if n == 0:
        raise QueryError("mean of an empty column")
    total = approximate_sum(form)
    return ApproximateAnswer(total.estimate / n, total.lower_bound / n,
                             total.upper_bound / n)


def refine_sum(form: CompressedForm) -> ApproximateAnswer:
    """The exact SUM(column), obtained by adding the decoded offsets.

    This is the "gradual refinement" step: everything already computed for
    :func:`approximate_sum` is reused, and only the residual column is
    decoded (STEPFUNCTION forms have no residuals to decode, so their
    refined answer equals the model sum).
    """
    _check_form(form)
    if form.original_length == 0:
        return ApproximateAnswer(0.0, 0.0, 0.0)
    total = _model_sum(form)
    if form.scheme != "STEPFUNCTION":
        offsets = _residuals.decode_residuals(form.constituent("offsets"), form.parameters)
        if form.scheme == "PFOR":
            positions = form.constituent("patch_positions").values
            if positions.size:
                offsets = offsets.copy()
                offsets[positions] = 0  # patches were already accounted for exactly
        total += int(offsets.sum())
    return ApproximateAnswer(float(total), float(total), float(total))

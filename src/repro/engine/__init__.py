"""Query-execution substrate: predicates, pushdown, physical operators, queries.

The engine exists to demonstrate — and measure — the paper's "why it
matters": predicates evaluated on compressed forms (run domain, segment
bounds, dictionary codes), chunk skipping from statistics, and
late-materialisation execution where decompression happens only for the rows
and columns a query actually needs.
"""

from .predicates import And, Between, Equals, IsIn, Or, Predicate, RangeBounds
from .pushdown import (
    PushdownStats,
    count_in_range_on_runs,
    range_mask_on_dict,
    range_mask_on_for,
    range_mask_on_form,
    range_mask_on_ns,
    range_mask_on_runs,
    sum_in_range_on_runs,
)
from . import kernels, translate
from .approximate import (
    ApproximateAnswer,
    approximate_mean,
    approximate_sum,
    refine_sum,
)
from .operators import (
    ScanStats,
    SelectionVector,
    aggregate,
    aggregate_stored,
    filter_table,
    gather_stored,
    group_by_aggregate,
    group_codes_stored,
    grouped_reduce,
    hash_join,
    project,
)
from .parallel import (
    ChunkCache,
    ParallelExecutionError,
    packed_source_path,
    shutdown_pools,
)
from .query import JoinResult, Query, QueryResult, join_tables
from .resilience import DEFAULT_FAULT_POLICY, FaultPlan, FaultPolicy
from .scan import (
    BACKENDS,
    ScanResult,
    describe_backend,
    gather_rows,
    resolve_parallelism,
    scan_table,
)

__all__ = [
    "Predicate",
    "Between",
    "Equals",
    "IsIn",
    "And",
    "Or",
    "RangeBounds",
    "PushdownStats",
    "range_mask_on_form",
    "range_mask_on_runs",
    "range_mask_on_for",
    "range_mask_on_dict",
    "range_mask_on_ns",
    "count_in_range_on_runs",
    "sum_in_range_on_runs",
    "kernels",
    "translate",
    "ScanStats",
    "SelectionVector",
    "filter_table",
    "project",
    "aggregate",
    "aggregate_stored",
    "gather_stored",
    "group_by_aggregate",
    "group_codes_stored",
    "grouped_reduce",
    "hash_join",
    "Query",
    "QueryResult",
    "JoinResult",
    "join_tables",
    "ScanResult",
    "scan_table",
    "gather_rows",
    "BACKENDS",
    "describe_backend",
    "resolve_parallelism",
    "ChunkCache",
    "ParallelExecutionError",
    "packed_source_path",
    "shutdown_pools",
    "FaultPlan",
    "FaultPolicy",
    "DEFAULT_FAULT_POLICY",
    "ApproximateAnswer",
    "approximate_sum",
    "approximate_mean",
    "refine_sum",
]

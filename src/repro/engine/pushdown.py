"""Predicate evaluation directly on compressed forms.

This module is the executable version of the paper's "why it matters":
because compressed forms are just columns, and because model+residual
schemes expose a coarse view of the data, many predicates can be evaluated
(wholly or partly) *without decompressing*:

* **RLE / RPE** — evaluate the predicate once per *run* over the (short)
  values column, then expand the per-run verdicts to rows; an aggregation
  over qualifying rows can even stay in the run domain (experiment E10).
* **FOR / PFOR / STEPFUNCTION** — the per-segment references bound every
  value in the segment, so a range predicate can accept or reject whole
  segments and only the remaining "straddling" segments need their offsets
  decoded (experiment E9).
* **DICT** — an order-preserving dictionary turns a value range into a code
  range, so the predicate runs on the narrow codes.

Every function returns both the result and a :class:`PushdownStats` so the
benchmarks can report how much work was avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.ops import bitpack as _bitpack
from ..errors import QueryError
from ..model.fitting import segment_index
from ..schemes import _residuals
from ..schemes.base import CompressedForm
from ..schemes.dict_ import DictionaryEncoding
from .predicates import RangeBounds


@dataclass
class PushdownStats:
    """Accounting of how much data a pushdown evaluation actually touched."""

    rows_total: int = 0
    rows_decoded: int = 0
    segments_total: int = 0
    segments_skipped: int = 0
    segments_accepted: int = 0
    runs_total: int = 0

    @property
    def decode_fraction(self) -> float:
        """Fraction of rows whose fine-grained (offset/value) data was decoded."""
        return self.rows_decoded / self.rows_total if self.rows_total else 0.0


# --------------------------------------------------------------------------- #
# RLE / RPE: run-domain evaluation
# --------------------------------------------------------------------------- #

def _require_run_form(form: CompressedForm) -> None:
    if form.scheme not in ("RLE", "RPE"):
        raise QueryError(
            f"run-domain pushdown expects an RLE or RPE form, got {form.scheme!r}"
        )


def _run_lengths_of_form(form: CompressedForm) -> np.ndarray:
    """Per-run lengths of an RLE/RPE form as int64, memoised on the form."""
    def compute() -> np.ndarray:
        if form.scheme == "RLE":
            return form.constituent("lengths").values.astype(np.int64)
        if form.scheme == "RPE":
            positions = form.constituent("run_positions").values.astype(np.int64)
            lengths = np.empty(len(positions), dtype=np.int64)
            if len(positions):
                lengths[0] = positions[0]
                np.subtract(positions[1:], positions[:-1], out=lengths[1:])
            return lengths
        raise QueryError(
            f"run-domain pushdown expects an RLE or RPE form, got {form.scheme!r}")

    _require_run_form(form)
    return form.cached(("run_lengths",), compute)


def run_positions_of(form: CompressedForm) -> np.ndarray:
    """Run *end* positions of an RLE/RPE form, as int64 (memoised on the form).

    RPE stores them directly.  For RLE they are obtained by executing the
    compiled truncation of Algorithm 1 at its first binding
    (``run_positions``) — partial evaluation through the plan executor, the
    executable form of "RLE converts to RPE by one prefix sum".  The result
    is cached on the form, so a multi-conjunct scan (or a filter followed by
    a compressed-domain gather) pays for the prefix sum at most once.
    """
    _require_run_form(form)

    def compute() -> np.ndarray:
        if form.scheme == "RPE":
            return form.constituent("run_positions").values.astype(np.int64)
        from ..columnar.compile import compiled_partial_plan
        from ..schemes.rle import build_rle_decompression_plan

        compiled = compiled_partial_plan(build_rle_decompression_plan(),
                                         "run_positions")
        positions = compiled.run({"lengths": form.constituent("lengths"),
                                  "values": form.constituent("values")})
        return positions.values.astype(np.int64)

    return form.cached(("run_end_positions",), compute)


def point_lookup_on_runs(form: CompressedForm, row: int
                         ) -> Tuple[int, PushdownStats]:
    """``column[row]`` on an RLE/RPE form without decompressing.

    One binary search over the run end positions decides which run covers
    *row*; only that run's value is read.  For RLE the positions come from
    the compiled partial plan (see :func:`run_positions_of`).
    """
    _require_run_form(form)
    if not 0 <= row < form.original_length:
        raise QueryError(
            f"point lookup at row {row} is out of range [0, {form.original_length})"
        )
    positions = run_positions_of(form)
    run = int(np.searchsorted(positions, row, side="right"))
    value = int(form.constituent("values")[run])
    stats = PushdownStats(rows_total=form.original_length, rows_decoded=1,
                          runs_total=len(positions))
    return value, stats


def range_mask_on_runs(form: CompressedForm, bounds: RangeBounds
                       ) -> Tuple[Column, PushdownStats]:
    """Evaluate a range predicate on an RLE/RPE form, returning a row mask.

    The predicate is evaluated once per run (on the short ``values`` column)
    and the verdicts are expanded to rows — the per-element work is a single
    ``repeat`` regardless of how selective the predicate is.
    """
    _require_run_form(form)
    values = form.constituent("values").values
    lengths = _run_lengths_of_form(form)
    run_mask = (values >= bounds.low) & (values <= bounds.high)
    row_mask = np.repeat(run_mask, lengths)
    stats = PushdownStats(
        rows_total=form.original_length,
        rows_decoded=0,
        runs_total=len(values),
    )
    return Column(row_mask), stats


def count_in_range_on_runs(form: CompressedForm, bounds: RangeBounds
                           ) -> Tuple[int, PushdownStats]:
    """COUNT(*) WHERE lo <= col <= hi, computed entirely in the run domain."""
    _require_run_form(form)
    values = form.constituent("values").values
    lengths = _run_lengths_of_form(form)
    run_mask = (values >= bounds.low) & (values <= bounds.high)
    stats = PushdownStats(rows_total=form.original_length, rows_decoded=0,
                          runs_total=len(values))
    return int(lengths[run_mask].sum(dtype=np.int64)), stats


def sum_in_range_on_runs(form: CompressedForm, bounds: RangeBounds
                         ) -> Tuple[int, PushdownStats]:
    """SUM(col) WHERE lo <= col <= hi, computed entirely in the run domain.

    Each qualifying run contributes ``value * length`` — the aggregation never
    leaves the run domain, which is the paper's "no clear distinction between
    decompression and query execution" taken to its conclusion.
    """
    _require_run_form(form)
    values = form.constituent("values").values.astype(np.int64)
    lengths = _run_lengths_of_form(form)
    run_mask = (values >= bounds.low) & (values <= bounds.high)
    stats = PushdownStats(rows_total=form.original_length, rows_decoded=0,
                          runs_total=len(values))
    return int((values[run_mask] * lengths[run_mask]).sum(dtype=np.int64)), stats


# --------------------------------------------------------------------------- #
# FOR / PFOR / STEPFUNCTION: segment-domain evaluation
# --------------------------------------------------------------------------- #

def range_mask_on_for(form: CompressedForm, bounds: RangeBounds
                      ) -> Tuple[Column, PushdownStats]:
    """Evaluate a range predicate on a FOR-family form with segment skipping.

    Segments whose value bounds fall entirely outside the predicate range are
    rejected wholesale; segments entirely inside are accepted wholesale; only
    the remaining segments have their offsets decoded and compared.  For
    PFOR, patches are re-applied to the decoded values before comparison so
    the mask is exact.
    """
    if form.scheme not in ("FOR", "PFOR", "STEPFUNCTION"):
        raise QueryError(f"segment pushdown expects FOR/PFOR/STEPFUNCTION, got {form.scheme!r}")
    from .translate import classify_segments

    n = form.original_length
    segment_length = int(form.parameter("segment_length"))
    refs = form.constituent("refs").values.astype(np.int64)
    accept, reject, inspect = classify_segments(form, bounds)

    seg_of_row = segment_index(n, segment_length)
    mask = accept[seg_of_row].copy()

    stats = PushdownStats(
        rows_total=n,
        segments_total=len(refs),
        segments_skipped=int(reject.sum(dtype=np.int64)),
        segments_accepted=int(accept.sum(dtype=np.int64)),
    )

    if inspect.any() and form.scheme != "STEPFUNCTION":
        rows_to_inspect = inspect[seg_of_row]
        stats.rows_decoded = int(rows_to_inspect.sum(dtype=np.int64))
        if stats.rows_decoded * 4 <= n:
            # Sparse straddle: decode only the inspected rows' offsets (a
            # positional gather into the packed stream) instead of the whole
            # constituent.
            inspect_positions = np.flatnonzero(rows_to_inspect)
            offsets_at = _residuals.decode_residuals_at(
                form.constituent("offsets"), form.parameters, inspect_positions)
            reconstructed = refs[seg_of_row[inspect_positions]] + offsets_at
            mask[inspect_positions] = ((reconstructed >= bounds.low)
                                       & (reconstructed <= bounds.high))
        else:
            offsets = _residuals.decode_residuals(form.constituent("offsets"),
                                                  form.parameters)
            reconstructed = refs[seg_of_row[rows_to_inspect]] + offsets[rows_to_inspect]
            mask[rows_to_inspect] = ((reconstructed >= bounds.low)
                                     & (reconstructed <= bounds.high))
    elif inspect.any():
        # A pure model has no offsets to consult: inspecting means the model
        # alone cannot decide those rows exactly.  Be conservative (reject) —
        # callers doing approximate processing can use the accept/skip counts.
        stats.rows_decoded = 0

    if form.scheme == "PFOR":
        # Patched rows carry their true value outside the offsets, so the
        # segment-bound reasoning above does not apply to them (a patch may
        # qualify inside a rejected segment or disqualify inside an accepted
        # one).  There are few patches by construction; decide them exactly.
        positions = form.constituent("patch_positions").values
        if positions.size:
            patch_values = form.constituent("patch_values").values.astype(np.int64)
            mask[positions] = ((patch_values >= bounds.low)
                               & (patch_values <= bounds.high))
    return Column(mask), stats


# --------------------------------------------------------------------------- #
# DICT: code-domain evaluation
# --------------------------------------------------------------------------- #

def range_mask_on_dict(form: CompressedForm, bounds: RangeBounds
                       ) -> Tuple[Column, PushdownStats]:
    """Evaluate a range predicate on a DICT form by rewriting it onto codes.

    The value range translates to a code range through the sorted dictionary
    (two binary searches); packed code columns are then compared
    word-parallel on the packed uint64 words — BitWeaving-style masking via
    :func:`repro.columnar.ops.bitpack.packed_compare_range` — without
    unpacking a single code.  ``rows_decoded`` reports how many codes had to
    be individually decoded: zero on the word-parallel and trivial paths.
    """
    if form.scheme != "DICT":
        raise QueryError(f"dictionary pushdown expects a DICT form, got {form.scheme!r}")
    n = form.original_length
    lo_code, hi_code = DictionaryEncoding.rewrite_range_to_codes(
        form, bounds.low, bounds.high
    )
    stats = PushdownStats(rows_total=n, rows_decoded=0)
    dictionary_size = int(form.parameter("dictionary_size", 0))
    if lo_code >= hi_code:
        return Column(np.zeros(n, dtype=bool)), stats
    if lo_code == 0 and hi_code >= dictionary_size:
        return Column(np.ones(n, dtype=bool)), stats
    if form.parameter("codes_layout") == "packed":
        width = int(form.parameter("code_width"))
        count = int(form.parameter("count"))
        hi_inclusive = min(hi_code - 1, (1 << width) - 1)
        mask = _bitpack.packed_compare_range(
            form.constituent("codes"), width=width, count=count,
            lo=lo_code, hi=hi_inclusive,
        )
    else:
        codes = form.constituent("codes").values
        mask = (codes >= lo_code) & (codes < hi_code)
    return Column(mask), stats


# --------------------------------------------------------------------------- #
# NS: stored-domain (word-parallel) evaluation
# --------------------------------------------------------------------------- #

def range_mask_on_ns(form: CompressedForm, bounds: RangeBounds
                     ) -> Optional[Tuple[Column, PushdownStats]]:
    """Evaluate a range predicate on an NS form in its stored unsigned domain.

    The ``none`` and ``bias`` transforms are order-preserving shifts, so the
    bounds translate into the stored domain
    (:func:`repro.engine.translate.translate_range_to_stored`) and the
    comparison runs word-parallel against the packed words without
    unpacking.  Zig-zag-transformed forms are not order-preserving; for them
    this returns ``None``.
    """
    from . import translate

    if form.scheme != "NS":
        raise QueryError(f"NS pushdown expects an NS form, got {form.scheme!r}")
    translated = translate.translate_range_to_stored(form, bounds)
    if translated is None:
        return None
    n = form.original_length
    stats = PushdownStats(rows_total=n, rows_decoded=0)
    if translated == translate.EMPTY:
        return Column(np.zeros(n, dtype=bool)), stats
    lo, hi = translated
    if form.parameter("mode") == "packed":
        mask = _bitpack.packed_compare_range(
            form.constituent("packed"), width=int(form.parameter("width")),
            count=int(form.parameter("count")), lo=lo, hi=hi,
        )
    else:
        values = form.constituent("values").values
        mask = (values >= np.uint64(lo)) & (values <= np.uint64(hi))
    return Column(mask), stats


# --------------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------------- #

def range_mask_on_form(form: CompressedForm, bounds: RangeBounds
                       ) -> Optional[Tuple[Column, PushdownStats]]:
    """Evaluate a range predicate on *form* without full decompression, if supported.

    Returns ``None`` when no pushdown strategy applies to the form's scheme
    (the caller should then decompress and filter normally).  This is the
    single-layer dispatch; the capability-driven dispatch — which also peels
    cascades and consults each scheme's advertised kernels — lives in
    :func:`repro.engine.kernels.filter_range`.
    """
    if form.scheme in ("RLE", "RPE"):
        return range_mask_on_runs(form, bounds)
    if form.scheme in ("FOR", "PFOR"):
        return range_mask_on_for(form, bounds)
    if form.scheme == "DICT":
        return range_mask_on_dict(form, bounds)
    if form.scheme == "NS":
        return range_mask_on_ns(form, bounds)
    return None

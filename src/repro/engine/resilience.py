"""Deterministic fault injection and the fault policy for resilient scans.

The ROADMAP's robustness claim — *every query either returns results
bit-identical to a fault-free serial scan or raises a typed error naming
the fault* — is only testable if faults can be produced on demand,
deterministically, in CI.  This module provides both halves:

* :class:`FaultPlan` — a seeded, picklable description of faults to
  inject: bit flips and truncated/slow reads on the storage read path
  (installed into :mod:`repro.io.reader` via :func:`active`), and worker
  kills / hangs / exceptions / corrupted result payloads inside the
  process pool (consulted by :mod:`repro.engine.parallel` workers).
  Every decision is a pure function of ``(seed, fault kind, site key)``
  through CRC32 — the same plan injects the same faults on every run, in
  every process, so a chaos test that passes locally passes in CI.
* :class:`FaultPolicy` — what the engine does when a fault (injected or
  real) surfaces: how many times to retry a failed chunk range, how long
  a scan may run (``deadline_s``), whether corrupt chunks are fatal
  (``on_corruption="raise"``) or skipped with accounting
  (``"quarantine"``), and whether an unusable process pool is fatal
  (``on_fault="raise"``) or degrades process → thread → serial
  (``"degrade"``).

Worker-side faults fire only on a range's **first** attempt unless the
plan is ``sticky`` — so retries heal them, which is exactly the behaviour
the self-healing pool is supposed to demonstrate.  Read-path faults are
keyed on the segment (not the attempt): like real disk corruption they
persist across retries, and only the digest check / quarantine policy can
deal with them.

The ``REPRO_FAULT_PLAN`` environment variable (JSON object of
:class:`FaultPlan` fields) injects a plan into scans that did not pass one
explicitly — the hook CI's chaos job uses to run the ordinary test suite
under faults.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
import zlib
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import QueryError, StorageError

__all__ = [
    "DEFAULT_FAULT_POLICY",
    "ENV_VAR",
    "FaultPlan",
    "FaultPolicy",
    "InjectedFault",
    "active",
    "plan_from_env",
]

#: Environment variable holding a JSON :class:`FaultPlan` for scans that
#: were not handed one explicitly (the CI chaos job sets it).
ENV_VAR = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """An injected worker-side failure (exception flavour).

    Deliberately *not* a :class:`~repro.errors.ReproError`: it models an
    arbitrary crash inside a worker, and the pool must survive arbitrary
    crashes, not just well-typed ones.
    """


# --------------------------------------------------------------------------- #
# Policy: what the engine does about faults
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class FaultPolicy:
    """How a scan responds to faults (injected or real).

    Attributes
    ----------
    on_corruption:
        ``"raise"`` (default): a failed segment digest aborts the query
        with :class:`~repro.errors.CorruptionError`.  ``"quarantine"``:
        the chunk range containing the corrupt segment is skipped — it
        contributes no rows — and the skip is accounted in
        ``ScanStats.chunks_quarantined``.
    on_fault:
        ``"raise"`` (default): a chunk range that keeps failing after
        *retries* attempts (or a pool that cannot be kept alive) aborts
        the query.  ``"degrade"``: the scan falls back process → thread →
        serial, recording the reason chain in ``ScanResult.backend``.
    retries:
        How many times a failed chunk range is re-executed (on a fresh
        worker) before the failure is considered permanent.  Retrying is
        safe unconditionally: scans are read-only and range execution is
        idempotent.
    backoff_s:
        Base of the exponential backoff between retries of the same
        range: attempt *n* waits ``backoff_s * 2**(n-1)`` seconds.
    deadline_s:
        Wall-clock budget for one scan.  When exceeded, in-flight work is
        cancelled and the scan raises
        :class:`~repro.errors.ScanTimeoutError` (stragglers cannot stall
        a query forever).  ``None`` (default) means no deadline.
    """

    on_corruption: str = "raise"
    on_fault: str = "raise"
    retries: int = 2
    backoff_s: float = 0.01
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_corruption not in ("raise", "quarantine"):
            raise QueryError(
                f"FaultPolicy.on_corruption must be 'raise' or 'quarantine', "
                f"got {self.on_corruption!r}")
        if self.on_fault not in ("raise", "degrade"):
            raise QueryError(
                f"FaultPolicy.on_fault must be 'raise' or 'degrade', "
                f"got {self.on_fault!r}")
        if self.retries < 0:
            raise QueryError(f"FaultPolicy.retries must be >= 0, "
                             f"got {self.retries!r}")
        if self.backoff_s < 0:
            raise QueryError(f"FaultPolicy.backoff_s must be >= 0, "
                             f"got {self.backoff_s!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QueryError(f"FaultPolicy.deadline_s must be positive "
                             f"(or None), got {self.deadline_s!r}")

    def describe(self) -> str:
        """Compact one-line form for ``explain()`` reports."""
        parts = [f"on_corruption={self.on_corruption}",
                 f"on_fault={self.on_fault}", f"retries={self.retries}"]
        if self.deadline_s is not None:
            parts.append(f"deadline_s={self.deadline_s:g}")
        return ", ".join(parts)


#: The policy scans run under when none is configured: fail loudly, but
#: absorb transient worker faults with two retries.
DEFAULT_FAULT_POLICY = FaultPolicy()


# --------------------------------------------------------------------------- #
# Plan: which faults to inject, where
# --------------------------------------------------------------------------- #

def _uniform(seed: int, kind: str, key: Tuple) -> float:
    """A deterministic pseudo-uniform draw in ``[0, 1)`` for one fault site.

    CRC32 over the repr of ``(seed, kind, key)`` — stable across processes
    and Python versions (ints and strs repr canonically; no hash
    randomisation involved), which is what makes a :class:`FaultPlan`
    reproducible in every pool worker.
    """
    digest = zlib.crc32(repr((seed, kind, key)).encode("utf-8"))
    return (digest & 0xFFFFFFFF) / 2.0 ** 32


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of faults to inject.

    Probabilistic knobs (``*_p``) draw per site from the seeded stream;
    the ``*_ranges`` tuples name explicit chunk-range indices for surgical
    tests ("kill the worker executing range 3").  All fields default to
    *no fault*, so ``FaultPlan(seed=7, kill_ranges=(0,))`` injects exactly
    one fault kind.

    Read-path faults (``bitflip_p``, ``truncate_p``, ``slow_read_p``) fire
    in whichever process performs the segment read and are keyed on the
    segment, so — like real disk corruption — they persist across retries.
    Worker faults (``kill_ranges``/``worker_kill_p``, ``hang_ranges``,
    ``exception_ranges``/``worker_exception_p``,
    ``corrupt_result_ranges``/``corrupt_result_p``) fire only inside pool
    worker processes, and only on a range's first attempt unless *sticky*
    — a sticky plan models a persistent fault (used to exercise deadlines
    and the degradation chain).
    """

    seed: int = 0
    # Read-path faults (any process that materialises a segment).
    bitflip_p: float = 0.0
    truncate_p: float = 0.0
    slow_read_p: float = 0.0
    slow_read_s: float = 0.05
    # Worker faults (pool worker processes only).
    worker_kill_p: float = 0.0
    worker_exception_p: float = 0.0
    corrupt_result_p: float = 0.0
    kill_ranges: Tuple[int, ...] = ()
    hang_ranges: Tuple[int, ...] = ()
    hang_s: float = 30.0
    exception_ranges: Tuple[int, ...] = ()
    corrupt_result_ranges: Tuple[int, ...] = ()
    sticky: bool = False

    def __post_init__(self) -> None:
        for name in ("bitflip_p", "truncate_p", "slow_read_p",
                     "worker_kill_p", "worker_exception_p",
                     "corrupt_result_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise QueryError(f"FaultPlan.{name} must be in [0, 1], "
                                 f"got {value!r}")
        # JSON (the env hook) delivers lists; normalise to hashable tuples.
        for name in ("kill_ranges", "hang_ranges", "exception_ranges",
                     "corrupt_result_ranges"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(int(v) for v in value))

    # -- introspection ------------------------------------------------------

    @property
    def has_read_faults(self) -> bool:
        return bool(self.bitflip_p or self.truncate_p or self.slow_read_p)

    @property
    def has_worker_faults(self) -> bool:
        return bool(self.worker_kill_p or self.worker_exception_p
                    or self.corrupt_result_p or self.kill_ranges
                    or self.hang_ranges or self.exception_ranges
                    or self.corrupt_result_ranges)

    def _roll(self, kind: str, *key: Any) -> float:
        return _uniform(self.seed, kind, key)

    # -- read path ----------------------------------------------------------

    def read_fault(self, path: Any, descriptor: Dict[str, Any], name: str,
                   raw: Any) -> Optional[bytes]:
        """The :data:`repro.io.reader._FAULT_HOOK` implementation.

        Called with the segment's mapped bytes before digest verification;
        may sleep (slow read), raise (truncated read), or return corrupted
        replacement bytes (bit flip — caught by the digest check on v3
        files, silently wrong on digest-free v2 files, which is the point
        of the digest).
        """
        offset = int(descriptor.get("offset", 0))
        site = (name, offset)
        if self.slow_read_p and self._roll("slow", *site) < self.slow_read_p:
            time.sleep(self.slow_read_s)
        if self.truncate_p and self._roll("truncate", *site) < self.truncate_p:
            raise StorageError(
                f"{path}: injected truncated read of segment {name!r} "
                f"(expected {int(descriptor.get('nbytes', 0))} bytes at "
                f"offset {offset})")
        if self.bitflip_p and len(raw) \
                and self._roll("bitflip", *site) < self.bitflip_p:
            data = bytearray(bytes(raw))
            position = int(self._roll("bitflip-pos", *site) * len(data))
            data[position % len(data)] ^= 1 << int(
                self._roll("bitflip-bit", *site) * 8)
            return bytes(data)
        return None

    # -- worker side --------------------------------------------------------

    def worker_action(self, index: int, attempt: int) -> Optional[str]:
        """The fault (if any) a pool worker injects before executing range
        *index* on the given *attempt*: ``"kill"``, ``"hang"``,
        ``"exception"``, ``"corrupt-result"``, or ``None``."""
        if attempt > 0 and not self.sticky:
            return None
        if index in self.kill_ranges or (
                self.worker_kill_p
                and self._roll("kill", index) < self.worker_kill_p):
            return "kill"
        if index in self.hang_ranges:
            return "hang"
        if index in self.exception_ranges or (
                self.worker_exception_p
                and self._roll("exception", index) < self.worker_exception_p):
            return "exception"
        if index in self.corrupt_result_ranges or (
                self.corrupt_result_p
                and self._roll("corrupt", index) < self.corrupt_result_p):
            return "corrupt-result"
        return None

    def perform(self, action: str, index: int) -> None:
        """Execute a worker fault *action* in-process (``"corrupt-result"``
        is handled by the caller, which owns the payload)."""
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(self.hang_s)
        elif action == "exception":
            raise InjectedFault(
                f"injected worker exception on chunk range {index}")

    # -- (de)serialisation --------------------------------------------------

    def to_spec(self) -> Dict[str, Any]:
        """A JSON-safe dict of the non-default fields (round-trips through
        :meth:`from_spec` / the ``REPRO_FAULT_PLAN`` env hook)."""
        defaults = FaultPlan()
        spec = {}
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if value != getattr(defaults, field_.name):
                spec[field_.name] = list(value) if isinstance(value, tuple) \
                    else value
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        known = {field_.name for field_ in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise QueryError(
                f"unknown FaultPlan field(s) {unknown!r}; "
                f"known: {sorted(known)!r}")
        return cls(**spec)

    def without_worker_faults(self) -> "FaultPlan":
        """This plan with only its read-path faults — what survives a
        degradation out of the process backend (worker faults are
        meaningless without workers)."""
        cleared = {name: () for name in
                   ("kill_ranges", "hang_ranges", "exception_ranges",
                    "corrupt_result_ranges")}
        return replace(self, worker_kill_p=0.0, worker_exception_p=0.0,
                       corrupt_result_p=0.0, **cleared)


def plan_from_env() -> Optional[FaultPlan]:
    """The :class:`FaultPlan` described by ``REPRO_FAULT_PLAN``, or ``None``.

    The variable holds a JSON object of plan fields, e.g.
    ``{"seed": 7, "worker_kill_p": 0.2}``.  Malformed JSON or unknown
    fields raise :class:`~repro.errors.QueryError` — a chaos job with a
    typo must fail loudly, not silently run fault-free.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw or not raw.strip():
        return None
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as error:
        raise QueryError(f"{ENV_VAR} is not valid JSON: {error}") from None
    if not isinstance(spec, dict):
        raise QueryError(f"{ENV_VAR} must be a JSON object of FaultPlan "
                         f"fields, got {type(spec).__name__}")
    return FaultPlan.from_spec(spec)


@contextlib.contextmanager
def active(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install *plan*'s read-path faults into the packed-format reader for
    the duration of the block (no-op for plans without read faults).

    The hook is process-global — fault injection is a test/chaos harness,
    not a per-query production feature — but the previous hook is restored
    on exit, so nested faulted scans compose.
    """
    if plan is None or not plan.has_read_faults:
        yield
        return
    from ..io import reader

    previous = reader._FAULT_HOOK
    reader._FAULT_HOOK = plan.read_fault
    try:
        yield
    finally:
        reader._FAULT_HOOK = previous

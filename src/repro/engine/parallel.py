"""Multiprocess scan execution over the packed v2 format.

The thread backend in :mod:`repro.engine.scan` is GIL-bound for the short
NumPy kernels a compressed scan runs per chunk, so adding cores made queries
*slower* (``BENCH_scan_pipeline.json`` recorded ``parallel_speedup: 0.79``).
This module adds the backend the ROADMAP calls for: a pool of long-lived
worker **processes** that each ``mmap`` the same packed table file.

Design
------

* **Zero data over the pipe.**  Workers open the packed file by path
  (:func:`repro.io.reader.open_packed_table`), so the OS page cache shares
  the bytes; only chunk-range descriptors and one pickled
  :class:`ScanSpec` per query cross a queue.  Tables that are not backed by
  a single packed file (in-memory ``Table.from_pydict`` tables) cannot be
  shared this way — the caller falls back to the serial path and says so in
  ``ScanResult.backend``.
* **Work stealing.**  All workers pull ``(query_id, range_index, lo, hi)``
  tasks from one shared queue, so a straggler chunk never idles the rest of
  the pool; the coordinator reassembles results by ``range_index`` in
  deterministic chunk order, which keeps results (and merged
  :class:`~repro.engine.operators.ScanStats`, see
  :meth:`~repro.engine.operators.ScanStats.comparable`) bit-identical to a
  serial scan.
* **Caches warm once per worker, not once per query.**  Each worker process
  keeps its opened :class:`~repro.io.reader.PackedTableFile` (keyed by path
  and invalidated on a size/mtime fingerprint change), its compiled-plan
  caches (:mod:`repro.columnar.compile` is process-global), and one
  byte-budgeted hot-chunk decompression LRU (:class:`ChunkCache`, enabled by
  ``cache_bytes > 0``) across queries.
* **Partial aggregates.**  For partial-mergeable aggregate plans the
  workers ship :class:`~repro.engine.operators.ScalarAggState` /
  :class:`~repro.engine.operators.GroupedAggState` per range instead of
  positions, and the coordinator folds them with
  :func:`~repro.engine.operators.merge_states`.
* **Failure is survivable.**  The coordinator self-heals under a
  :class:`~repro.engine.resilience.FaultPolicy`: a worker *dying* mid-scan
  is detected by a liveness check on the result-queue poll, the dead
  process is respawned in place, and every unfinished chunk range is
  re-enqueued — safe unconditionally, because scans are read-only and
  range execution is idempotent (first result per range wins, duplicates
  are dropped).  A worker-side exception is retried on a fresh attempt
  with exponential backoff, up to ``policy.retries`` times, before it
  surfaces as :class:`ParallelExecutionError`; a failed segment digest is
  *not* retried (corruption is persistent) — it either re-raises as the
  typed :class:`~repro.errors.CorruptionError` or, under
  ``on_corruption="quarantine"``, the range contributes no rows and is
  accounted in ``ScanStats.chunks_quarantined``.  ``policy.deadline_s``
  bounds the whole query: on expiry in-flight work is cancelled (the pool
  is abandoned, which kills stragglers) and
  :class:`~repro.errors.ScanTimeoutError` is raised.  An unpicklable plan
  raises :class:`PlanNotPicklableError`, which the scan scheduler turns
  into a serial fallback with a note.  :class:`ScanSpec.fault_plan`
  carries a deterministic :class:`~repro.engine.resilience.FaultPlan`
  into the workers — the chaos harness that proves all of the above.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import pickle
import queue
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.forksafe import check_fork_safety
from ..errors import CorruptionError, QueryError, ScanTimeoutError
from ..storage.table import Table
from .operators import (
    GroupedAggState,
    ScalarAggState,
    ScanStats,
    gather_stored,
    group_codes_stored,
    grouped_reduce,
    aggregate_stored_partial,
    merge_states,
)
from .resilience import DEFAULT_FAULT_POLICY, FaultPlan, FaultPolicy

__all__ = [
    "ChunkCache",
    "ParallelExecutionError",
    "PlanNotPicklableError",
    "PoolReport",
    "ProcessBackendUnavailable",
    "ScanSpec",
    "get_pool",
    "packed_source_path",
    "run_process_aggregate",
    "run_process_scan",
    "shutdown_pools",
]


class ProcessBackendUnavailable(Exception):
    """The process backend cannot run this scan; fall back to serial.

    Internal control flow: :func:`repro.engine.scan.scan_table` catches this
    and records the reason in ``ScanResult.backend`` — it never reaches the
    user as an error.
    """


class PlanNotPicklableError(ProcessBackendUnavailable):
    """The predicate/plan spec cannot cross a process boundary."""


class ParallelExecutionError(QueryError):
    """A worker process failed (or died) while executing a scan."""


# --------------------------------------------------------------------------- #
# Packed-source detection
# --------------------------------------------------------------------------- #

def packed_source_path(table: Table) -> Optional[str]:
    """The packed file every chunk of *table* is backed by, or ``None``.

    The process backend requires all chunks' constituents to be mmap-lazy
    (:class:`~repro.io.reader.LazyConstituents`) over one shared
    :class:`~repro.io.reader.SegmentSource` — exactly what
    :meth:`PackedTableFile.table` builds — so workers can reopen the same
    bytes by path instead of pickling column data.
    """
    from ..io.reader import LazyConstituents

    source = None
    for name in table.column_names:
        for chunk in table.column(name).chunks:
            constituents = chunk.form.columns
            if not isinstance(constituents, LazyConstituents):
                return None
            if source is None:
                source = constituents._source
            elif constituents._source is not source:
                return None
    return None if source is None else str(source.path)


def _fingerprint(path: str) -> Tuple[int, int, int]:
    """Identity of the packed file's current bytes, keying the per-worker
    table cache.

    Size and mtime alone miss an in-place rewrite that preserves both
    (``st_mtime_ns`` granularity is filesystem-dependent, and a rewrite of
    the same table reproduces the same size) — a worker would then serve
    results from a stale mmap.  The footer CRC32 closes that hole: a v3
    footer embeds a fresh ``write_uuid`` on every write, so its digest
    cannot collide across rewrites.  Only the coordinator pays the footer
    read; workers just compare the tuple shipped with the spec.
    """
    from ..io.reader import footer_fingerprint

    stat = os.stat(path)
    return (stat.st_size, stat.st_mtime_ns, footer_fingerprint(path))


# --------------------------------------------------------------------------- #
# The serialized query spec
# --------------------------------------------------------------------------- #

@dataclass
class ScanSpec:
    """Everything a worker needs to evaluate one query's chunk ranges.

    This (pickled once per query, broadcast to every worker) plus the table
    path is the *entire* coordinator→worker payload — no column data, no
    chunk bytes.  *aggregates*, when set, is the compressed-aggregate spec
    ``{"key": name | None, "aggregates": [(output, op, column | None)]}``
    from :func:`repro.api.lower.compressed_aggregate_plan`; workers then
    return partial aggregate states instead of positions.
    """

    predicates: Tuple[Any, ...]
    row_filters: Tuple[Any, ...] = ()
    derive: Tuple[Tuple[str, Any], ...] = ()
    materialize: Tuple[str, ...] = ()
    use_pushdown: bool = True
    use_zone_maps: bool = True
    use_compressed_exec: bool = True
    cache_bytes: int = 0
    aggregates: Optional[Dict[str, Any]] = None
    #: Deterministic fault injection (chaos testing): read-path faults are
    #: installed around range execution, worker faults consulted per
    #: ``(range index, attempt)`` — see :mod:`repro.engine.resilience`.
    fault_plan: Optional[FaultPlan] = None
    #: The worker-relevant half of the :class:`FaultPolicy`: whether a
    #: failed segment digest aborts the range (``"raise"``) or yields an
    #: empty quarantined result (``"quarantine"``).
    on_corruption: str = "raise"


# --------------------------------------------------------------------------- #
# Hot-chunk decompression cache (per worker)
# --------------------------------------------------------------------------- #

class ChunkCache:
    """A byte-budgeted LRU of decompressed chunk columns.

    One instance lives in each worker process and spans queries (that is the
    point: repeated queries over the same hot chunks skip re-decoding).
    Keys are ``(scope, column name, chunk row offset)`` where *scope* is the
    packed file path — see :class:`_ScopedCache`.  ``insert`` returns how
    many entries were evicted to make room, which the scan scheduler
    surfaces as ``ScanStats.hot_cache_evictions``.
    """

    def __init__(self, budget_bytes: int):
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        return self._bytes

    def lookup(self, key: Tuple) -> Optional[Any]:
        column = self._entries.get(key)
        if column is not None:
            self._entries.move_to_end(key)
        return column

    def insert(self, key: Tuple, column: Any) -> int:
        """Cache *column* under *key*; returns the number of evictions."""
        nbytes = int(column.values.nbytes)
        if nbytes > self.budget_bytes or key in self._entries:
            return 0
        self._entries[key] = column
        self._bytes += nbytes
        return self._evict_to_budget()

    def resize(self, budget_bytes: int) -> int:
        self.budget_bytes = int(budget_bytes)
        return self._evict_to_budget()

    def _evict_to_budget(self) -> int:
        evictions = 0
        while self._bytes > self.budget_bytes and self._entries:
            __, column = self._entries.popitem(last=False)
            self._bytes -= int(column.values.nbytes)
            evictions += 1
        return evictions


class _ScopedCache:
    """A :class:`ChunkCache` view whose keys are prefixed with one scope
    (the packed file path), so one worker-wide cache serves many tables
    without key collisions."""

    __slots__ = ("_cache", "_scope")

    def __init__(self, cache: ChunkCache, scope: str):
        self._cache = cache
        self._scope = scope

    def lookup(self, key: Tuple) -> Optional[Any]:
        return self._cache.lookup((self._scope,) + key)

    def insert(self, key: Tuple, column: Any) -> int:
        return self._cache.insert((self._scope,) + key, column)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

@dataclass
class _Prepared:
    """One query's per-worker execution state (built from a spec message)."""

    table: Table
    spec: ScanSpec
    starts: Dict[str, np.ndarray]
    cache: Optional[_ScopedCache]


#: Worker-process globals: opened packed tables (path -> (fingerprint,
#: PackedTableFile, Table)) and the worker-wide hot-chunk cache.  These are
#: what "caches warm once per worker" means — they outlive queries.
_WORKER_TABLES: Dict[str, Tuple[Tuple[int, int, int], Any, Table]] = {}
_WORKER_CACHE: Optional[ChunkCache] = None


def _prepare(path: str, fingerprint: Tuple[int, int, int], blob: bytes) -> _Prepared:
    global _WORKER_CACHE
    from ..io.reader import open_packed_table
    from .scan import _scan_starts

    spec: ScanSpec = pickle.loads(blob)
    cached = _WORKER_TABLES.get(path)
    if cached is None or cached[0] != fingerprint:
        packed = open_packed_table(path)
        cached = (fingerprint, packed, packed.table)
        _WORKER_TABLES[path] = cached
    table = cached[2]
    starts = _scan_starts(table, spec.predicates, spec.row_filters,
                          spec.materialize, spec.derive)
    cache: Optional[_ScopedCache] = None
    if spec.cache_bytes > 0:
        if _WORKER_CACHE is None:
            _WORKER_CACHE = ChunkCache(spec.cache_bytes)
        elif _WORKER_CACHE.budget_bytes != spec.cache_bytes:
            _WORKER_CACHE.resize(spec.cache_bytes)
        cache = _ScopedCache(_WORKER_CACHE, path)
    return _Prepared(table=table, spec=spec, starts=starts, cache=cache)


def _partial_states(table: Table, positions: np.ndarray,
                    agg_spec: Dict[str, Any], stats: ScanStats) -> Any:
    """Mergeable aggregate states for one range's selection.

    Mirrors :func:`repro.api.lower._exec_aggregate_compressed` branch for
    branch — including the share-one-gather path for several aggregates over
    one column — so the merged stats stay bit-identical to the serial
    compressed-aggregate execution.
    """
    from ..columnar.column import Column

    gathered_cache: Dict[str, Column] = {}

    def gathered(column: str) -> Column:
        values = gathered_cache.get(column)
        if values is None:
            raw, gather_stats = gather_stored(table.column(column), positions)
            stats.merge(gather_stats)
            values = gathered_cache[column] = Column(raw)
        return values

    rows = int(positions.size)
    if agg_spec["key"] is None:
        states: Dict[str, ScalarAggState] = {}
        column_uses = [column for __, op, column in agg_spec["aggregates"]
                       if op != "count"]
        for output_name, op, column in agg_spec["aggregates"]:
            if op == "count":
                states[output_name] = ScalarAggState(op="count", rows=rows)
            elif column_uses.count(column) > 1:
                values = gathered(column).values
                if values.size == 0:
                    states[output_name] = ScalarAggState(op=op, rows=rows)
                elif op == "sum":
                    accumulator = np.uint64 if np.issubdtype(
                        values.dtype, np.unsignedinteger) else np.int64
                    states[output_name] = ScalarAggState(
                        op=op, rows=rows,
                        partial=values.sum(dtype=accumulator))
                else:
                    partial = values.min() if op == "min" else values.max()
                    states[output_name] = ScalarAggState(op=op, rows=rows,
                                                         partial=partial)
            else:
                partial, agg_stats = aggregate_stored_partial(
                    table.column(column), positions, op)
                stats.merge(agg_stats)
                states[output_name] = ScalarAggState(op=op, rows=rows,
                                                     partial=partial)
        return states

    grouped = group_codes_stored(table.column(agg_spec["key"]), positions)
    if grouped is None:  # the plan checked capability; a chunk lied
        raise QueryError(
            f"column {agg_spec['key']!r} lost the group-codes capability "
            "mid-scan; cannot build partial grouped state")
    unique_keys, codes, group_stats = grouped
    stats.merge(group_stats)
    num_groups = int(unique_keys.size)
    aggregates: Dict[str, Tuple[str, np.ndarray]] = {}
    for output_name, op, column in agg_spec["aggregates"]:
        values = None if op == "count" else gathered(column)
        aggregates[output_name] = (
            op, grouped_reduce(codes, num_groups, values, op).values)
    return GroupedAggState(keys=unique_keys, rows=rows, aggregates=aggregates)


def _execute_range(prepared: _Prepared, lo: int, hi: int) -> Tuple:
    from ..columnar.compile import cache_info
    from .scan import _scan_range

    spec = prepared.spec
    before = cache_info()
    outcome = _scan_range(prepared.table, list(spec.predicates),
                          prepared.starts, lo, hi,
                          spec.use_pushdown, spec.use_zone_maps,
                          list(spec.materialize),
                          row_filters=list(spec.row_filters),
                          derive=list(spec.derive),
                          use_compressed_exec=spec.use_compressed_exec,
                          chunk_cache=prepared.cache)
    stats = outcome.stats
    state = None
    if spec.aggregates is not None:
        state = _partial_states(prepared.table, outcome.positions,
                                spec.aggregates, stats)
    # This worker's own compile-cache delta for the range: per-worker caches
    # warm once per worker, and the coordinator (whose caches never ran the
    # plan) sums these instead of measuring its own, always-zero, delta.
    after = cache_info()
    stats.plan_cache_hits = (after["scheme_hits"] - before["scheme_hits"]
                            + after["plan_hits"] - before["plan_hits"])
    stats.plan_cache_misses = after["plan_misses"] - before["plan_misses"]
    if spec.aggregates is not None:
        return (stats, state, int(outcome.positions.size))
    return (outcome.positions, stats, outcome.pieces)


def _quarantined_payload(prepared: _Prepared) -> Tuple:
    """The payload of a quarantined range: no rows, fully mergeable.

    Mirrors the shapes :func:`_execute_range` returns so the coordinator's
    in-order merge needs no special case — for aggregates the states are
    built through :func:`_partial_states` over an empty selection, so their
    dtypes and identities match every non-quarantined partial exactly.
    """
    from .scan import _quarantined_outcome

    spec = prepared.spec
    if spec.aggregates is not None:
        stats = ScanStats()
        stats.chunks_quarantined = 1
        stats.fault_events = 1
        state = _partial_states(prepared.table, np.empty(0, dtype=np.int64),
                                spec.aggregates, stats)
        return (stats, state, 0)
    outcome = _quarantined_outcome(prepared.table, spec.materialize,
                                   spec.derive)
    return (outcome.positions, outcome.stats, outcome.pieces)


def _worker_main(spec_queue, task_queue, result_queue) -> None:
    """The worker-process loop: pull tasks, execute, stream results back.

    Specs are broadcast on a per-worker queue *before* their tasks are
    enqueued, so a worker seeing an unknown ``query_id`` drains its spec
    queue until the matching spec arrives.  Any per-task failure is caught
    and shipped as a structured error record — the worker itself stays
    alive; it marks :class:`~repro.errors.CorruptionError` non-retryable
    (a digest mismatch is persistent, retrying cannot help).

    When the spec carries a :class:`~repro.engine.resilience.FaultPlan`,
    its worker fault (if any) for this ``(range index, attempt)`` fires
    first — a kill never reports back (that is the point), a hang sleeps
    and then executes normally (straggler), a corrupted result ships
    garbage the coordinator must detect by shape.
    """
    from . import resilience

    prepared_by_query: Dict[int, _Prepared] = {}
    while True:
        task = task_queue.get()
        if task is None:
            return
        query_id, index, lo, hi, attempt = task
        try:
            prepared = prepared_by_query.get(query_id)
            while prepared is None:
                qid, path, fingerprint, blob = spec_queue.get()
                prepared_by_query[qid] = _prepare(path, fingerprint, blob)
                prepared = prepared_by_query.get(query_id)
            # Queries run one at a time, in id order: older specs are dead.
            for stale in [qid for qid in prepared_by_query if qid < query_id]:
                del prepared_by_query[stale]
            spec = prepared.spec
            plan = spec.fault_plan
            if plan is not None:
                action = plan.worker_action(index, attempt)
                if action == "corrupt-result":
                    result_queue.put(("ok", query_id, index, attempt,
                                      b"<injected garbage payload>"))
                    continue
                if action is not None:
                    plan.perform(action, index)  # kill / hang / exception
            try:
                with resilience.active(plan):
                    payload = _execute_range(prepared, lo, hi)
            except CorruptionError:
                if spec.on_corruption != "quarantine":
                    raise
                payload = _quarantined_payload(prepared)
            result_queue.put(("ok", query_id, index, attempt, payload))
        except BaseException as error:
            result_queue.put(("error", query_id, index, attempt, {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": traceback.format_exc(),
                "retryable": not isinstance(error, CorruptionError),
            }))


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #

@dataclass
class PoolReport:
    """What the self-healing coordinator did to finish one query."""

    ranges_retried: int = 0
    workers_respawned: int = 0
    fault_events: int = 0

    def apply(self, stats: ScanStats) -> None:
        stats.ranges_retried += self.ranges_retried
        stats.workers_respawned += self.workers_respawned
        stats.fault_events += self.fault_events


def _payload_shape_ok(payload: Any, aggregates: bool) -> bool:
    """Structural validity of a worker result.

    A corrupted result payload (injected by a fault plan, or any real bug
    shipping garbage over the pipe) must become a retry, not a crash while
    merging.
    """
    if not isinstance(payload, tuple) or len(payload) != 3:
        return False
    if aggregates:
        stats, __, rows = payload
        return isinstance(stats, ScanStats) and isinstance(rows, int)
    positions, stats, pieces = payload
    return (isinstance(positions, np.ndarray)
            and isinstance(stats, ScanStats) and isinstance(pieces, dict))


def _mp_context():
    # fork shares the imported interpreter state (cheap startup and
    # pickling-by-reference for classes defined anywhere); fall back to
    # spawn where fork does not exist.
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ProcessPool:
    """A pool of long-lived scan workers plus the coordination queues.

    One pool per worker count, created lazily and kept for the life of the
    process (:func:`get_pool`), so repeated queries pay process startup
    once.  ``run`` holds a lock — the shared result queue serves one query
    at a time; concurrent callers queue up behind it.
    """

    def __init__(self, workers: int):
        context = _mp_context()
        self.workers = workers
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._spec_queues = [context.Queue() for __ in range(workers)]
        self._lock = threading.Lock()
        self._query_ids = itertools.count()
        self._closed = False
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(spec_queue, self._task_queue, self._result_queue),
                daemon=True, name=f"repro-scan-worker-{index}")
            for index, spec_queue in enumerate(self._spec_queues)
        ]
        for process in self._processes:
            process.start()

    def healthy(self) -> bool:
        return not self._closed and all(p.is_alive() for p in self._processes)

    def run(self, path: str, fingerprint: Tuple[int, int, int],
            spec_blob: bytes, ranges: Sequence[Tuple[int, int]],
            policy: Optional[FaultPolicy] = None,
            aggregates: bool = False) -> Tuple[List[Tuple], PoolReport]:
        """Execute one query's ranges, healing the pool as needed.

        Returns ``(payloads in range order, PoolReport)``.  Dead workers
        are respawned and every unfinished range re-enqueued (duplicates
        resolve first-result-wins); worker errors retry up to
        ``policy.retries`` times with exponential backoff; a range that
        keeps failing raises :class:`ParallelExecutionError` — except a
        non-retryable :class:`~repro.errors.CorruptionError`, which is
        re-raised typed, immediately, with the pool left healthy.
        ``policy.deadline_s`` bounds the whole call; on expiry the pool is
        abandoned (stragglers are killed) and
        :class:`~repro.errors.ScanTimeoutError` raised.
        """
        policy = policy if policy is not None else DEFAULT_FAULT_POLICY
        with self._lock:
            if self._closed:
                raise ParallelExecutionError("process pool is shut down")
            query_id = next(self._query_ids)
            deadline = (time.monotonic() + policy.deadline_s
                        if policy.deadline_s is not None else None)
            for spec_queue in self._spec_queues:
                spec_queue.put((query_id, path, fingerprint, spec_blob))
            for index, (lo, hi) in enumerate(ranges):
                self._task_queue.put((query_id, index, lo, hi, 0))
            payloads: List[Optional[Tuple]] = [None] * len(ranges)
            attempts = [0] * len(ranges)
            report = PoolReport()
            pending = len(ranges)

            def retry(index: int, cause: str) -> None:
                report.fault_events += 1
                if attempts[index] >= policy.retries:
                    self._abandon()
                    raise ParallelExecutionError(
                        f"chunk range {index} failed "
                        f"{attempts[index] + 1} time(s) "
                        f"(retries={policy.retries} exhausted); last cause:\n"
                        f"{cause}")
                attempts[index] += 1
                report.ranges_retried += 1
                backoff = policy.backoff_s * 2.0 ** (attempts[index] - 1)
                if backoff > 0:
                    time.sleep(min(backoff, 1.0))
                lo, hi = ranges[index]
                self._task_queue.put((query_id, index, lo, hi,
                                      attempts[index]))

            while pending:
                timeout = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._abandon()
                        raise ScanTimeoutError(
                            f"scan exceeded its {policy.deadline_s:g}s "
                            f"fault-policy deadline with {pending} of "
                            f"{len(ranges)} chunk range(s) unfinished; "
                            "in-flight work was cancelled and the process "
                            "pool shut down")
                    timeout = min(timeout, max(remaining, 0.01))
                try:
                    message = self._result_queue.get(timeout=timeout)
                except queue.Empty:
                    self._heal(query_id, path, fingerprint, spec_blob,
                               ranges, payloads, attempts, report, policy)
                    continue
                kind, qid, index, __attempt, payload = message
                if qid != query_id or payloads[index] is not None:
                    continue  # stale query, or a duplicate of a healed range
                if kind == "error":
                    if not payload.get("retryable", True):
                        _raise_typed(payload)
                    retry(index, payload.get("traceback", repr(payload)))
                    continue
                if not _payload_shape_ok(payload, aggregates):
                    retry(index, "worker returned a corrupt result payload "
                                 f"({type(payload).__name__})")
                    continue
                payloads[index] = payload
                pending -= 1
            return payloads, report  # type: ignore[return-value]

    def _heal(self, query_id: int, path: str,
              fingerprint: Tuple[int, int, int], spec_blob: bytes,
              ranges: Sequence[Tuple[int, int]],
              payloads: List[Optional[Tuple]], attempts: List[int],
              report: PoolReport, policy: FaultPolicy) -> None:
        """Respawn dead workers and re-enqueue every unfinished range.

        Called when the result queue goes quiet.  The coordinator cannot
        know which range a dead worker held, so all unfinished ranges are
        re-enqueued at a bumped attempt (idempotent re-execution;
        duplicate results are dropped first-result-wins; the bump keeps
        non-sticky injected faults from re-firing).  A range whose retry
        budget is exhausted by repeated deaths fails the query.
        """
        dead = [slot for slot, process in enumerate(self._processes)
                if not process.is_alive()]
        if not dead:
            return
        context = _mp_context()
        for slot in dead:
            process = self._processes[slot]
            process.join(timeout=1)
            process.close()  # release the Process object's pipe/fd now
            replacement = context.Process(
                target=_worker_main,
                args=(self._spec_queues[slot], self._task_queue,
                      self._result_queue),
                daemon=True, name=f"repro-scan-worker-{slot}")
            replacement.start()
            self._processes[slot] = replacement
            # The replacement never saw this query's spec broadcast.
            self._spec_queues[slot].put((query_id, path, fingerprint,
                                         spec_blob))
            report.workers_respawned += 1
            report.fault_events += 1
        for index, payload in enumerate(payloads):
            if payload is not None:
                continue
            if attempts[index] >= policy.retries:
                self._abandon()
                raise ParallelExecutionError(
                    f"chunk range {index} was lost to dying workers "
                    f"{attempts[index] + 1} time(s) "
                    f"(retries={policy.retries} exhausted); the process "
                    "pool has been shut down")
            attempts[index] += 1
            report.ranges_retried += 1
            lo, hi = ranges[index]
            self._task_queue.put((query_id, index, lo, hi, attempts[index]))

    def _abandon(self) -> None:
        """Tear down after an unrecoverable failure or deadline expiry: the
        queues may hold undelivered state (and a straggler may be mid-
        hang), so the whole pool is discarded — workers killed, joined and
        closed, queue feeder pipes released."""
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5)
        self._close_processes()
        self._release_queues()
        with _POOLS_LOCK:
            if _POOLS.get(self.workers) is self:
                del _POOLS[self.workers]

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for __ in self._processes:
            try:
                self._task_queue.put_nowait(None)
            except Exception:
                break
        for process in self._processes:
            process.join(timeout=2)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
        self._close_processes()
        self._release_queues()

    def _close_processes(self) -> None:
        """Release every worker's ``Process`` handle (sentinel pipe fd).

        Without this an abandoned pool leaks one pipe fd and one zombie
        entry per worker until garbage collection happens to run —
        ``close()`` reaps them deterministically.  A worker that survived
        ``terminate`` + ``join`` (wedged in uninterruptible I/O) cannot be
        closed; it stays a child until process exit, which the ``Exception``
        guard tolerates.
        """
        for process in self._processes:
            try:
                process.close()
            except Exception:
                pass

    def _release_queues(self) -> None:
        for q in [self._task_queue, self._result_queue, *self._spec_queues]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass


def _raise_typed(payload: Dict[str, Any]) -> None:
    """Re-raise a worker's non-retryable error with its original type.

    A :class:`~repro.errors.CorruptionError` crossing the pipe as a record
    must surface to the caller as a :class:`CorruptionError` (the typed
    contract: every fault either heals or raises an error naming it), not
    as a generic pool failure.  Unknown types fall back to
    :class:`ParallelExecutionError` with the full worker traceback.
    """
    from .. import errors as _errors

    cls = getattr(_errors, str(payload.get("type", "")), None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        raise cls(payload.get("message", "worker-side failure"))
    raise ParallelExecutionError(
        f"scan worker failed:\n{payload.get('traceback', repr(payload))}")


_POOLS: Dict[int, ProcessPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(workers: int) -> ProcessPool:
    """The shared pool for *workers*, creating (or replacing a dead) one."""
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None or not pool.healthy():
            pool = ProcessPool(workers)
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)


# --------------------------------------------------------------------------- #
# Entry points used by the scheduler and the lowering layer
# --------------------------------------------------------------------------- #

def _dispatch(table: Table, ranges: Sequence[Tuple[int, int]], workers: int,
              spec: ScanSpec, policy: Optional[FaultPolicy] = None
              ) -> Tuple[List[Tuple], PoolReport]:
    path = packed_source_path(table)
    if path is None:
        raise ProcessBackendUnavailable(
            "process backend requested; table is not backed by a single "
            "packed file")
    problem = check_fork_safety(spec, root="ScanSpec")
    if problem is not None:
        raise PlanNotPicklableError(
            f"plan cannot cross a process boundary ({problem})")
    spec_blob = pickle.dumps(spec)
    return get_pool(workers).run(path, _fingerprint(path), spec_blob, ranges,
                                 policy=policy,
                                 aggregates=spec.aggregates is not None)


def run_process_scan(table: Table, ranges: Sequence[Tuple[int, int]],
                     workers: int, spec: ScanSpec,
                     policy: Optional[FaultPolicy] = None
                     ) -> Tuple[List[Any], PoolReport]:
    """Run a filter/materialize scan on the process pool.

    Returns ``(outcomes, report)``: per-range outcomes in chunk order,
    shaped exactly like the serial scheduler's ``_RangeOutcome`` list so
    :func:`~repro.engine.scan.scan_table` merges them identically, plus
    the coordinator's healing :class:`PoolReport`.
    """
    from .scan import _RangeOutcome

    payloads, report = _dispatch(table, ranges, workers, spec, policy)
    outcomes = [_RangeOutcome(positions=positions, stats=stats, pieces=pieces)
                for positions, stats, pieces in payloads]
    return outcomes, report


def run_process_aggregate(table: Table, workers: int, spec: ScanSpec,
                          policy: Optional[FaultPolicy] = None
                          ) -> Tuple[Any, ScanStats, int]:
    """Run a partial-mergeable aggregate on the process pool.

    *spec.aggregates* must be set.  Returns ``(merged state, merged stats,
    qualifying row count)``; states merge associatively in chunk order via
    :func:`~repro.engine.operators.merge_states`, and the coordinator's
    healing work lands in the stats' resilience counters.
    """
    from .scan import _grid_ranges, resolve_parallelism

    ranges = _grid_ranges(table, spec.predicates, spec.row_filters)
    workers = resolve_parallelism(workers, len(ranges), table.row_count)
    payloads, report = _dispatch(table, ranges, workers, spec, policy)
    stats = ScanStats(
        predicates_total=len(spec.predicates) + len(spec.row_filters))
    for partial_stats, __, __ in payloads:
        stats.merge(partial_stats)
    report.apply(stats)
    state = merge_states([state for __, state, __ in payloads])
    rows = sum(rows for __, __, rows in payloads)
    return state, stats, rows

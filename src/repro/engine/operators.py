"""Physical operators over stored (compressed) tables.

The engine is vectorised and chunk-at-a-time: operators consume and produce
:class:`RowSelection` s (a chunk reference plus a position list), so filters
stay in the cheap position-list ("late materialisation") currency for as
long as possible and columns are only decompressed when their values are
actually needed — and, when the pushdown module knows how, predicates are
evaluated on the compressed form itself.

The operator set is intentionally the one the paper's decompression plans
are made of — selection, gather/materialisation, aggregation, hash join —
to keep the "decompression is query execution" point front and centre.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..columnar.column import Column, concat_columns
from ..errors import QueryError
from ..storage.chunk import ColumnChunk
from ..storage.table import Table
from .predicates import Between, Predicate, RangeBounds
from .pushdown import PushdownStats, range_mask_on_form


@dataclass
class ScanStats:
    """Accounting of what a scan touched (drives experiments E9/E10)."""

    chunks_total: int = 0
    chunks_skipped: int = 0
    chunks_fully_accepted: int = 0
    chunks_pushed_down: int = 0
    chunks_decompressed: int = 0
    rows_scanned: int = 0
    rows_selected: int = 0
    #: Compiled-plan cache traffic attributable to this scan: ``hits`` counts
    #: chunk decompressions served by an already-compiled plan (at either
    #: cache level), ``misses`` counts actual plan compilations.  A healthy
    #: multi-chunk scan compiles at most one plan per distinct scheme and
    #: hits the cache for every further chunk.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    pushdown: PushdownStats = field(default_factory=PushdownStats)

    def merge_pushdown(self, stats: PushdownStats) -> None:
        self.pushdown.rows_total += stats.rows_total
        self.pushdown.rows_decoded += stats.rows_decoded
        self.pushdown.segments_total += stats.segments_total
        self.pushdown.segments_skipped += stats.segments_skipped
        self.pushdown.segments_accepted += stats.segments_accepted
        self.pushdown.runs_total += stats.runs_total


@dataclass
class SelectionVector:
    """Qualifying global row positions (the engine's late-materialisation currency)."""

    positions: Column

    def __len__(self) -> int:
        return len(self.positions)

    @staticmethod
    def from_mask(mask: np.ndarray, row_offset: int) -> "SelectionVector":
        return SelectionVector(Column(np.flatnonzero(mask).astype(np.int64) + row_offset))

    @staticmethod
    def all_rows(row_count: int) -> "SelectionVector":
        return SelectionVector(Column(np.arange(row_count, dtype=np.int64)))

    @staticmethod
    def concatenate(vectors: Sequence["SelectionVector"]) -> "SelectionVector":
        if not vectors:
            return SelectionVector(Column(np.empty(0, dtype=np.int64)))
        return SelectionVector(concat_columns([v.positions for v in vectors]))


# --------------------------------------------------------------------------- #
# Selection (filter) over a stored table
# --------------------------------------------------------------------------- #

def filter_table(table: Table, predicate: Predicate,
                 use_pushdown: bool = True,
                 use_zone_maps: bool = True) -> Tuple[SelectionVector, ScanStats]:
    """Evaluate *predicate* over its column, returning qualifying row positions.

    Evaluation order per chunk: zone-map decision first (skip / accept the
    whole chunk), then compressed-form pushdown when available and enabled,
    then decompress-and-compare as the fallback.
    """
    from ..columnar.compile import cache_info

    stored = table.column(predicate.column_name)
    stats = ScanStats(chunks_total=stored.num_chunks)
    selections: List[SelectionVector] = []
    cache_before = cache_info()

    for chunk in stored.iter_chunks():
        stats.rows_scanned += chunk.row_count
        decision = predicate.chunk_decision(chunk.statistics) if use_zone_maps else None
        if decision is False:
            stats.chunks_skipped += 1
            continue
        if decision is True:
            stats.chunks_fully_accepted += 1
            positions = np.arange(chunk.row_offset,
                                  chunk.row_offset + chunk.row_count, dtype=np.int64)
            selections.append(SelectionVector(Column(positions)))
            stats.rows_selected += chunk.row_count
            continue

        mask = None
        if use_pushdown and isinstance(predicate, Between):
            bounds = RangeBounds(predicate.bounds.low, predicate.bounds.high)
            pushed = range_mask_on_form(chunk.form, bounds)
            if pushed is not None:
                mask_column, push_stats = pushed
                mask = mask_column.values
                stats.chunks_pushed_down += 1
                stats.merge_pushdown(push_stats)

        if mask is None:
            stats.chunks_decompressed += 1
            values = chunk.decompress()
            mask = predicate.evaluate(values).values

        selection = SelectionVector.from_mask(mask, chunk.row_offset)
        stats.rows_selected += len(selection)
        selections.append(selection)

    cache_after = cache_info()
    stats.plan_cache_hits = (cache_after["scheme_hits"] - cache_before["scheme_hits"]
                             + cache_after["plan_hits"] - cache_before["plan_hits"])
    stats.plan_cache_misses = cache_after["plan_misses"] - cache_before["plan_misses"]
    return SelectionVector.concatenate(selections), stats


# --------------------------------------------------------------------------- #
# Projection / materialisation
# --------------------------------------------------------------------------- #

def project(table: Table, selection: SelectionVector,
            columns: Iterable[str]) -> Dict[str, Column]:
    """Materialise the requested columns at the selected row positions."""
    return table.materialize_rows(selection.positions, names=columns)


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #

_AGGREGATES = ("sum", "count", "min", "max", "mean")


def aggregate(values: Column, how: str):
    """A scalar aggregate over a materialised column."""
    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    if how == "count":
        return len(values)
    if len(values) == 0:
        raise QueryError(f"aggregate {how!r} over zero rows")
    data = values.values
    if how == "sum":
        return int(data.sum(dtype=np.int64)) if np.issubdtype(data.dtype, np.integer) \
            else float(data.sum())
    if how == "min":
        return data.min().item()
    if how == "max":
        return data.max().item()
    return float(data.mean())


def group_by_aggregate(keys: Column, values: Column, how: str = "sum"
                       ) -> Dict[str, Column]:
    """Group *values* by *keys* and aggregate each group.

    Returns ``{"key": ..., "aggregate": ...}`` columns sorted by key.  The
    implementation is the textbook sort-free NumPy one: factorise the keys,
    then use ``bincount`` / ``minimum.at`` style reductions.
    """
    if len(keys) != len(values):
        raise QueryError("group_by_aggregate(): keys and values must have equal length")
    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    unique_keys, codes = np.unique(keys.values, return_inverse=True)
    data = values.values
    if how == "count":
        result = np.bincount(codes, minlength=unique_keys.size)
    elif how == "sum":
        result = np.bincount(codes, weights=data.astype(np.float64),
                             minlength=unique_keys.size)
        if np.issubdtype(data.dtype, np.integer):
            result = np.rint(result).astype(np.int64)
    elif how == "mean":
        sums = np.bincount(codes, weights=data.astype(np.float64),
                           minlength=unique_keys.size)
        counts = np.bincount(codes, minlength=unique_keys.size)
        result = sums / np.maximum(counts, 1)
    else:
        fill = np.iinfo(np.int64).max if how == "min" else np.iinfo(np.int64).min
        result = np.full(unique_keys.size, fill, dtype=np.int64)
        ufunc = np.minimum if how == "min" else np.maximum
        ufunc.at(result, codes, data.astype(np.int64))
    return {"key": Column(unique_keys, name="key"),
            "aggregate": Column(result, name=f"{how}")}


# --------------------------------------------------------------------------- #
# Hash join
# --------------------------------------------------------------------------- #

def hash_join(left_keys: Column, right_keys: Column
              ) -> Tuple[Column, Column]:
    """Inner equi-join of two key columns.

    Returns matching position pairs ``(left_positions, right_positions)``.
    The build side is the right input; the probe uses ``searchsorted`` over
    the sorted build keys, which is the NumPy-friendly stand-in for a hash
    table and preserves the relevant behaviour (one probe per left row).
    """
    right = right_keys.values
    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    left = left_keys.values

    start = np.searchsorted(sorted_right, left, side="left")
    stop = np.searchsorted(sorted_right, left, side="right")
    counts = stop - start
    if counts.sum() == 0:
        empty = Column(np.empty(0, dtype=np.int64))
        return empty, empty

    left_positions = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    # For every match, the offset within its run of equal right keys.
    within = np.arange(counts.sum(), dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    right_positions = order[np.repeat(start, counts) + within]
    return Column(left_positions), Column(right_positions.astype(np.int64))

"""Physical operators over stored (compressed) tables.

The engine is vectorised and chunk-at-a-time: operators consume and produce
:class:`RowSelection` s (a chunk reference plus a position list), so filters
stay in the cheap position-list ("late materialisation") currency for as
long as possible and columns are only decompressed when their values are
actually needed — and, when the pushdown module knows how, predicates are
evaluated on the compressed form itself.

The operator set is intentionally the one the paper's decompression plans
are made of — selection, gather/materialisation, aggregation, hash join —
to keep the "decompression is query execution" point front and centre.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as _dataclass_fields
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..columnar.column import Column, concat_columns
from ..errors import QueryError
from ..storage.table import Table
from .predicates import Predicate
from .pushdown import PushdownStats


@dataclass
class ScanStats:
    """Accounting of what a scan touched (drives experiments E9/E10).

    Since the chunk-parallel scheduler (:mod:`repro.engine.scan`) these
    counters are merged over **all** conjuncts of a multi-predicate scan:
    ``chunks_total`` counts (predicate, chunk) evaluation slots, of which
    ``chunks_short_circuited`` were never evaluated because an earlier
    conjunct had already emptied the chunk's surviving-position set.
    ``chunks_decompressed`` counts actual decompressions — conjuncts sharing
    a column share one decompression per chunk, so it is bounded by the
    number of distinct (column, chunk) pairs, not by the conjunct count.
    """

    chunks_total: int = 0
    chunks_skipped: int = 0
    chunks_fully_accepted: int = 0
    chunks_pushed_down: int = 0
    chunks_decompressed: int = 0
    chunks_short_circuited: int = 0
    predicates_total: int = 0
    rows_scanned: int = 0
    rows_selected: int = 0
    #: Rows whose predicate, gather or aggregate was computed **in the
    #: compressed domain** (run values, dictionary codes, packed words,
    #: segment references) instead of on decompressed values.
    rows_computed_compressed: int = 0
    #: Uncompressed bytes of chunks that compressed-domain execution served
    #: entirely without decompressing (the decompression output that was
    #: never materialised).  Approximate for chunks straddling scan ranges.
    bytes_decompressed_saved: int = 0
    #: Compiled-plan cache traffic attributable to this scan: ``hits`` counts
    #: chunk decompressions served by an already-compiled plan (at either
    #: cache level), ``misses`` counts actual plan compilations.  A healthy
    #: multi-chunk scan compiles at most one plan per distinct scheme and
    #: hits the cache for every further chunk.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Hot-chunk decompression-cache traffic (process workers keep a
    #: byte-budgeted LRU of decompressed chunks across queries, see
    #: :class:`repro.engine.parallel.ChunkCache`).  Zero unless a cache is
    #: enabled; a cache hit serves a chunk without incrementing
    #: ``chunks_decompressed`` because no decompression actually ran.
    hot_cache_hits: int = 0
    hot_cache_misses: int = 0
    hot_cache_evictions: int = 0
    #: Resilience accounting (see :mod:`repro.engine.resilience`):
    #: ``chunks_quarantined`` counts chunk ranges skipped because a segment
    #: failed its integrity check under ``on_corruption="quarantine"`` —
    #: it affects results, so it stays in :meth:`comparable`.  The other
    #: three count recovery work (range re-executions, worker respawns,
    #: observed fault occurrences) that varies with timing and fault
    #: placement, not with what the scan logically computed.
    chunks_quarantined: int = 0
    ranges_retried: int = 0
    workers_respawned: int = 0
    fault_events: int = 0
    pushdown: PushdownStats = field(default_factory=PushdownStats)

    #: Counters reflecting process-local warm state (compiled-plan and
    #: hot-chunk cache traffic) or fault-recovery history rather than what
    #: the scan logically did.  They vary with execution history even
    #: between two serial runs, so backend-equivalence checks compare
    #: :meth:`comparable` instead.
    WARMTH_FIELDS = ("plan_cache_hits", "plan_cache_misses",
                     "hot_cache_hits", "hot_cache_misses",
                     "hot_cache_evictions", "ranges_retried",
                     "workers_respawned", "fault_events")

    def merge_pushdown(self, stats: PushdownStats) -> None:
        self.pushdown.rows_total += stats.rows_total
        self.pushdown.rows_decoded += stats.rows_decoded
        self.pushdown.segments_total += stats.segments_total
        self.pushdown.segments_skipped += stats.segments_skipped
        self.pushdown.segments_accepted += stats.segments_accepted
        self.pushdown.runs_total += stats.runs_total

    def merge(self, other: "ScanStats") -> None:
        """Accumulate *other* into this instance (used by the scan scheduler
        to combine per-chunk-range partial stats deterministically)."""
        self.chunks_total += other.chunks_total
        self.chunks_skipped += other.chunks_skipped
        self.chunks_fully_accepted += other.chunks_fully_accepted
        self.chunks_pushed_down += other.chunks_pushed_down
        self.chunks_decompressed += other.chunks_decompressed
        self.chunks_short_circuited += other.chunks_short_circuited
        self.predicates_total += other.predicates_total
        self.rows_scanned += other.rows_scanned
        self.rows_selected += other.rows_selected
        self.rows_computed_compressed += other.rows_computed_compressed
        self.bytes_decompressed_saved += other.bytes_decompressed_saved
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.hot_cache_hits += other.hot_cache_hits
        self.hot_cache_misses += other.hot_cache_misses
        self.hot_cache_evictions += other.hot_cache_evictions
        self.chunks_quarantined += other.chunks_quarantined
        self.ranges_retried += other.ranges_retried
        self.workers_respawned += other.workers_respawned
        self.fault_events += other.fault_events
        self.merge_pushdown(other.pushdown)

    def comparable(self) -> Dict[str, int]:
        """The deterministic counters as a flat dict.

        Every field is a plain counter sum, so :meth:`merge` is associative
        and order-insensitive — merging permuted partials yields the same
        totals (the scheduler still merges in chunk order so that *results*,
        which are order-sensitive, stay deterministic).  Cache-warmth fields
        (:data:`WARMTH_FIELDS`) are excluded: they measure how warm this
        process's caches happened to be, which legitimately differs between
        a serial run and a pool of workers with their own cache history.
        """
        flat = {
            name: getattr(self, name)
            for name in (f.name for f in _dataclass_fields(self))
            if name != "pushdown" and name not in self.WARMTH_FIELDS
        }
        for name in (f.name for f in _dataclass_fields(self.pushdown)):
            flat[f"pushdown.{name}"] = getattr(self.pushdown, name)
        return flat


@dataclass
class SelectionVector:
    """Qualifying global row positions (the engine's late-materialisation currency)."""

    positions: Column

    def __len__(self) -> int:
        return len(self.positions)

    @staticmethod
    def from_mask(mask: np.ndarray, row_offset: int) -> "SelectionVector":
        return SelectionVector(Column(np.flatnonzero(mask).astype(np.int64) + row_offset))

    @staticmethod
    def all_rows(row_count: int) -> "SelectionVector":
        return SelectionVector(Column(np.arange(row_count, dtype=np.int64)))

    @staticmethod
    def concatenate(vectors: Sequence["SelectionVector"]) -> "SelectionVector":
        if not vectors:
            return SelectionVector(Column(np.empty(0, dtype=np.int64)))
        return SelectionVector(concat_columns([v.positions for v in vectors]))


# --------------------------------------------------------------------------- #
# Selection (filter) over a stored table
# --------------------------------------------------------------------------- #

def filter_table(table: Table, predicate: Predicate,
                 use_pushdown: bool = True,
                 use_zone_maps: bool = True,
                 parallelism: int = 1) -> Tuple[SelectionVector, ScanStats]:
    """Evaluate *predicate* over its column, returning qualifying row positions.

    Evaluation order per chunk: zone-map decision first (skip / accept the
    whole chunk), then compressed-form pushdown when available and enabled,
    then decompress-and-compare as the fallback.  This is the single-predicate
    entry point of the chunk-parallel scheduler in :mod:`repro.engine.scan`.
    """
    from .scan import scan_table

    result = scan_table(table, [predicate], use_pushdown=use_pushdown,
                        use_zone_maps=use_zone_maps, parallelism=parallelism)
    assert result.stats is not None
    return result.selection, result.stats


# --------------------------------------------------------------------------- #
# Projection / materialisation
# --------------------------------------------------------------------------- #

def project(table: Table, selection: SelectionVector,
            columns: Iterable[str], parallelism: int = 1) -> Dict[str, Column]:
    """Materialise the requested columns at the selected row positions.

    Gathering goes through :func:`repro.engine.scan.gather_rows`: positions
    are bucketed per chunk with one ``searchsorted`` and untouched chunks are
    never decompressed; ``parallelism > 1`` fans the chunk gathers out.
    """
    from .scan import gather_rows

    return {name: gather_rows(table.column(name), selection.positions,
                              parallelism=parallelism)
            for name in columns}


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #

_AGGREGATES = ("sum", "count", "min", "max", "mean")


def aggregate(values: Column, how: str):
    """A scalar aggregate over a materialised column."""
    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    if how == "count":
        return len(values)
    if len(values) == 0:
        raise QueryError(f"aggregate {how!r} over zero rows")
    data = values.values
    if how == "sum":
        if np.issubdtype(data.dtype, np.unsignedinteger):
            return int(data.sum(dtype=np.uint64))
        if np.issubdtype(data.dtype, np.integer):
            return int(data.sum(dtype=np.int64))
        return float(data.sum())  # repro: ignore[RA001] — float64 sums accumulate in float64
    if how == "min":
        return data.min().item()
    if how == "max":
        return data.max().item()
    return float(data.mean())


def grouped_reduce(codes: np.ndarray, num_groups: int,
                   values: Optional[Column], how: str) -> Column:
    """Reduce *values* per group, given pre-factorised group *codes*.

    This is the kernel half of :func:`group_by_aggregate`: *codes* maps each
    row to its group index in ``[0, num_groups)``.  Factorising once and
    reducing many times is what multi-aggregate ``group_by().agg(...)``
    queries (and multi-key groupings, which factorise outside NumPy's
    ``unique``) need.  ``how="count"`` ignores *values* (may be ``None``).
    The dtype discipline matches the scalar aggregates: integer sums
    accumulate in int64/uint64, min/max preserve the value dtype.
    """
    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    if how == "count":
        result = np.bincount(codes, minlength=num_groups)
        return Column(result, name=how)
    if values is None:
        raise QueryError(f"grouped_reduce(): aggregate {how!r} needs values")
    if codes.size != len(values):
        raise QueryError("grouped_reduce(): codes and values must have equal length")
    data = values.values
    if how == "sum":
        if np.issubdtype(data.dtype, np.integer):
            # bincount's float64 weights lose integer precision above 2^53;
            # accumulate in the value's own integer family instead.
            accumulator = np.uint64 if np.issubdtype(data.dtype, np.unsignedinteger) \
                else np.int64
            result = np.zeros(num_groups, dtype=accumulator)
            np.add.at(result, codes, data.astype(accumulator))
        else:
            result = np.bincount(codes, weights=data.astype(np.float64),
                                 minlength=num_groups)
    elif how == "mean":
        sums = np.bincount(codes, weights=data.astype(np.float64),
                           minlength=num_groups)
        counts = np.bincount(codes, minlength=num_groups)
        result = sums / np.maximum(counts, 1)
    else:
        fill = minmax_identity(data.dtype, how)
        result = np.full(num_groups, fill, dtype=data.dtype)
        ufunc = np.minimum if how == "min" else np.maximum
        ufunc.at(result, codes, data)
    return Column(result, name=how)


def minmax_identity(dtype: np.dtype, how: str):
    """The identity element of per-group ``min``/``max`` for *dtype* (the
    fill value a group that no row touches keeps)."""
    if dtype == np.bool_:
        return how == "min"  # identity of AND for min, of OR for max
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return info.max if how == "min" else info.min
    return np.inf if how == "min" else -np.inf


def group_by_aggregate(keys: Column, values: Column, how: str = "sum"
                       ) -> Dict[str, Column]:
    """Group *values* by *keys* and aggregate each group.

    Returns ``{"key": ..., "aggregate": ...}`` columns sorted by key.  The
    implementation is the textbook sort-free NumPy one: factorise the keys
    with ``np.unique``, then reduce through :func:`grouped_reduce`.
    """
    if len(keys) != len(values):
        raise QueryError("group_by_aggregate(): keys and values must have equal length")
    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    unique_keys, codes = np.unique(keys.values, return_inverse=True)
    aggregate_column = grouped_reduce(codes, unique_keys.size, values, how)
    return {"key": Column(unique_keys, name="key"),
            "aggregate": aggregate_column}


# --------------------------------------------------------------------------- #
# Compressed-input gathers and aggregates
# --------------------------------------------------------------------------- #

def _iter_chunk_hits(stored, positions: np.ndarray):
    """Yield ``(chunk, local_positions, (start, stop))`` for every chunk of
    *stored* hit by the sorted global *positions* (one ``searchsorted`` pair
    per chunk; untouched chunks are skipped entirely)."""
    for chunk in stored.chunks:
        start, stop = np.searchsorted(
            positions, [chunk.row_offset, chunk.row_offset + chunk.row_count])
        if start == stop:
            continue
        yield chunk, positions[start:stop] - chunk.row_offset, (int(start), int(stop))


def gather_stored(stored, positions: np.ndarray
                  ) -> Tuple[np.ndarray, ScanStats]:
    """Materialise *stored* at sorted global *positions*, compressed where able.

    The compressed-aware sibling of :func:`repro.engine.scan.gather_rows`:
    chunks whose forms advertise the gather kernel are read positionally in
    the compressed domain (:func:`repro.engine.kernels.gather`) and are
    never decompressed; the rest decompress and fancy-index.  Results are
    bit-identical either way.  Returns the values plus a :class:`ScanStats`
    carrying the compressed-execution accounting.
    """
    from . import kernels

    stats = ScanStats()
    out = np.empty(positions.size, dtype=stored.dtype)
    for chunk, local, (start, stop) in _iter_chunk_hits(stored, positions):
        values = kernels.gather(chunk.scheme, chunk.form, local)
        if values is not None:
            stats.rows_computed_compressed += local.size
            stats.bytes_decompressed_saved += chunk.uncompressed_size_bytes()
        else:
            stats.chunks_decompressed += 1
            values = chunk.decompress().values[local]
        out[start:stop] = values
    return out, stats


def aggregate_stored(stored, positions: np.ndarray, how: str
                     ) -> Tuple[Any, ScanStats]:
    """A scalar aggregate over *stored* at sorted *positions*, compressed
    where the chunk forms allow.

    Bit-identical to materialising the selection and calling
    :func:`aggregate`: integer sums accumulate per chunk in the same
    int64/uint64 family (chunked accumulation is exact modulo 2**64, like
    NumPy's own), min/max combine per-chunk partials in the value dtype, and
    chunks fully covered by the selection use the whole-form kernels
    (:func:`repro.engine.kernels.aggregate_whole`) so e.g. an RLE chunk sums
    as ``values·lengths`` without expansion.  ``mean`` and float sums fall
    back to one materialised-selection pass to preserve NumPy's summation
    order exactly.
    """
    from . import kernels

    if how not in _AGGREGATES:
        raise QueryError(f"unknown aggregate {how!r}; known: {_AGGREGATES}")
    if how == "count":
        return int(positions.size), ScanStats()
    if positions.size == 0:
        raise QueryError(f"aggregate {how!r} over zero rows")
    if how == "mean" or (how == "sum"
                         and not np.issubdtype(stored.dtype, np.integer)):
        values, stats = gather_stored(stored, positions)
        return aggregate(Column(values), how), stats

    total, stats = aggregate_stored_partial(stored, positions, how)
    assert total is not None  # positions.size > 0 was checked above
    return int(total) if how == "sum" else total.item(), stats


def aggregate_stored_partial(stored, positions: np.ndarray, how: str
                             ) -> Tuple[Optional[Any], ScanStats]:
    """The raw mergeable partial of a sum/min/max over *stored* at sorted
    *positions* — a NumPy scalar (or ``None`` for an empty selection), not
    yet finalised to a Python value.

    This is the per-chunk combine loop of :func:`aggregate_stored`, exposed
    so the process backend can compute one partial per chunk range and merge
    them associatively (:class:`ScalarAggState`): integer sums wrap exactly
    like chunked int64/uint64 accumulation (mod 2**64), min/max combine in
    the value dtype.  Only ``sum`` over integer columns, ``min`` and ``max``
    are partial-mergeable — float sums and ``mean`` depend on summation
    order and must materialise in one pass.
    """
    from . import kernels

    if how not in ("sum", "min", "max"):
        raise QueryError(f"aggregate {how!r} has no mergeable partial state")
    if how == "sum" and not np.issubdtype(stored.dtype, np.integer):
        raise QueryError("float sums depend on summation order and have no "
                         "mergeable partial state")
    stats = ScanStats()
    if positions.size == 0:
        return None, stats
    partials = []
    for chunk, local, __ in _iter_chunk_hits(stored, positions):
        if local.size == chunk.row_count:
            partial = kernels.aggregate_whole(chunk.scheme, chunk.form, how)
            if partial is not None:
                stats.rows_computed_compressed += local.size
                stats.bytes_decompressed_saved += chunk.uncompressed_size_bytes()
                partials.append(partial)
                continue
        values = kernels.gather(chunk.scheme, chunk.form, local)
        if values is not None:
            stats.rows_computed_compressed += local.size
            stats.bytes_decompressed_saved += chunk.uncompressed_size_bytes()
        else:
            stats.chunks_decompressed += 1
            values = chunk.decompress().values[local]
        if how == "sum":
            accumulator = np.uint64 if np.issubdtype(values.dtype, np.unsignedinteger) \
                else np.int64
            partials.append(values.sum(dtype=accumulator))
        elif how == "min":
            partials.append(values.min())
        else:
            partials.append(values.max())

    combine = _COMBINE_UFUNC[how]
    total = partials[0]
    for partial in partials[1:]:
        total = combine(total, partial)
    return total, stats


# --------------------------------------------------------------------------- #
# Mergeable aggregate states (partial-aggregate execution)
# --------------------------------------------------------------------------- #

_COMBINE_UFUNC = {"sum": np.add, "min": np.minimum, "max": np.maximum}


@dataclass
class ScalarAggState:
    """A mergeable partial of one scalar aggregate.

    Worker processes compute one state per chunk range; the coordinator
    merges them (associative and order-insensitive for every supported op:
    integer sums are exact mod 2**64, min/max are lattice joins, count is a
    plain sum) and finalises once.  ``partial is None`` means the range
    selected no rows; :meth:`finalize` raises the same
    :class:`~repro.errors.QueryError` the serial path raises for an
    all-empty selection.
    """

    op: str
    rows: int = 0
    partial: Optional[Any] = None  # a NumPy scalar, or None when no rows yet

    def merge(self, other: "ScalarAggState") -> None:
        if self.op != other.op:
            raise QueryError(f"cannot merge {other.op!r} state into "
                             f"{self.op!r} state")
        self.rows += other.rows
        if other.partial is not None:
            if self.partial is None:
                self.partial = other.partial
            else:
                self.partial = _COMBINE_UFUNC[self.op](self.partial,
                                                       other.partial)

    def finalize(self) -> Any:
        """The finished aggregate value, matching :func:`aggregate_stored`."""
        if self.op == "count":
            return int(self.rows)
        if self.partial is None:
            raise QueryError(f"aggregate {self.op!r} over zero rows")
        if self.op == "sum":
            return int(self.partial)
        return self.partial.item() if hasattr(self.partial, "item") \
            else self.partial


@dataclass
class GroupedAggState:
    """A mergeable partial of a single-key grouped aggregation.

    *keys* holds the sorted distinct key values this partial saw;
    *aggregates* maps output names to ``(op, per-group array)`` aligned with
    *keys*.  Merging unions the key dictionaries (sorted, exactly like the
    per-chunk dictionary merge in :func:`group_codes_stored`) and combines
    the per-group arrays: sums/counts add (exact for the integer
    accumulators the grouped kernels produce), min/max join against the
    dtype identity fill — so the merged result is bit-identical to grouping
    the whole selection at once, for every op this state supports.
    """

    keys: np.ndarray
    rows: int
    aggregates: Dict[str, Tuple[str, np.ndarray]]

    def merge(self, other: "GroupedAggState") -> None:
        if list(self.aggregates) != list(other.aggregates):
            raise QueryError("cannot merge grouped states with different "
                             "aggregate layouts")
        merged = np.union1d(self.keys, other.keys)
        remap_self = np.searchsorted(merged, self.keys)
        remap_other = np.searchsorted(merged, other.keys)
        combined: Dict[str, Tuple[str, np.ndarray]] = {}
        for name, (op, mine) in self.aggregates.items():
            theirs = other.aggregates[name][1]
            if op in ("sum", "count"):
                out = np.zeros(merged.size, dtype=mine.dtype)
                out[remap_self] += mine
                out[remap_other] += theirs
            else:
                ufunc = np.minimum if op == "min" else np.maximum
                fill = minmax_identity(mine.dtype, op)
                out = np.full(merged.size, fill, dtype=mine.dtype)
                out[remap_self] = ufunc(out[remap_self], mine)
                out[remap_other] = ufunc(out[remap_other], theirs)
            combined[name] = (op, out)
        self.keys = merged
        self.rows += other.rows
        self.aggregates = combined


def merge_states(states: Sequence[Any]) -> Any:
    """Fold a non-empty sequence of per-range states (scalar dicts or
    grouped states, as produced by the process workers) into one."""
    if not states:
        raise QueryError("merge_states() needs at least one partial state")
    first = states[0]
    if isinstance(first, dict):  # {output name: ScalarAggState}
        merged: Dict[str, ScalarAggState] = {
            name: ScalarAggState(op=state.op, rows=state.rows,
                                 partial=state.partial)
            for name, state in first.items()}
        for partial in states[1:]:
            for name, state in partial.items():
                merged[name].merge(state)
        return merged
    merged_grouped = GroupedAggState(keys=first.keys, rows=first.rows,
                                     aggregates=dict(first.aggregates))
    for partial in states[1:]:
        merged_grouped.merge(partial)
    return merged_grouped


def group_codes_stored(stored, positions: np.ndarray
                       ) -> Optional[Tuple[np.ndarray, np.ndarray, ScanStats]]:
    """Factorise *stored* at sorted *positions* into group codes, using the
    chunks' dictionary codes instead of sorting the selected values.

    Returns ``(unique_values, codes, stats)`` exactly matching
    ``np.unique(selection, return_inverse=True)`` — sorted distinct values
    actually present in the selection, codes indexing them — or ``None``
    when no chunk advertises the group-codes kernel (the caller should then
    factorise materialised values as usual).  Chunks without the kernel
    contribute through a per-chunk ``np.unique`` fallback, and the small
    per-chunk dictionaries are merged instead of sorting all selected rows.
    """
    from . import kernels
    from ..schemes.base import KERNEL_GROUP_CODES

    stats = ScanStats()
    if positions.size == 0:
        return (np.empty(0, dtype=stored.dtype),
                np.empty(0, dtype=np.int64), stats)
    hits = list(_iter_chunk_hits(stored, positions))
    if not any(kernels.supports(chunk.scheme, chunk.form, KERNEL_GROUP_CODES)
               for chunk, __, __ in hits):
        return None

    per_chunk = []
    for chunk, local, span in hits:
        coded = kernels.group_codes(
            chunk.scheme, chunk.form,
            None if local.size == chunk.row_count else local)
        if coded is None:
            stats.chunks_decompressed += 1
            values = chunk.decompress().values[local]
            groups, codes = np.unique(values, return_inverse=True)
            coded = (codes.reshape(-1).astype(np.int64), groups)
        else:
            stats.rows_computed_compressed += local.size
            stats.bytes_decompressed_saved += chunk.uncompressed_size_bytes()
        per_chunk.append((span, coded[0], coded[1]))

    merged = np.unique(np.concatenate([groups for __, __, groups in per_chunk]))
    codes_out = np.empty(positions.size, dtype=np.int64)
    for (start, stop), codes, groups in per_chunk:
        remap = np.searchsorted(merged, groups)
        codes_out[start:stop] = remap[codes]
    counts = np.bincount(codes_out, minlength=merged.size)
    present = counts > 0
    if not present.all():
        # Dictionary entries (or other chunks' values) absent from the
        # selection must not surface as empty groups — np.unique would not
        # report them.
        relabel = np.cumsum(present, dtype=np.int64) - 1
        codes_out = relabel[codes_out]
        merged = merged[present]
    return merged, codes_out, stats


# --------------------------------------------------------------------------- #
# Hash join
# --------------------------------------------------------------------------- #

def hash_join(left_keys: Column, right_keys: Column
              ) -> Tuple[Column, Column]:
    """Inner equi-join of two key columns.

    Returns matching position pairs ``(left_positions, right_positions)``.
    The build side is the right input; the probe uses ``searchsorted`` over
    the sorted build keys, which is the NumPy-friendly stand-in for a hash
    table and preserves the relevant behaviour (one probe per left row).
    """
    right = right_keys.values
    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    left = left_keys.values

    start = np.searchsorted(sorted_right, left, side="left")
    stop = np.searchsorted(sorted_right, left, side="right")
    counts = stop - start
    if counts.sum(dtype=np.int64) == 0:
        empty = Column(np.empty(0, dtype=np.int64))
        return empty, empty

    left_positions = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    # For every match, the offset within its run of equal right keys.
    within = np.arange(counts.sum(dtype=np.int64), dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts, dtype=np.int64)[:-1])), counts)
    right_positions = order[np.repeat(start, counts) + within]
    return Column(left_positions), Column(right_positions.astype(np.int64))

"""Predicates: the selection expressions the engine evaluates and pushes down.

Predicates can be evaluated in three places, cheapest first:

1. against **chunk statistics** (zone maps) — a whole chunk may be accepted
   or rejected without touching its data;
2. against the **compressed form** — e.g. a range predicate over a
   FOR/STEPFUNCTION chunk can accept or reject whole *segments* from the
   references alone, or be rewritten onto DICT codes, or be evaluated once
   per *run* of an RLE/RPE chunk;
3. against the **decompressed values** — the fallback.

The paper's §II-B points at (2) — "The rough correspondence of the column
data to a simple model can be used to speed up selections (e.g. range
queries) and joins" — and experiment E9 measures exactly the gap between
(2)+(3) and plain (3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..columnar.column import Column
from ..errors import QueryError
from ..storage.statistics import ColumnStatistics


class Predicate(abc.ABC):
    """A single-column predicate."""

    def __init__(self, column_name: str):
        self.column_name = column_name

    @abc.abstractmethod
    def evaluate(self, values: Column) -> Column:
        """Evaluate against materialised values, returning a boolean mask."""

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        """Decide a whole chunk from its statistics, if possible.

        Returns ``True`` when every row qualifies, ``False`` when no row can
        qualify, and ``None`` when the chunk must be inspected.
        """
        return None

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)


@dataclass(frozen=True)
class RangeBounds:
    """Inclusive numeric bounds (used by range predicates and pushdown helpers)."""

    low: int
    high: int

    def __post_init__(self):
        if self.high < self.low:
            raise QueryError(f"empty range: [{self.low}, {self.high}]")


class Between(Predicate):
    """``low <= column <= high`` (inclusive on both ends)."""

    def __init__(self, column_name: str, low, high):
        super().__init__(column_name)
        self.bounds = RangeBounds(int(low), int(high))

    def evaluate(self, values: Column) -> Column:
        data = values.values
        return Column((data >= self.bounds.low) & (data <= self.bounds.high))

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        if not statistics.overlaps_range(self.bounds.low, self.bounds.high):
            return False
        if statistics.contained_in_range(self.bounds.low, self.bounds.high):
            return True
        return None

    def __repr__(self) -> str:
        return f"Between({self.column_name!r}, {self.bounds.low}, {self.bounds.high})"


class Equals(Predicate):
    """``column == value`` (a degenerate range, and treated as such for pushdown)."""

    def __init__(self, column_name: str, value):
        super().__init__(column_name)
        self.value = value

    def evaluate(self, values: Column) -> Column:
        return Column(values.values == self.value)

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        if not statistics.overlaps_range(self.value, self.value):
            return False
        if statistics.minimum == statistics.maximum == self.value:
            return True
        return None

    def __repr__(self) -> str:
        return f"Equals({self.column_name!r}, {self.value!r})"


class IsIn(Predicate):
    """``column ∈ candidates``."""

    def __init__(self, column_name: str, candidates: Iterable):
        super().__init__(column_name)
        self.candidates = np.asarray(sorted(set(candidates)))
        if self.candidates.size == 0:
            raise QueryError("IsIn() requires at least one candidate value")

    def evaluate(self, values: Column) -> Column:
        return Column(np.isin(values.values, self.candidates))

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        lo, hi = int(self.candidates.min()), int(self.candidates.max())
        if not statistics.overlaps_range(lo, hi):
            return False
        return None

    def __repr__(self) -> str:
        return f"IsIn({self.column_name!r}, {self.candidates.tolist()!r})"


class _Compound(Predicate):
    """Base for AND/OR of two predicates over the *same* column.

    (Cross-column conjunctions are handled at the query level by combining
    masks; compound predicates exist so single-column pushdown can still be
    applied to expressions like ``a BETWEEN x AND y OR a = z``.)
    """

    def __init__(self, left: Predicate, right: Predicate):
        if left.column_name != right.column_name:
            raise QueryError(
                "compound predicates must reference a single column; combine "
                "multi-column filters at the query level instead"
            )
        super().__init__(left.column_name)
        self.left = left
        self.right = right


class And(_Compound):
    """Conjunction of two predicates over the same column."""

    def evaluate(self, values: Column) -> Column:
        return Column(self.left.evaluate(values).values & self.right.evaluate(values).values)

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        left = self.left.chunk_decision(statistics)
        right = self.right.chunk_decision(statistics)
        if left is False or right is False:
            return False
        if left is True and right is True:
            return True
        return None


class Or(_Compound):
    """Disjunction of two predicates over the same column."""

    def evaluate(self, values: Column) -> Column:
        return Column(self.left.evaluate(values).values | self.right.evaluate(values).values)

    def chunk_decision(self, statistics: ColumnStatistics) -> Optional[bool]:
        left = self.left.chunk_decision(statistics)
        right = self.right.chunk_decision(statistics)
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        return None

"""Predicate-constant translation through compression layers.

Compressed-domain execution hinges on one observation: most lightweight
schemes are *order-preserving coordinate changes*, so a predicate constant
can be rewritten into the stored domain instead of rewriting the stored data
into the value domain.  This module centralises those rewrites:

* **cascade peeling** (:func:`resolve_form`) — a composite form such as
  ``RLE∘[values=DELTA, lengths=NS]`` is reduced to its *outer* form by
  decompressing only the nested constituents (which are short by
  construction: run values, lengths, references).  The result is memoised on
  the form, so composite, patched and model-backed columns reach the outer
  scheme's compressed kernels at the cost of one small reconstruction — the
  first time cascaded columns get pushdown at all;
* **NS bound translation** (:func:`translate_range_to_stored`) — the
  ``none`` and ``bias`` transforms are order-preserving shifts, so a value
  range ``[lo, hi]`` becomes a stored-domain unsigned range and the
  comparison can run word-parallel on the packed words
  (:func:`repro.columnar.ops.bitpack.packed_compare_range`);
* **DICT code translation** (:func:`translate_range_to_codes`) — the sorted
  dictionary turns a value range into a code range (two binary searches on
  the small dictionary);
* **FOR segment classification** (:func:`classify_segments`) — per-segment
  references bound every value in the segment, so the range constants
  translate into whole-segment accept/reject verdicts, leaving only the
  straddling segments to consult their offsets.

Everything here is pure constant/metadata arithmetic: no function in this
module decompresses row data (cascade peeling touches nested *constituents*
only, never the column itself).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..schemes.base import CompressedForm, CompressionScheme
from ..schemes.composite import Cascade
from .predicates import RangeBounds

__all__ = [
    "EMPTY",
    "resolve_form",
    "translate_range_to_stored",
    "translate_range_to_codes",
    "segment_bounds",
    "classify_segments",
]

#: Sentinel: the translated predicate can match nothing in this form.
EMPTY = "empty"


def resolve_form(
    scheme: CompressionScheme,
    form: CompressedForm,
) -> Tuple[CompressionScheme, CompressedForm]:
    """Peel cascade layers off ``(scheme, form)`` until a plain scheme remains.

    Each peel materialises the nested constituents of one :class:`Cascade`
    level (memoised on the form, see ``Cascade.resolved_outer_form``); the
    returned pair is what the compressed-domain kernels dispatch on.
    Non-cascade inputs are returned unchanged.
    """
    while isinstance(scheme, Cascade):
        form = scheme.resolved_outer_form(form)
        scheme = scheme.outer
    return scheme, form


# --------------------------------------------------------------------------- #
# NS: value range -> stored unsigned range
# --------------------------------------------------------------------------- #


def translate_range_to_stored(
    form: CompressedForm,
    bounds: RangeBounds,
) -> Union[str, None, Tuple[int, int]]:
    """Rewrite ``[low, high]`` into the NS form's stored unsigned domain.

    Returns the translated inclusive ``(lo, hi)`` clamped into
    ``[0, 2**width - 1]``, the :data:`EMPTY` sentinel when no stored value
    can match, or ``None`` when the transform is not order-preserving
    (zig-zag) and no translation exists.
    """
    transform = form.parameter("transform", "none")
    if transform == "zigzag":
        return None
    width = int(form.parameter("width"))
    shift = int(form.parameter("bias", 0)) if transform == "bias" else 0
    lo = bounds.low - shift
    hi = bounds.high - shift
    top = (1 << width) - 1
    if hi < 0 or lo > top:
        return EMPTY
    return max(lo, 0), min(hi, top)


# --------------------------------------------------------------------------- #
# DICT: value range -> code range
# --------------------------------------------------------------------------- #


def translate_range_to_codes(
    form: CompressedForm,
    bounds: RangeBounds,
) -> Tuple[int, int]:
    """Rewrite ``[low, high]`` into the DICT form's code domain.

    Returns the inclusive-exclusive code range ``[lo_code, hi_code)``; an
    empty range (``lo_code >= hi_code``) means no stored value matches.
    """
    from ..schemes.dict_ import DictionaryEncoding

    return DictionaryEncoding.rewrite_range_to_codes(form, bounds.low, bounds.high)


# --------------------------------------------------------------------------- #
# FOR family: value range -> per-segment verdicts
# --------------------------------------------------------------------------- #


def segment_bounds(form: CompressedForm) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``[low, high]`` value bounds of a FOR-family form, memoised.

    Derivable from the references and the offset width alone (saturating at
    the int64 limits, see :func:`repro.schemes.for_.saturating_segment_bounds`);
    a multi-conjunct scan reuses one computation per form.
    """
    from ..schemes.for_ import saturating_segment_bounds

    def compute() -> Tuple[np.ndarray, np.ndarray]:
        refs = form.constituent("refs").values.astype(np.int64)
        if form.scheme == "STEPFUNCTION":
            return refs, refs
        width = int(form.parameter("offsets_width", 64))
        zigzag = bool(form.parameter("offsets_zigzag", False))
        return saturating_segment_bounds(refs, width, zigzag)

    return form.cached(("segment_bounds",), compute)


def classify_segments(
    form: CompressedForm,
    bounds: RangeBounds,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Translate a value range into per-segment ``(accept, reject, inspect)``.

    ``accept`` segments lie entirely inside the range, ``reject`` entirely
    outside; only ``inspect`` segments need their offsets consulted.
    """
    seg_low, seg_high = segment_bounds(form)
    reject = (seg_high < bounds.low) | (seg_low > bounds.high)
    accept = (seg_low >= bounds.low) & (seg_high <= bounds.high)
    inspect = ~(reject | accept)
    return accept, reject, inspect

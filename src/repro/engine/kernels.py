"""Capability-dispatched compressed-domain execution kernels.

Every :class:`~repro.schemes.base.CompressionScheme` advertises, per form,
which kernels it supports (:meth:`~repro.schemes.base.CompressionScheme.
kernel_capabilities`); this module is the engine-side dispatch that turns
those declarations into executable operations:

* :func:`filter_range` — evaluate a range predicate on the compressed form
  (run domain, segment bounds + translated constants, dictionary codes,
  word-parallel packed comparison);
* :func:`gather` — materialise only the requested positions (binary search
  into run positions, positional bit extraction from packed streams, model
  evaluation at the touched positions);
* :func:`aggregate_whole` — count/sum/min/max over a *whole* form without
  decompressing (run-domain arithmetic, dictionary reductions);
* :func:`group_codes` — pre-factorised group codes (dictionary encoding's
  codes are group codes already, so a group-by skips the sort/unique pass).

Cascades are peeled first (:func:`repro.engine.translate.resolve_form`), so
composite columns inherit their outer scheme's entire kernel set — the
first time cascaded forms participate in pushdown at all.

Every kernel is **bit-identical** to decompress-then-compute: ``gather``
reproduces the decompression arithmetic at the requested positions, and the
aggregate kernels accumulate with the same dtype discipline as
:func:`repro.engine.operators.aggregate`.  All kernels return ``None`` when
the form does not advertise the capability, and callers fall back to
decompression.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..columnar.ops import bitpack as _bitpack
from ..schemes import _residuals
from ..schemes.base import (
    KERNEL_AGGREGATE,
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    KERNEL_GROUP_CODES,
    CompressedForm,
    CompressionScheme,
)
from . import translate
from .predicates import RangeBounds
from .pushdown import (
    PushdownStats,
    _run_lengths_of_form,
    range_mask_on_dict,
    range_mask_on_for,
    range_mask_on_ns,
    range_mask_on_runs,
    run_positions_of,
)

__all__ = [
    "capabilities",
    "supports",
    "filter_range",
    "gather",
    "aggregate_whole",
    "group_codes",
]


def capabilities(scheme: CompressionScheme, form: CompressedForm) -> frozenset:
    """The kernel capabilities *scheme* advertises for *form* (memoised)."""
    return form.cached(
        ("kernel_capabilities",),
        lambda: frozenset(scheme.kernel_capabilities(form)),
    )


def supports(scheme: CompressionScheme, form: CompressedForm, kernel: str) -> bool:
    """Whether *form* advertises *kernel* (one of the ``KERNEL_*`` names)."""
    return kernel in capabilities(scheme, form)


# --------------------------------------------------------------------------- #
# Range filters
# --------------------------------------------------------------------------- #

_FILTERS: Dict[str, Callable] = {
    "RLE": range_mask_on_runs,
    "RPE": range_mask_on_runs,
    "FOR": range_mask_on_for,
    "PFOR": range_mask_on_for,
    "DICT": range_mask_on_dict,
    "NS": range_mask_on_ns,
}


def filter_range(
    scheme: CompressionScheme,
    form: CompressedForm,
    bounds: RangeBounds,
) -> Optional[Tuple[np.ndarray, PushdownStats]]:
    """Evaluate ``low <= column <= high`` on the compressed form, if able.

    Returns ``(mask, stats)`` with a boolean row mask over the form's rows,
    or ``None`` when the form does not advertise
    :data:`~repro.schemes.base.KERNEL_FILTER_RANGE` (or no kernel exists for
    the resolved scheme).  Cascades are peeled to their outer form first.
    """
    if not supports(scheme, form, KERNEL_FILTER_RANGE):
        return None
    __, resolved = translate.resolve_form(scheme, form)
    kernel = _FILTERS.get(resolved.scheme)
    if kernel is None:
        return None
    result = kernel(resolved, bounds)
    if result is None:
        return None
    mask_column, stats = result
    return mask_column.values, stats


# --------------------------------------------------------------------------- #
# Positional gathers
# --------------------------------------------------------------------------- #


def _gather_id(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    return form.constituent("values").values[positions]


def _gather_runs(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    ends = run_positions_of(form)
    run_index = np.searchsorted(ends, positions, side="right")
    return form.constituent("values").values[run_index]


def _gather_dict(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    dictionary = form.constituent("dictionary").values
    if form.parameter("codes_layout") == "packed":
        codes = _bitpack.packed_gather(
            form.constituent("codes"),
            width=int(form.parameter("code_width")),
            count=int(form.parameter("count")),
            positions=positions,
        ).astype(np.int64)
    else:
        codes = form.constituent("codes").values[positions]
    return dictionary[codes]


def _gather_ns(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    # Mirrors NullSuppression.decompress_fused element for element.
    if form.parameter("mode") == "aligned":
        values = form.constituent("values").values[positions].astype(np.uint64)
    else:
        values = _bitpack.packed_gather(
            form.constituent("packed"),
            width=int(form.parameter("width")),
            count=int(form.parameter("count")),
            positions=positions,
        )
    transform = form.parameter("transform", "none")
    if transform == "zigzag":
        return _bitpack._zigzag_decode_values(values)
    if transform == "bias":
        return values.astype(np.int64) + int(form.parameter("bias", 0))
    return values


def _gather_for(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    segment_length = int(form.parameter("segment_length"))
    seg = positions // segment_length
    offsets = _residuals.decode_residuals_at(
        form.constituent("offsets"),
        form.parameters,
        positions,
    )
    return form.constituent("refs").values[seg] + offsets


def _gather_pfor(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    base = _gather_for(form, positions)
    patch_positions = form.constituent("patch_positions").values
    if patch_positions.size:
        slot = np.searchsorted(patch_positions, positions)
        slot = np.minimum(slot, patch_positions.size - 1)
        is_patch = patch_positions[slot] == positions
        if is_patch.any():
            base[is_patch] = form.constituent("patch_values").values[slot[is_patch]]
    return base


def _gather_poly(form: CompressedForm, positions: np.ndarray) -> np.ndarray:
    # Mirrors PiecewisePolynomial.decompress_fused (Horner in float64) at
    # the requested positions only.
    segment_length = int(form.parameter("segment_length"))
    degree = int(form.parameter("degree"))
    seg = positions // segment_length
    pos = (positions % segment_length).astype(np.float64)
    prediction = np.zeros(positions.size, dtype=np.float64)
    for k in range(degree, -1, -1):
        prediction = prediction * pos + form.constituent(f"coeff_{k}").values[seg]
    offsets = _residuals.decode_residuals_at(
        form.constituent("offsets"),
        form.parameters,
        positions,
    )
    return np.rint(prediction).astype(np.int64) + offsets


_GATHERS: Dict[str, Callable] = {
    "ID": _gather_id,
    "RLE": _gather_runs,
    "RPE": _gather_runs,
    "DICT": _gather_dict,
    "NS": _gather_ns,
    "FOR": _gather_for,
    "PFOR": _gather_pfor,
    "POLY": _gather_poly,
    "LINEAR": _gather_poly,
}


def gather(
    scheme: CompressionScheme,
    form: CompressedForm,
    positions: np.ndarray,
) -> Optional[np.ndarray]:
    """Materialise the form's values at *positions* without decompressing.

    *positions* are row indices local to the form, in ``[0,
    original_length)``; order is preserved and duplicates are allowed.  The
    result has the form's original dtype and is element-for-element equal to
    ``scheme.decompress(form).values[positions]``.  Returns ``None`` when
    the form does not advertise :data:`~repro.schemes.base.KERNEL_GATHER`.
    """
    if not supports(scheme, form, KERNEL_GATHER):
        return None
    __, resolved = translate.resolve_form(scheme, form)
    kernel = _GATHERS.get(resolved.scheme)
    if kernel is None:
        return None
    positions = np.asarray(positions, dtype=np.int64)
    values = kernel(resolved, positions)
    dtype = np.dtype(resolved.original_dtype)
    if values.dtype != dtype:
        values = values.astype(dtype)
    return values


# --------------------------------------------------------------------------- #
# Whole-form aggregates
# --------------------------------------------------------------------------- #


def _sum_accumulator(dtype: np.dtype):
    return np.uint64 if np.issubdtype(dtype, np.unsignedinteger) else np.int64


def _reduce_weighted(values: np.ndarray, weights: np.ndarray, how: str):
    """sum/min/max of ``repeat(values, weights)`` without expanding it."""
    if how == "sum":
        accumulator = _sum_accumulator(values.dtype)
        weighted = values.astype(accumulator) * weights.astype(accumulator)
        return weighted.sum(dtype=accumulator)
    present = values[weights > 0]
    return present.min() if how == "min" else present.max()


def _aggregate_runs(form: CompressedForm, how: str):
    values = form.constituent("values").values
    return _reduce_weighted(values, _run_lengths_of_form(form), how)


def _aggregate_dict(form: CompressedForm, how: str):
    dictionary = form.constituent("dictionary").values
    if how == "min":
        return dictionary[0]  # every dictionary entry is present (np.unique)
    if how == "max":
        return dictionary[-1]
    if form.parameter("codes_layout") == "packed":
        codes = _bitpack.unpack_bits(
            form.constituent("codes"),
            width=int(form.parameter("code_width")),
            count=int(form.parameter("count")),
            dtype=np.int64,
        ).values
    else:
        codes = form.constituent("codes").values
    counts = np.bincount(codes, minlength=dictionary.size)
    return _reduce_weighted(dictionary, counts, "sum")


def _aggregate_id(form: CompressedForm, how: str):
    data = form.constituent("values").values
    if how == "sum":
        return data.sum(dtype=_sum_accumulator(data.dtype))
    return data.min() if how == "min" else data.max()


_AGGREGATORS: Dict[str, Callable] = {
    "RLE": _aggregate_runs,
    "RPE": _aggregate_runs,
    "DICT": _aggregate_dict,
    "ID": _aggregate_id,
}


def aggregate_whole(
    scheme: CompressionScheme,
    form: CompressedForm,
    how: str,
) -> Optional[np.generic]:
    """sum/min/max over *every* row of the form, without decompressing.

    Returns a NumPy scalar — sums in the int64/uint64 accumulator family
    matching :func:`repro.engine.operators.aggregate`, min/max in the value
    dtype — or ``None`` when the form does not advertise
    :data:`~repro.schemes.base.KERNEL_AGGREGATE`.  ``count`` needs no
    kernel: it is the form's ``original_length``.
    """
    if how not in ("sum", "min", "max"):
        return None
    if not supports(scheme, form, KERNEL_AGGREGATE):
        return None
    __, resolved = translate.resolve_form(scheme, form)
    kernel = _AGGREGATORS.get(resolved.scheme)
    if kernel is None or resolved.original_length == 0:
        return None
    result = kernel(resolved, how)
    dtype = np.dtype(resolved.original_dtype)
    if how in ("min", "max") and result.dtype != dtype:
        result = result.astype(dtype)
    return result


# --------------------------------------------------------------------------- #
# Group codes
# --------------------------------------------------------------------------- #


def group_codes(
    scheme: CompressionScheme,
    form: CompressedForm,
    positions: Optional[np.ndarray],
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Pre-factorised group codes of the form at *positions*.

    Returns ``(codes, group_values)`` where *group_values* is sorted and
    ``group_values[codes]`` equals the form's values at *positions* (some
    groups may be unrepresented in the selection; callers drop empty groups
    when matching ``np.unique`` semantics).  ``positions=None`` means every
    row.  Returns ``None`` when the form does not advertise
    :data:`~repro.schemes.base.KERNEL_GROUP_CODES`.
    """
    if not supports(scheme, form, KERNEL_GROUP_CODES):
        return None
    __, resolved = translate.resolve_form(scheme, form)
    if resolved.scheme != "DICT":
        return None
    dictionary = resolved.constituent("dictionary").values
    packed = resolved.parameter("codes_layout") == "packed"
    if positions is None:
        if packed:
            codes = _bitpack.unpack_bits(
                resolved.constituent("codes"),
                width=int(resolved.parameter("code_width")),
                count=int(resolved.parameter("count")),
                dtype=np.int64,
            ).values
        else:
            codes = resolved.constituent("codes").values.astype(np.int64)
    elif packed:
        codes = _bitpack.packed_gather(
            resolved.constituent("codes"),
            width=int(resolved.parameter("code_width")),
            count=int(resolved.parameter("count")),
            positions=positions,
        ).astype(np.int64)
    else:
        codes = resolved.constituent("codes").values[positions].astype(np.int64)
    return codes, dictionary

"""A small fluent query API over stored tables.

This is the user-facing entry point of the execution substrate::

    result = (Query(table)
              .filter(Between("ship_date", date_lo, date_hi))
              .aggregate("quantity", "sum")
              .run())

It is intentionally tiny — single-table filters, projections, scalar and
grouped aggregates, plus an explicit two-table equi-join helper — but every
step goes through the compressed-aware operators of
:mod:`repro.engine.operators`, so the pushdown and late-materialisation
behaviour the paper argues for is what actually executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..columnar.column import Column
from ..errors import QueryError
from ..storage.table import Table
from .operators import (
    ScanStats,
    SelectionVector,
    aggregate,
    filter_table,
    group_by_aggregate,
    hash_join,
    project,
)
from .predicates import Predicate


@dataclass
class QueryResult:
    """The outcome of :meth:`Query.run`.

    Attributes
    ----------
    columns:
        Materialised result columns (projections, group keys, aggregates).
    scalars:
        Scalar aggregate results keyed by ``"<agg>(<column>)"``.
    row_count:
        Number of qualifying rows.
    scan_stats:
        What the scan touched (chunks skipped, pushdown counters, ...).
    """

    columns: Dict[str, Column] = field(default_factory=dict)
    scalars: Dict[str, Union[int, float]] = field(default_factory=dict)
    row_count: int = 0
    scan_stats: Optional[ScanStats] = None

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(
                f"result has no column {name!r}; present: {sorted(self.columns)}"
            ) from None


class Query:
    """A fluent, single-table query builder."""

    def __init__(self, table: Table):
        self._table = table
        self._predicates: List[Predicate] = []
        self._projection: Optional[List[str]] = None
        self._aggregates: List[Tuple[str, str]] = []
        self._group_by: Optional[str] = None
        self._use_pushdown = True
        self._use_zone_maps = True

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def filter(self, predicate: Predicate) -> "Query":
        """Add a predicate (multiple filters are AND-ed across columns)."""
        if predicate.column_name not in self._table:
            raise QueryError(f"unknown filter column {predicate.column_name!r}")
        self._predicates.append(predicate)
        return self

    def project(self, *columns: str) -> "Query":
        """Select which columns to materialise for qualifying rows."""
        for name in columns:
            if name not in self._table:
                raise QueryError(f"unknown projection column {name!r}")
        self._projection = list(columns)
        return self

    def aggregate(self, column: str, how: str) -> "Query":
        """Add a scalar (or, with :meth:`group_by`, grouped) aggregate.

        ``aggregate("*", "count")`` counts qualifying rows without touching
        any column's values.
        """
        if column == "*":
            if how != "count":
                raise QueryError('only count may aggregate over "*"')
        elif column not in self._table:
            raise QueryError(f"unknown aggregate column {column!r}")
        self._aggregates.append((column, how))
        return self

    def group_by(self, column: str) -> "Query":
        """Group the aggregates by *column*."""
        if column not in self._table:
            raise QueryError(f"unknown group-by column {column!r}")
        self._group_by = column
        return self

    def without_pushdown(self) -> "Query":
        """Disable compressed-form pushdown (baseline mode for benchmarks)."""
        self._use_pushdown = False
        return self

    def without_zone_maps(self) -> "Query":
        """Disable chunk skipping from statistics (baseline mode for benchmarks)."""
        self._use_zone_maps = False
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _selection(self) -> Tuple[SelectionVector, Optional[ScanStats]]:
        if not self._predicates:
            return SelectionVector.all_rows(self._table.row_count), None
        combined: Optional[SelectionVector] = None
        stats: Optional[ScanStats] = None
        for predicate in self._predicates:
            selection, scan_stats = filter_table(
                self._table, predicate,
                use_pushdown=self._use_pushdown,
                use_zone_maps=self._use_zone_maps,
            )
            stats = scan_stats if stats is None else stats
            if combined is None:
                combined = selection
            else:
                import numpy as np

                merged = np.intersect1d(combined.positions.values,
                                        selection.positions.values,
                                        assume_unique=True)
                combined = SelectionVector(Column(merged))
        assert combined is not None
        return combined, stats

    def run(self) -> QueryResult:
        """Execute the query and return a :class:`QueryResult`."""
        selection, stats = self._selection()
        result = QueryResult(row_count=len(selection), scan_stats=stats)

        if self._group_by is not None:
            if not self._aggregates:
                raise QueryError("group_by() requires at least one aggregate()")
            keys = self._table.column(self._group_by).materialize_rows(selection.positions)
            for column_name, how in self._aggregates:
                if column_name == "*":
                    column_name, how = self._group_by, "count"
                values = self._table.column(column_name).materialize_rows(selection.positions)
                grouped = group_by_aggregate(keys, values, how=how)
                result.columns[self._group_by] = grouped["key"].rename(self._group_by)
                result.columns[f"{how}({column_name})"] = grouped["aggregate"]
            return result

        for column_name, how in self._aggregates:
            if how == "count" and column_name == "*":
                result.scalars["count(*)"] = len(selection)
                continue
            values = self._table.column(column_name).materialize_rows(selection.positions)
            result.scalars[f"{how}({column_name})"] = aggregate(values, how)

        if self._projection is not None:
            result.columns.update(project(self._table, selection, self._projection))
        elif not self._aggregates:
            result.columns.update(project(self._table, selection, self._table.column_names))
        return result


def join_tables(left: Table, right: Table, left_key: str, right_key: str,
                project_left: Optional[List[str]] = None,
                project_right: Optional[List[str]] = None) -> Dict[str, Column]:
    """Inner equi-join two tables on a key column each, materialising projections.

    Key columns are materialised (decompressed) for the join itself; the
    projected payload columns are materialised only at the matching
    positions — the late-materialisation discipline again.
    """
    left_keys = left.column(left_key).materialize()
    right_keys = right.column(right_key).materialize()
    left_positions, right_positions = hash_join(left_keys, right_keys)

    output: Dict[str, Column] = {}
    for name in project_left or [left_key]:
        output[f"left.{name}"] = left.column(name).materialize_rows(left_positions)
    for name in project_right or [right_key]:
        output[f"right.{name}"] = right.column(name).materialize_rows(right_positions)
    return output

"""The eager fluent query API — now a shim over :mod:`repro.api`.

This is the seed-era entry point of the execution substrate::

    result = (Query(table)
              .filter(Between("ship_date", date_lo, date_hi))
              .aggregate("quantity", "sum")
              .run())

Since the lazy expression DSL landed, :class:`Query` is a thin compatibility
shim: :meth:`Query.run` builds a :class:`repro.api.logical` plan (with the
original predicate objects lifted via
:class:`~repro.api.expr.WrappedPredicate` and optimizer reordering disabled)
and collects it through the same lowering pass as
:class:`~repro.api.Dataset`.  Results — columns, scalars, ``row_count`` and
``ScanStats`` counters — are bit-identical to the pre-DSL engine; the
regression suite in ``tests/engine/test_query_shim.py`` pins that.

New code should prefer the lazy API::

    from repro.api import col, dataset
    result = (dataset(table)
              .filter(col("ship_date").between(date_lo, date_hi))
              .agg(col("quantity").sum())
              .collect())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..columnar.column import Column
from ..errors import QueryError
from ..storage.column_store import DEFAULT_CHUNK_SIZE
from ..storage.table import Table
from .operators import (
    ScanStats,
    aggregate,
    hash_join,
)
from .predicates import Predicate


@dataclass
class QueryResult:
    """The outcome of :meth:`Query.run` / :meth:`repro.api.Dataset.collect`.

    Attributes
    ----------
    columns:
        Materialised result columns (projections, group keys, aggregates).
    scalars:
        Scalar aggregate results keyed by ``"<agg>(<column>)"``.
    row_count:
        Number of qualifying rows (for aggregates: rows aggregated).
    scan_stats:
        What the scan touched (chunks skipped, pushdown counters, ...).
    """

    columns: Dict[str, Column] = field(default_factory=dict)
    scalars: Dict[str, Union[int, float]] = field(default_factory=dict)
    row_count: int = 0
    scan_stats: Optional[ScanStats] = None

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(
                f"result has no column {name!r}; present: {sorted(self.columns)}"
            ) from None

    def to_table(self, schemes: Any = "auto",
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> Table:
        """Wrap the result columns as an in-memory :class:`Table`.

        The default ``schemes="auto"`` re-compresses every column through
        the scheme registry's advisor, so a collected result round-trips
        into first-class compressed storage and can be queried again
        (``Dataset.from_result`` builds on this).

        Zero-row results cannot round-trip — the storage layer requires at
        least one row per stored column — so wrapping an empty result
        raises :class:`QueryError`; guard with ``result.row_count`` when a
        query may legitimately match nothing.
        """
        if not self.columns:
            raise QueryError(
                "result has no columns to wrap as a table (scalar aggregate "
                "results stay scalars)"
            )
        return _wrap_columns_as_table(self.columns, "result", schemes,
                                      chunk_size)


def _wrap_columns_as_table(columns: Dict[str, Column], what: str,
                           schemes: Any, chunk_size: int) -> Table:
    """Shared result-as-table path: reject empty inputs, then round-trip the
    columns through :meth:`Table.from_columns` (``"auto"`` = advisor)."""
    first = next(iter(columns.values()))
    if len(first) == 0:
        raise QueryError(
            f"cannot wrap an empty {what} as a table: a stored column needs "
            "at least one row"
        )
    return Table.from_columns(columns, schemes=schemes, chunk_size=chunk_size)


class Query:
    """A fluent, single-table query builder (compatibility shim).

    Building validates eagerly against the table, exactly like the seed
    engine; :meth:`run` lowers through the lazy API's optimizer (with
    conjunct reordering disabled to preserve scan-order semantics) onto the
    chunk-parallel scan scheduler.
    """

    def __init__(self, table: Table):
        self._table = table
        self._predicates: List[Predicate] = []
        self._projection: Optional[List[str]] = None
        self._aggregates: List[Tuple[str, str]] = []
        self._group_by: Optional[str] = None
        self._use_pushdown = True
        self._use_zone_maps = True
        self._parallelism = 1

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def filter(self, predicate: Predicate) -> "Query":
        """Add a predicate (multiple filters are AND-ed across columns)."""
        if predicate.column_name not in self._table:
            raise QueryError(f"unknown filter column {predicate.column_name!r}")
        self._predicates.append(predicate)
        return self

    def project(self, *columns: str) -> "Query":
        """Select which columns to materialise for qualifying rows."""
        for name in columns:
            if name not in self._table:
                raise QueryError(f"unknown projection column {name!r}")
        self._projection = list(columns)
        return self

    def aggregate(self, column: str, how: str) -> "Query":
        """Add a scalar (or, with :meth:`group_by`, grouped) aggregate.

        ``aggregate("*", "count")`` counts qualifying rows without touching
        any column's values.
        """
        if column == "*":
            if how != "count":
                raise QueryError('only count may aggregate over "*"')
        elif column not in self._table:
            raise QueryError(f"unknown aggregate column {column!r}")
        self._aggregates.append((column, how))
        return self

    def group_by(self, column: str) -> "Query":
        """Group the aggregates by *column*."""
        if column not in self._table:
            raise QueryError(f"unknown group-by column {column!r}")
        self._group_by = column
        return self

    def without_pushdown(self) -> "Query":
        """Disable compressed-form pushdown (baseline mode for benchmarks)."""
        self._use_pushdown = False
        return self

    def without_zone_maps(self) -> "Query":
        """Disable chunk skipping from statistics (baseline mode for benchmarks)."""
        self._use_zone_maps = False
        return self

    def with_parallelism(self, workers: int) -> "Query":
        """Fan the scan's chunk ranges out over *workers* threads.

        The NumPy kernels doing the per-chunk work release the GIL, and the
        per-chunk results are merged in chunk order, so a parallel run
        returns bit-identical results to the serial one.
        """
        if workers < 1:
            raise QueryError(f"parallelism must be >= 1, got {workers}")
        self._parallelism = int(workers)
        return self

    # ------------------------------------------------------------------ #
    # Execution (via the lazy API)
    # ------------------------------------------------------------------ #

    def _needed_columns(self) -> List[str]:
        """Columns the post-selection stages will read, without duplicates."""
        needed: List[str] = []
        if self._group_by is not None:
            needed.append(self._group_by)
        for column_name, __ in self._aggregates:
            if column_name != "*":
                needed.append(column_name)
        if self._projection is not None:
            needed.extend(self._projection)
        elif not self._aggregates:
            needed.extend(self._table.column_names)
        return list(dict.fromkeys(needed))

    def _dataset(self):
        """The configured lazy dataset with the filters lifted verbatim."""
        from ..api.dataset import Dataset
        from ..api.expr import WrappedPredicate

        ds = Dataset.from_table(self._table)._replace_options(
            parallelism=self._parallelism,
            use_pushdown=self._use_pushdown,
            use_zone_maps=self._use_zone_maps,
            preserve_filter_order=True,
            # The shim's contract is ScanStats-exact equality with the seed
            # engine, whose aggregates materialise through the scan;
            # rerouting them through the compressed kernels would (validly)
            # change the counters.  Use repro.api for compressed aggregation.
            materialize_aggregates=True,
        )
        for predicate in self._predicates:
            ds = ds.filter(WrappedPredicate(predicate))
        return ds

    def _shim_aggregates(self) -> List:
        """The (deduplicated) aggregate expressions, with the seed's
        ``("*", "count")`` -> ``count(<group key>)`` rewrite under group-by."""
        from ..api.expr import AggExpr, ColumnRef

        aggs: List = []
        seen = set()
        for column_name, how in self._aggregates:
            if column_name == "*":
                if self._group_by is not None:
                    column_name, how = self._group_by, "count"
                else:
                    key = ("*", "count")
                    if key not in seen:  # the eager API silently overwrote
                        seen.add(key)
                        aggs.append(AggExpr("count", None))
                    continue
            key = (column_name, how)
            if key in seen:
                continue
            seen.add(key)
            aggs.append(AggExpr(how, ColumnRef(column_name)))
        return aggs

    def run(self) -> QueryResult:
        """Execute the query and return a :class:`QueryResult`.

        Selection, projection and the aggregates' input columns are produced
        by **one** pass of the scan scheduler, reached through the lazy
        API's logical plan and lowering.
        """
        from ..api.expr import ColumnRef

        ds = self._dataset()

        if self._group_by is not None:
            if not self._aggregates:
                raise QueryError("group_by() requires at least one aggregate()")
            return ds.group_by(ColumnRef(self._group_by)) \
                .agg(*self._shim_aggregates()).collect()

        if self._aggregates and self._projection is None:
            return ds.agg(*self._shim_aggregates()).collect()

        needed = self._needed_columns()
        if not needed:
            # Degenerate seed behaviours with nothing to materialise:
            # ``project()`` with no columns, possibly plus ``count(*)``.
            from .scan import scan_table
            scan = scan_table(self._table, self._predicates,
                              use_pushdown=self._use_pushdown,
                              use_zone_maps=self._use_zone_maps,
                              parallelism=self._parallelism, materialize=[])
            result = QueryResult(row_count=len(scan.selection),
                                 scan_stats=scan.stats)
            for column_name, how in self._aggregates:
                if how == "count" and column_name == "*":
                    result.scalars["count(*)"] = result.row_count
            return result

        frame = ds.select(*needed).collect()
        if not self._aggregates:
            return frame

        # Scalar aggregates *and* a projection: the seed computed both from
        # the one scan pass; assemble the same way from the frame.
        result = QueryResult(row_count=frame.row_count,
                             scan_stats=frame.scan_stats)
        for column_name, how in self._aggregates:
            if how == "count" and column_name == "*":
                result.scalars["count(*)"] = frame.row_count
                continue
            result.scalars[f"{how}({column_name})"] = aggregate(
                frame.columns[column_name], how)
        result.columns.update({name: frame.columns[name]
                               for name in self._projection})
        return result


class JoinResult:
    """The queryable output of :func:`join_tables`.

    Wraps the joined columns and turns them back into first-class storage:
    :meth:`as_table` re-compresses every column through the scheme
    registry's advisor, so the join output can be filtered, aggregated or
    joined again like any stored table.  The legacy dict-style access
    (``result["left.quantity"]``, :meth:`to_dict`) still works but is
    deprecated.
    """

    def __init__(self, columns: Dict[str, Column]):
        self._columns = dict(columns)

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def row_count(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError(
                f"join result has no column {name!r}; present: "
                f"{sorted(self._columns)}"
            ) from None

    def as_table(self, schemes: Any = "auto",
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> Table:
        """The joined columns as an in-memory :class:`Table` (compressed
        through the default scheme registry)."""
        return _wrap_columns_as_table(self._columns, "join result", schemes,
                                      chunk_size)

    # -- deprecated dict-compatible surface (join_tables used to return a
    #    plain Dict[str, Column]; the common read idioms — indexing,
    #    iteration, len, membership, keys/values/items/get — warn but keep
    #    working; mutation idioms are intentionally gone) --

    def _deprecated(self, idiom: str) -> None:
        warnings.warn(
            f"{idiom} on join_tables() output is deprecated; use "
            ".column(name), .column_names or .as_table() instead",
            DeprecationWarning, stacklevel=3,
        )

    def __getitem__(self, name: str) -> Column:
        self._deprecated("dict-style access")
        return self.column(name)

    def __iter__(self):
        self._deprecated("iteration")
        return iter(self._columns)

    def __len__(self) -> int:
        self._deprecated("len()")
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        self._deprecated("membership testing")
        return name in self._columns

    def keys(self):
        self._deprecated("keys()")
        return list(self._columns)

    def values(self):
        self._deprecated("values()")
        return list(self._columns.values())

    def items(self):
        self._deprecated("items()")
        return list(self._columns.items())

    def get(self, name: str, default: Optional[Column] = None):
        self._deprecated("get()")
        return self._columns.get(name, default)

    def to_dict(self) -> Dict[str, Column]:
        """Deprecated accessor returning the raw column dict."""
        self._deprecated("to_dict()")
        return dict(self._columns)

    def __repr__(self) -> str:
        return f"JoinResult(columns={self.column_names}, rows={self.row_count})"


def join_tables(left: Table, right: Table, left_key: str, right_key: str,
                project_left: Optional[List[str]] = None,
                project_right: Optional[List[str]] = None) -> JoinResult:
    """Inner equi-join two tables on a key column each, materialising projections.

    Key columns are materialised (decompressed) for the join itself; the
    projected payload columns are materialised only at the matching
    positions — the late-materialisation discipline again.  Returns a
    :class:`JoinResult`, whose :meth:`~JoinResult.as_table` makes the output
    queryable again.  (For fully lazy, optimizer-visible joins use
    :meth:`repro.api.Dataset.join`.)
    """
    left_keys = left.column(left_key).materialize()
    right_keys = right.column(right_key).materialize()
    left_positions, right_positions = hash_join(left_keys, right_keys)

    output: Dict[str, Column] = {}
    for name in project_left or [left_key]:
        output[f"left.{name}"] = left.column(name).materialize_rows(left_positions)
    for name in project_right or [right_key]:
        output[f"right.{name}"] = right.column(name).materialize_rows(right_positions)
    return JoinResult(output)

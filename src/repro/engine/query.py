"""A small fluent query API over stored tables.

This is the user-facing entry point of the execution substrate::

    result = (Query(table)
              .filter(Between("ship_date", date_lo, date_hi))
              .aggregate("quantity", "sum")
              .run())

It is intentionally tiny — single-table filters, projections, scalar and
grouped aggregates, plus an explicit two-table equi-join helper — but every
step goes through the compressed-aware operators of
:mod:`repro.engine.operators`, so the pushdown and late-materialisation
behaviour the paper argues for is what actually executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..columnar.column import Column
from ..errors import QueryError
from ..storage.table import Table
from .operators import (
    ScanStats,
    aggregate,
    group_by_aggregate,
    hash_join,
)
from .predicates import Predicate
from .scan import scan_table


@dataclass
class QueryResult:
    """The outcome of :meth:`Query.run`.

    Attributes
    ----------
    columns:
        Materialised result columns (projections, group keys, aggregates).
    scalars:
        Scalar aggregate results keyed by ``"<agg>(<column>)"``.
    row_count:
        Number of qualifying rows.
    scan_stats:
        What the scan touched (chunks skipped, pushdown counters, ...).
    """

    columns: Dict[str, Column] = field(default_factory=dict)
    scalars: Dict[str, Union[int, float]] = field(default_factory=dict)
    row_count: int = 0
    scan_stats: Optional[ScanStats] = None

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(
                f"result has no column {name!r}; present: {sorted(self.columns)}"
            ) from None


class Query:
    """A fluent, single-table query builder."""

    def __init__(self, table: Table):
        self._table = table
        self._predicates: List[Predicate] = []
        self._projection: Optional[List[str]] = None
        self._aggregates: List[Tuple[str, str]] = []
        self._group_by: Optional[str] = None
        self._use_pushdown = True
        self._use_zone_maps = True
        self._parallelism = 1

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def filter(self, predicate: Predicate) -> "Query":
        """Add a predicate (multiple filters are AND-ed across columns)."""
        if predicate.column_name not in self._table:
            raise QueryError(f"unknown filter column {predicate.column_name!r}")
        self._predicates.append(predicate)
        return self

    def project(self, *columns: str) -> "Query":
        """Select which columns to materialise for qualifying rows."""
        for name in columns:
            if name not in self._table:
                raise QueryError(f"unknown projection column {name!r}")
        self._projection = list(columns)
        return self

    def aggregate(self, column: str, how: str) -> "Query":
        """Add a scalar (or, with :meth:`group_by`, grouped) aggregate.

        ``aggregate("*", "count")`` counts qualifying rows without touching
        any column's values.
        """
        if column == "*":
            if how != "count":
                raise QueryError('only count may aggregate over "*"')
        elif column not in self._table:
            raise QueryError(f"unknown aggregate column {column!r}")
        self._aggregates.append((column, how))
        return self

    def group_by(self, column: str) -> "Query":
        """Group the aggregates by *column*."""
        if column not in self._table:
            raise QueryError(f"unknown group-by column {column!r}")
        self._group_by = column
        return self

    def without_pushdown(self) -> "Query":
        """Disable compressed-form pushdown (baseline mode for benchmarks)."""
        self._use_pushdown = False
        return self

    def without_zone_maps(self) -> "Query":
        """Disable chunk skipping from statistics (baseline mode for benchmarks)."""
        self._use_zone_maps = False
        return self

    def with_parallelism(self, workers: int) -> "Query":
        """Fan the scan's chunk ranges out over *workers* threads.

        The NumPy kernels doing the per-chunk work release the GIL, and the
        per-chunk results are merged in chunk order, so a parallel run
        returns bit-identical results to the serial one.
        """
        if workers < 1:
            raise QueryError(f"parallelism must be >= 1, got {workers}")
        self._parallelism = int(workers)
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _needed_columns(self) -> List[str]:
        """Columns the post-selection stages will read, without duplicates."""
        needed: List[str] = []
        if self._group_by is not None:
            needed.append(self._group_by)
        for column_name, __ in self._aggregates:
            if column_name != "*":
                needed.append(column_name)
        if self._projection is not None:
            needed.extend(self._projection)
        elif not self._aggregates:
            needed.extend(self._table.column_names)
        return list(dict.fromkeys(needed))

    def run(self) -> QueryResult:
        """Execute the query and return a :class:`QueryResult`.

        Selection, projection and the aggregates' input columns are produced
        by **one** pass of the scan scheduler: the columns the later stages
        need are gathered per chunk inside the scan itself (reusing any
        values the predicates already decompressed) rather than in a second
        full pass over the table.
        """
        scan = scan_table(self._table, self._predicates,
                          use_pushdown=self._use_pushdown,
                          use_zone_maps=self._use_zone_maps,
                          parallelism=self._parallelism,
                          materialize=self._needed_columns())
        selection = scan.selection
        result = QueryResult(row_count=len(selection), scan_stats=scan.stats)

        if self._group_by is not None:
            if not self._aggregates:
                raise QueryError("group_by() requires at least one aggregate()")
            keys = scan.columns[self._group_by]
            for column_name, how in self._aggregates:
                if column_name == "*":
                    column_name, how = self._group_by, "count"
                grouped = group_by_aggregate(keys, scan.columns[column_name], how=how)
                result.columns[self._group_by] = grouped["key"].rename(self._group_by)
                result.columns[f"{how}({column_name})"] = grouped["aggregate"]
            return result

        for column_name, how in self._aggregates:
            if how == "count" and column_name == "*":
                result.scalars["count(*)"] = len(selection)
                continue
            result.scalars[f"{how}({column_name})"] = aggregate(
                scan.columns[column_name], how)

        if self._projection is not None:
            result.columns.update({name: scan.columns[name]
                                   for name in self._projection})
        elif not self._aggregates:
            result.columns.update({name: scan.columns[name]
                                   for name in self._table.column_names})
        return result


def join_tables(left: Table, right: Table, left_key: str, right_key: str,
                project_left: Optional[List[str]] = None,
                project_right: Optional[List[str]] = None) -> Dict[str, Column]:
    """Inner equi-join two tables on a key column each, materialising projections.

    Key columns are materialised (decompressed) for the join itself; the
    projected payload columns are materialised only at the matching
    positions — the late-materialisation discipline again.
    """
    left_keys = left.column(left_key).materialize()
    right_keys = right.column(right_key).materialize()
    left_positions, right_positions = hash_join(left_keys, right_keys)

    output: Dict[str, Column] = {}
    for name in project_left or [left_key]:
        output[f"left.{name}"] = left.column(name).materialize_rows(left_positions)
    for name in project_right or [right_key]:
        output[f"right.{name}"] = right.column(name).materialize_rows(right_positions)
    return output

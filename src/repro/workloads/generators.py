"""Synthetic column generators.

The paper names no datasets; its motivating workload is the shipped-orders
table whose date column "accrues over time, so the dates form a
monotone-increasing sequence with long runs for the orders shipped every
day".  These generators produce that column and the other data shapes the
schemes and experiments need — each generator targets a specific
compressibility structure, and each documents which experiments use it.

All generators are deterministic given a ``seed`` and return
:class:`~repro.columnar.column.Column` objects of integer dtype.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..columnar.column import Column
from ..errors import ReproError

#: Days since 1992-01-01 for a plausible "order date" epoch, mirroring the
#: date ranges of the classic decision-support benchmarks.
DATE_EPOCH_OFFSET = 8035  # 1992-01-01 expressed as days since 1970-01-01


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def shipping_dates(num_rows: int, orders_per_day_mean: float = 2000.0,
                   start_day: int = DATE_EPOCH_OFFSET, seed: int = 0) -> Column:
    """The paper's §I example: monotone dates with one long run per shipping day.

    Orders accrue over time; all orders shipped on the same day carry the
    same date, so the column is a non-decreasing sequence of day numbers
    with run lengths fluctuating around *orders_per_day_mean*.

    Used by experiments E1, E2, E4, E10.
    """
    if num_rows <= 0:
        raise ReproError("num_rows must be positive")
    rng = _rng(seed)
    run_lengths = []
    total = 0
    while total < num_rows:
        length = max(1, int(rng.poisson(orders_per_day_mean)))
        run_lengths.append(length)
        total += length
    run_lengths[-1] -= total - num_rows
    if run_lengths[-1] == 0:
        run_lengths.pop()
    days = start_day + np.arange(len(run_lengths), dtype=np.int64)
    return Column(np.repeat(days, run_lengths), name="ship_date")


def runs_column(num_rows: int, average_run_length: float = 50.0,
                num_distinct_values: int = 1000, sorted_values: bool = False,
                seed: int = 0) -> Column:
    """A generic run-structured column with a controllable average run length.

    Used by experiments E2 and E4 (run-length sweeps).
    """
    if num_rows <= 0:
        raise ReproError("num_rows must be positive")
    rng = _rng(seed)
    if average_run_length < 1.0:
        raise ReproError("average_run_length must be at least 1")
    pieces = []
    total = 0
    while total < num_rows:
        batch = np.maximum(
            1, rng.geometric(1.0 / average_run_length,
                             max(16, int(num_rows / average_run_length))))
        pieces.append(batch)
        total += int(batch.sum())
    lengths = np.concatenate(pieces)
    cumulative = np.cumsum(lengths)
    cut = int(np.searchsorted(cumulative, num_rows)) + 1
    lengths = lengths[:cut].astype(np.int64)
    excess = int(cumulative[cut - 1] - num_rows)
    if excess > 0:
        lengths[-1] -= excess
    values = rng.integers(0, num_distinct_values, len(lengths), dtype=np.int64)
    if sorted_values:
        values = np.sort(values)
    return Column(np.repeat(values, lengths), name="runs")


def monotone_identifiers(num_rows: int, start: int = 1_000_000, max_gap: int = 4,
                         seed: int = 0) -> Column:
    """Monotone-increasing identifiers with small random gaps (order keys, LSNs).

    Deltas are tiny, so DELTA∘NS and piecewise-linear models shine here.
    Used by experiments E7 and E8.
    """
    rng = _rng(seed)
    gaps = rng.integers(1, max_gap + 1, num_rows, dtype=np.int64)
    return Column(start + np.cumsum(gaps), name="order_id")


def zipfian_categories(num_rows: int, num_categories: int = 64, exponent: float = 1.3,
                       seed: int = 0) -> Column:
    """A categorical column with a Zipf-skewed value distribution (DICT territory).

    Used by experiment E1's baseline comparison and the advisor example.
    """
    rng = _rng(seed)
    ranks = np.arange(1, num_categories + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    codes = rng.choice(num_categories, size=num_rows, p=weights)
    # Category labels are deliberately non-contiguous so DICT's mapping matters.
    labels = np.sort(rng.choice(10_000_000, size=num_categories, replace=False))
    return Column(labels[codes].astype(np.int64), name="category")


def smooth_measure(num_rows: int, base: int = 500_000, amplitude: int = 2_000,
                   noise: int = 32, seed: int = 0) -> Column:
    """A locally-smooth measure (slow sinusoidal drift plus small noise).

    Global variation is large (FOR's "potentially larger global variation")
    while any short segment spans only a narrow range — the FOR sweet spot.
    Used by experiments E3 and E5.
    """
    rng = _rng(seed)
    positions = np.arange(num_rows, dtype=np.float64)
    drift = amplitude * np.sin(positions / max(num_rows / 20.0, 1.0))
    values = base + drift + rng.integers(-noise, noise + 1, num_rows)
    return Column(np.rint(values).astype(np.int64), name="measure")


def step_with_outliers(num_rows: int, segment_length: int = 128, step: int = 1000,
                       noise: int = 8, outlier_fraction: float = 0.01,
                       outlier_magnitude: int = 1_000_000, seed: int = 0) -> Column:
    """Step-function-like data with a controllable fraction of large outliers.

    This is the L0-metric story of §II-B: the data is "really" a step
    function (plus small noise), except at a few divergent positions.
    Used by experiment E6 (patched vs plain FOR as the fraction sweeps).
    """
    rng = _rng(seed)
    num_segments = (num_rows + segment_length - 1) // segment_length
    levels = np.cumsum(rng.integers(0, step, num_segments, dtype=np.int64))
    seg = np.arange(num_rows, dtype=np.int64) // segment_length
    values = levels[seg] + rng.integers(0, noise + 1, num_rows)
    num_outliers = int(outlier_fraction * num_rows)
    if num_outliers:
        positions = rng.choice(num_rows, size=num_outliers, replace=False)
        values[positions] += rng.integers(outlier_magnitude // 2, outlier_magnitude,
                                          num_outliers)
    return Column(values.astype(np.int64), name="stepped")


def trending_sensor(num_rows: int, slope_per_segment: float = 3.0,
                    segment_length: int = 128, noise: int = 4, seed: int = 0) -> Column:
    """Piecewise-trending sensor readings (linear drift within segments).

    A step-function model leaves residuals as wide as ``slope × ℓ``; a
    piecewise-linear model leaves only the noise — experiment E8's contrast.
    """
    rng = _rng(seed)
    num_segments = (num_rows + segment_length - 1) // segment_length
    base_levels = np.cumsum(rng.integers(-200, 200, num_segments, dtype=np.int64)) + 100_000
    slopes = rng.normal(slope_per_segment, slope_per_segment / 2.0, num_segments)
    seg = np.arange(num_rows, dtype=np.int64) // segment_length
    pos = np.arange(num_rows, dtype=np.int64) % segment_length
    values = base_levels[seg] + np.rint(slopes[seg] * pos).astype(np.int64)
    values += rng.integers(-noise, noise + 1, num_rows)
    return Column(values.astype(np.int64), name="sensor")


def mixed_magnitude_residuals(num_rows: int, small_bits: int = 4, large_bits: int = 20,
                              large_fraction: float = 0.05, seed: int = 0) -> Column:
    """Residual-like data where most values are tiny and a few are large.

    The fixed-width residual encoding must pay *large_bits* for every value;
    a variable-width encoding pays it only for the large minority — the
    bit-cost metric contrast of experiment E7.
    """
    rng = _rng(seed)
    small = rng.integers(0, 1 << small_bits, num_rows, dtype=np.int64)
    large_mask = rng.random(num_rows) < large_fraction
    large = rng.integers(1 << (large_bits - 1), 1 << large_bits, num_rows, dtype=np.int64)
    values = np.where(large_mask, large, small)
    signs = rng.choice((-1, 1), num_rows)
    return Column(values * signs, name="residuals")


def uniform_random(num_rows: int, low: int = 0, high: int = 1 << 30, seed: int = 0) -> Column:
    """Incompressible uniform-random data (the control column every sweep needs)."""
    rng = _rng(seed)
    return Column(rng.integers(low, high, num_rows, dtype=np.int64), name="random")

"""A TPC-H-flavoured synthetic workload (the paper's shipped-orders table).

The paper's motivating example is "a table holds shipped order details, with
a date column"; the closest public stand-in is the TPC-H ``lineitem`` /
``orders`` pair.  This module generates a small, self-contained slice of
that shape — enough structure for every column to exercise a different
scheme (dates → RLE∘DELTA, keys → DELTA/NS, quantities → DICT/NS, prices →
FOR, flags → RLE/DICT) and for the join/aggregate examples and the E9/E10
query benchmarks to run against something recognisable.

No TPC-H data or generator code is used; distributions are simple synthetic
approximations chosen only to preserve the compressibility structure the
experiments depend on (see DESIGN.md's substitution note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..columnar.column import Column
from ..errors import ReproError
from .generators import DATE_EPOCH_OFFSET, _rng


@dataclass
class OrdersWorkload:
    """The generated workload: two tables of columns plus generation metadata."""

    orders: Dict[str, Column]
    lineitem: Dict[str, Column]
    num_orders: int
    num_lineitems: int
    date_range: range


def generate_orders_workload(num_orders: int = 50_000,
                             lines_per_order_max: int = 7,
                             num_days: int = 2_000,
                             num_customers: int = 5_000,
                             num_parts: int = 20_000,
                             seed: int = 0) -> OrdersWorkload:
    """Generate the shipped-orders workload.

    ``orders`` columns: ``order_id`` (monotone), ``customer_id`` (zipf-ish),
    ``order_date`` (non-decreasing, long runs), ``total_price``.

    ``lineitem`` columns: ``order_id`` (foreign key, runs), ``part_id``,
    ``quantity`` (1–50), ``price``, ``discount`` (few distinct values),
    ``ship_date`` (order date plus a small lag — still run-heavy and nearly
    sorted), ``status`` (tiny domain).
    """
    if num_orders <= 0:
        raise ReproError("num_orders must be positive")
    rng = _rng(seed)

    # --- orders ---------------------------------------------------------- #
    order_id = 1_000_000 + np.arange(num_orders, dtype=np.int64)
    # Orders arrive in date order; the number of orders per day is Poisson.
    per_day = np.maximum(1, rng.poisson(num_orders / num_days, num_days))
    while per_day.sum() < num_orders:
        per_day[rng.integers(0, num_days)] += 1
    day_of_order = np.repeat(np.arange(num_days, dtype=np.int64), per_day)[:num_orders]
    order_date = DATE_EPOCH_OFFSET + day_of_order
    customer_weights = (np.arange(1, num_customers + 1) ** -1.1)
    customer_weights /= customer_weights.sum()
    customer_id = rng.choice(num_customers, size=num_orders, p=customer_weights).astype(np.int64)
    total_price = rng.integers(1_000, 500_000, num_orders, dtype=np.int64)

    orders = {
        "order_id": Column(order_id, name="order_id"),
        "customer_id": Column(customer_id, name="customer_id"),
        "order_date": Column(order_date, name="order_date"),
        "total_price": Column(total_price, name="total_price"),
    }

    # --- lineitem --------------------------------------------------------- #
    lines_per_order = rng.integers(1, lines_per_order_max + 1, num_orders)
    num_lineitems = int(lines_per_order.sum())
    li_order_id = np.repeat(order_id, lines_per_order)
    li_order_day = np.repeat(day_of_order, lines_per_order)
    ship_lag = rng.integers(1, 30, num_lineitems)
    ship_date = DATE_EPOCH_OFFSET + li_order_day + ship_lag
    # Re-sort by ship date so the stored column has the paper's
    # monotone-with-runs shape (a clustered date column).
    order_by_ship = np.argsort(ship_date, kind="stable")

    part_id = rng.integers(0, num_parts, num_lineitems, dtype=np.int64)
    quantity = rng.integers(1, 51, num_lineitems, dtype=np.int64)
    price = rng.integers(100, 100_000, num_lineitems, dtype=np.int64)
    discount = rng.choice(np.array([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10], dtype=np.int64),
                          size=num_lineitems)
    status = rng.choice(np.array([0, 1, 2], dtype=np.int64), size=num_lineitems,
                        p=[0.5, 0.3, 0.2])

    lineitem = {
        "order_id": Column(li_order_id[order_by_ship], name="order_id"),
        "part_id": Column(part_id[order_by_ship], name="part_id"),
        "quantity": Column(quantity[order_by_ship], name="quantity"),
        "price": Column(price[order_by_ship], name="price"),
        "discount": Column(discount[order_by_ship], name="discount"),
        "ship_date": Column(ship_date[order_by_ship], name="ship_date"),
        "status": Column(status[order_by_ship], name="status"),
    }

    return OrdersWorkload(
        orders=orders,
        lineitem=lineitem,
        num_orders=num_orders,
        num_lineitems=num_lineitems,
        date_range=range(DATE_EPOCH_OFFSET, DATE_EPOCH_OFFSET + num_days + 30),
    )

"""Synthetic workload generators used by examples, tests and benchmarks."""

from .generators import (
    DATE_EPOCH_OFFSET,
    mixed_magnitude_residuals,
    monotone_identifiers,
    runs_column,
    shipping_dates,
    smooth_measure,
    step_with_outliers,
    trending_sensor,
    uniform_random,
    zipfian_categories,
)
from .tpch_like import OrdersWorkload, generate_orders_workload

__all__ = [
    "DATE_EPOCH_OFFSET",
    "shipping_dates",
    "runs_column",
    "monotone_identifiers",
    "zipfian_categories",
    "smooth_measure",
    "step_with_outliers",
    "trending_sensor",
    "mixed_magnitude_residuals",
    "uniform_random",
    "OrdersWorkload",
    "generate_orders_workload",
]

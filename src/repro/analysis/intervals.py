"""Abstract interpretation of plans: dtypes, value intervals, hazards.

This is the static half of the engine's correctness story: every wrong-result
bug shipped so far (float min/max truncated through an int64 accumulator,
integer sums rounded through float64 above 2**53, uint64 delta wrap,
mis-saturated segment bounds) was a dtype/value-range hazard visible in the
*plan*, before any data ran.  The interpreter walks a
:class:`~repro.columnar.plan.Plan` step by step carrying, per binding,

* the output **dtype** (shared with :meth:`Plan.output_dtype` via
  :mod:`repro.columnar.plan_types` — one source of truth), and
* a conservative **value interval** ``[lo, hi]`` (``None`` bound = unbounded),
  seeded from :class:`~repro.storage.statistics.ColumnStatistics` zone maps
  and scheme form parameters,

and emits a :class:`Finding` whenever a step may overflow or wrap its output
dtype, truncate a float through an integer accumulator, or push integer
magnitudes beyond float64's 2**53 contiguous-integer range.  Findings are
*may*-alarms: they fire only on bounds that are statically known, so an
unbounded interval never produces noise.

:func:`check_optimization` is translation validation for
:mod:`repro.columnar.compile.optimizer`: each rewrite pass must preserve the
inferred output dtype and stay consistent with the inferred interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..columnar import plan_types
from ..columnar.column import Column
from ..columnar.plan import LengthOf, ParamRef, Plan, PlanStep
from ..storage.statistics import compute_statistics

__all__ = [
    "Interval",
    "Fact",
    "Finding",
    "PlanAnalysis",
    "TOP",
    "entry_fact",
    "entry_facts_from_columns",
    "entry_facts_for_form",
    "analyze_plan",
    "check_optimization",
]

#: Largest integer float64 represents contiguously; beyond it, rounding.
FLOAT64_EXACT_INT = 2 ** 53


# --------------------------------------------------------------------------- #
# The abstract domain
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class Interval:
    """A closed value interval; a ``None`` bound means unbounded on that side."""

    lo: Optional[float] = None
    hi: Optional[float] = None

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def hull(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def intersects(self, other: "Interval") -> bool:
        if self.lo is not None and other.hi is not None and other.hi < self.lo:
            return False
        if self.hi is not None and other.lo is not None and other.lo > self.hi:
            return False
        return True

    def contains_value(self, value) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else self.lo
        hi = "+inf" if self.hi is None else self.hi
        return f"[{lo}, {hi}]"


TOP = Interval()


@dataclass(frozen=True)
class Fact:
    """What is statically known about one binding."""

    dtype: Optional[np.dtype] = None
    interval: Interval = TOP
    length: Optional[int] = None


@dataclass(frozen=True)
class Finding:
    """One hazard the interpreter (or another analysis) detected.

    *kind* is one of ``"overflow"``, ``"wrap"``, ``"narrowing-cast"``,
    ``"precision-loss"``, ``"translation"`` (plus the kinds other analysis
    modules define).
    """

    kind: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.where}: {self.message}"


@dataclass
class PlanAnalysis:
    """The result of abstractly interpreting one plan."""

    plan: Plan
    facts: Dict[str, Fact] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def output_fact(self) -> Fact:
        return self.facts.get(self.plan.output, Fact())


# --------------------------------------------------------------------------- #
# Entry facts
# --------------------------------------------------------------------------- #

def entry_fact(dtype=None, lo=None, hi=None, length=None) -> Fact:
    """Build an entry :class:`Fact` for one plan input."""
    return Fact(dtype=np.dtype(dtype) if dtype is not None else None,
                interval=Interval(lo, hi), length=length)


def entry_facts_from_columns(columns: Mapping[str, Column]) -> Dict[str, Fact]:
    """Entry facts from real constituent columns (zone-map min/max + dtype)."""
    facts: Dict[str, Fact] = {}
    for name, column in columns.items():
        if np.issubdtype(column.dtype, np.floating):
            if len(column):
                lo, hi = float(column.values.min()), float(column.values.max())
            else:
                lo = hi = None
            facts[name] = Fact(dtype=column.dtype, interval=Interval(lo, hi),
                               length=len(column))
        else:
            stats = compute_statistics(column)
            facts[name] = Fact(dtype=column.dtype,
                               interval=Interval(stats.minimum, stats.maximum),
                               length=stats.count)
    return facts


def entry_facts_for_form(scheme, form) -> Dict[str, Fact]:
    """Entry facts for *scheme*'s decompression plan over *form*.

    Uses the form's constituent columns (flattened through cascades exactly
    like :meth:`CompressionScheme.plan_inputs`) as the zone-map source.
    """
    return entry_facts_from_columns(scheme.plan_inputs(form))


# --------------------------------------------------------------------------- #
# Interval arithmetic helpers (exact, over optionally-unbounded endpoints)
# --------------------------------------------------------------------------- #

def _add(a, b):
    return None if a is None or b is None else a + b


def _sub(a, b):
    return None if a is None or b is None else a - b


def _mul_candidates(x: Interval, y: Interval) -> Interval:
    candidates = []
    for a in (x.lo, x.hi):
        for b in (y.lo, y.hi):
            if a is None or b is None:
                return TOP
            candidates.append(a * b)
    return Interval(min(candidates), max(candidates))


def _floordiv(x: Interval, y: Interval) -> Interval:
    # Only the easy, common case: a strictly positive divisor.
    if y.lo is None or y.lo <= 0:
        return TOP
    if x.lo is None or x.hi is None or y.hi is None:
        lo = None if x.lo is None else (x.lo // y.lo if x.lo < 0 else 0)
        return Interval(lo, None if x.hi is None else x.hi // y.lo)
    candidates = [a // b for a in (x.lo, x.hi) for b in (y.lo, y.hi)]
    return Interval(min(candidates), max(candidates))


def _mod(x: Interval, y: Interval) -> Interval:
    if y.hi is None or y.lo is None or y.lo <= 0:
        return TOP
    if x.lo is not None and x.lo >= 0:
        hi = y.hi - 1 if x.hi is None else min(x.hi, y.hi - 1)
        return Interval(0, hi)
    return Interval(-(y.hi - 1), y.hi - 1)


def _interval_of_scalar(value) -> Interval:
    if isinstance(value, (bool, np.bool_)):
        return Interval(int(value), int(value))
    if isinstance(value, (int, np.integer, float, np.floating)):
        v = value.item() if isinstance(value, np.generic) else value
        return Interval(v, v)
    return TOP


def _binary_interval(op: str, x: Interval, y: Interval) -> Interval:
    if op == "+":
        return Interval(_add(x.lo, y.lo), _add(x.hi, y.hi))
    if op == "-":
        return Interval(_sub(x.lo, y.hi), _sub(x.hi, y.lo))
    if op == "*":
        return _mul_candidates(x, y)
    if op in ("//", "div"):
        return _floordiv(x, y)
    if op == "%":
        return _mod(x, y)
    if op == "min":
        hi = None if x.hi is None or y.hi is None else min(x.hi, y.hi)
        lo = None if x.lo is None or y.lo is None else min(x.lo, y.lo)
        return Interval(lo, hi)
    if op == "max":
        hi = None if x.hi is None or y.hi is None else max(x.hi, y.hi)
        lo = None if x.lo is None or y.lo is None else max(x.lo, y.lo)
        return Interval(lo, hi)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return Interval(0, 1)
    if op == "&":
        if _nonneg(x) and _nonneg(y):
            hi = None if x.hi is None or y.hi is None else min(x.hi, y.hi)
            return Interval(0, hi)
        return TOP
    if op in ("|", "^"):
        if _nonneg(x) and _nonneg(y) and x.hi is not None and y.hi is not None:
            bits = max(int(x.hi).bit_length(), int(y.hi).bit_length())
            return Interval(0, (1 << bits) - 1)
        return TOP
    if op == "<<":
        if _nonneg(x) and _nonneg(y) and x.hi is not None and y.hi is not None:
            return Interval(0, int(x.hi) << int(y.hi))
        return TOP
    if op == ">>":
        if _nonneg(x) and _nonneg(y):
            lo = 0 if x.lo is None or y.hi is None else int(x.lo) >> int(y.hi)
            hi = None if x.hi is None else (
                int(x.hi) if y.lo is None else int(x.hi) >> int(y.lo))
            return Interval(lo, hi)
        return TOP
    return TOP


def _nonneg(x: Interval) -> bool:
    return x.lo is not None and x.lo >= 0


def _zigzag_decode_interval(x: Interval) -> Interval:
    if x.hi is None:
        return TOP
    hi = int(x.hi)
    return Interval(-((hi + 1) // 2), hi // 2)


def _unary_interval(op: str, x: Interval) -> Interval:
    if op == "neg":
        return Interval(None if x.hi is None else -x.hi,
                        None if x.lo is None else -x.lo)
    if op == "abs":
        if x.lo is None or x.hi is None:
            return Interval(0, None)
        return Interval(0 if x.lo <= 0 <= x.hi else min(abs(x.lo), abs(x.hi)),
                        max(abs(x.lo), abs(x.hi)))
    if op == "not":
        return Interval(0, 1)
    if op == "sign":
        return Interval(-1, 1)
    if op == "round":
        # np.rint then cast to int64: bounds round to nearest.
        lo = None if x.lo is None else int(np.rint(x.lo))
        hi = None if x.hi is None else int(np.rint(x.hi))
        return Interval(lo, hi)
    if op == "zigzag":
        return _zigzag_decode_interval(x)
    return TOP


# --------------------------------------------------------------------------- #
# Dtype-range hazards
# --------------------------------------------------------------------------- #

def _dtype_range(dtype: np.dtype) -> Optional[Interval]:
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return Interval(int(info.min), int(info.max))
    return None


def _clamp_to_dtype(interval: Interval, dtype: Optional[np.dtype]) -> Interval:
    if dtype is None:
        return interval
    bounds = _dtype_range(dtype)
    if bounds is None:
        return interval
    lo = bounds.lo if interval.lo is None else max(interval.lo, bounds.lo)
    hi = bounds.hi if interval.hi is None else min(interval.hi, bounds.hi)
    if lo > hi:  # fully out of range after a flagged overflow: give up
        return Interval(bounds.lo, bounds.hi)
    return Interval(lo, hi)


def _exceeds(interval: Interval, bounds: Interval) -> bool:
    """Whether *interval* provably reaches outside *bounds* (known ends only)."""
    if interval.lo is not None and bounds.lo is not None and interval.lo < bounds.lo:
        return True
    if interval.hi is not None and bounds.hi is not None and interval.hi > bounds.hi:
        return True
    return False


def _magnitude_beyond(interval: Interval, limit: int) -> bool:
    return ((interval.lo is not None and abs(interval.lo) > limit)
            or (interval.hi is not None and abs(interval.hi) > limit))


# --------------------------------------------------------------------------- #
# The abstract interpreter
# --------------------------------------------------------------------------- #

def _resolve_length(value: Any, facts: Mapping[str, Fact]) -> Optional[int]:
    """Statically resolve a length-like step parameter if possible."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, LengthOf):
        fact = facts.get(value.binding)
        if fact is not None and fact.length is not None:
            return fact.length + value.delta
    return None


def _operand(key: str, step: PlanStep, facts: Mapping[str, Fact]
             ) -> Tuple[Interval, Optional[np.dtype]]:
    """Interval + dtype of an Elementwise operand (column input or scalar)."""
    binding = step.column_inputs.get(key)
    if binding is not None:
        fact = facts.get(binding, Fact())
        return fact.interval, fact.dtype
    value = step.params.get(key)
    if isinstance(value, ParamRef):
        return TOP, None
    interval = _interval_of_scalar(value)
    dtype = None
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        dtype = np.dtype(np.int64)
    elif isinstance(value, (float, np.floating)):
        dtype = np.dtype(np.float64)
    return interval, dtype


def _prefix_sum_interval(x: Interval, n: Optional[int], initial=0) -> Interval:
    """Bounds of running sums of *n* values from *x*, starting at *initial*."""
    if x.lo is None or x.lo < 0:
        lo = None if x.lo is None or n is None else min(initial, initial + n * x.lo)
    else:
        lo = min(initial, initial + x.lo) if initial <= 0 else initial
        # running sums of non-negative values only grow; first partial >= lo
        lo = initial if x.lo >= 0 and initial >= 0 else lo
    if x.hi is None or x.hi > 0:
        hi = None if x.hi is None or n is None else max(initial, initial + n * x.hi)
    else:
        hi = max(initial, initial + x.hi)
    return Interval(lo, hi)


def _fused_interval(step: PlanStep, facts: Mapping[str, Fact],
                    note) -> Tuple[Interval, Optional[np.dtype]]:
    """Interpret a FusedElementwise chain over intervals, mirroring plan_types."""
    params = step.params

    def operand(ref) -> Tuple[Interval, Optional[np.dtype]]:
        kind, payload = ref[0], ref[1]
        if kind == "col":
            binding = step.column_inputs.get(payload)
            fact = facts.get(binding, Fact()) if binding else Fact()
            return fact.interval, fact.dtype
        if kind == "reg":
            return registers[payload]
        if kind in ("lit", "param"):
            value = payload if kind == "lit" else params.get(payload)
            dtype = None
            if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                dtype = np.dtype(np.int64)
            elif isinstance(value, (float, np.floating)):
                dtype = np.dtype(np.float64)
            return _interval_of_scalar(value), dtype
        return TOP, None

    registers: List[Tuple[Interval, Optional[np.dtype]]] = []
    for instruction in params.get("chain", ()):
        opcode = instruction[0]
        if opcode == "binary":
            __, op, a, b = instruction
            (xi, xd), (yi, yd) = operand(a), operand(b)
            dtype = plan_types._binary_dtype(op, xd, yd)
            interval = _binary_interval(op, xi, yi)
            interval = note(step, op, dtype, interval, (xi, xd), (yi, yd))
            registers.append((interval, dtype))
        elif opcode == "unary":
            __, op, a = instruction
            xi, xd = operand(a)
            dtype = plan_types._unary_dtype(op, xd)
            registers.append((_unary_interval(op, xi), dtype))
        elif opcode == "gather":
            __, values, __indices = instruction
            registers.append(operand(values))
        elif opcode == "unpack":
            __, __packed, width_ref, __count, dtype_ref = instruction
            width_interval, __ = operand(width_ref)
            dtype_value = (dtype_ref[1] if dtype_ref[0] == "lit"
                           else params.get(dtype_ref[1]))
            dtype = plan_types._as_dtype(dtype_value)
            if width_interval.hi is not None and width_interval.hi < 64:
                interval = Interval(0, (1 << int(width_interval.hi)) - 1)
            else:
                interval = Interval(0, None)
            registers.append((interval, dtype))
        else:
            registers.append((TOP, None))
    return registers[-1] if registers else (TOP, None)


def analyze_plan(plan: Plan, entry_facts: Mapping[str, Fact]) -> PlanAnalysis:
    """Abstractly interpret *plan* from *entry_facts*, collecting hazards.

    Plan inputs missing from *entry_facts* get an unknown fact (top interval,
    unknown dtype); unknown never produces a finding.
    """
    analysis = PlanAnalysis(plan=plan)
    facts = analysis.facts
    for name in plan.inputs:
        facts[name] = entry_facts.get(name, Fact())

    def warn(kind: str, step: PlanStep, message: str) -> None:
        analysis.findings.append(Finding(kind, f"{step.output} <- {step.op}", message))

    def check_binary(step, op, dtype, interval, left, right) -> Interval:
        """Hazard checks shared by Elementwise and fused chains; returns the
        interval clamped to the result dtype."""
        (xi, xd), (yi, yd) = left, right
        if dtype is not None and np.issubdtype(dtype, np.floating):
            for side in (xi, yi):
                if _magnitude_beyond(side, FLOAT64_EXACT_INT):
                    warn("precision-loss", step,
                         f"integer operand of {op!r} may exceed 2**53 "
                         f"({side}) but the result is {dtype} — integer "
                         "sums/products routed through float64 round")
                    break
            if (xd is not None and yd is not None
                    and np.issubdtype(xd, np.integer) and np.issubdtype(yd, np.integer)):
                warn("precision-loss", step,
                     f"mixing {xd} and {yd} promotes {op!r} to float64 "
                     "(NumPy result_type) — values above 2**53 lose exactness")
            return interval
        if dtype is not None and np.issubdtype(dtype, np.unsignedinteger):
            if interval.lo is not None and interval.lo < 0:
                warn("wrap", step,
                     f"{op!r} over {dtype} may produce negative values "
                     f"({interval}) that wrap modulo 2**{np.iinfo(dtype).bits}")
                return Interval(0, None)
        bounds = _dtype_range(dtype) if dtype is not None else None
        if bounds is not None and _exceeds(interval, bounds):
            warn("overflow", step,
                 f"{op!r} result interval {interval} exceeds the {dtype} "
                 f"range {bounds}")
            return _clamp_to_dtype(interval, dtype)
        return interval

    for step in analysis.plan.steps:
        dtype = plan_types.step_output_dtype(
            step, {b: facts.get(b, Fact()).dtype for b in step.column_inputs.values()})
        op = step.op
        params = step.params
        interval = TOP
        length: Optional[int] = None

        if op in ("Zeros", "Ones", "Constant", "Iota", "Sequence"):
            length = _resolve_length(params.get("length"), facts)
            if op == "Zeros":
                interval = Interval(0, 0)
            elif op == "Ones":
                interval = Interval(1, 1)
            elif op == "Constant":
                interval = _interval_of_scalar(params.get("value"))
            elif op == "Iota":
                start = params.get("start", 0)
                stride = params.get("step", 1)
                if isinstance(start, (int, np.integer)) and isinstance(
                        stride, (int, np.integer)):
                    if length is not None and length > 0:
                        last = int(start) + int(stride) * (length - 1)
                        interval = Interval(min(int(start), last),
                                            max(int(start), last))
                    elif int(stride) >= 0:
                        interval = Interval(int(start), None)
                    else:
                        interval = Interval(None, int(start))
        elif op in ("PrefixSum", "ExclusivePrefixSum"):
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            initial = params.get("initial", 0)
            initial = int(initial) if isinstance(initial, (int, np.integer)) else 0
            if source.dtype is not None and dtype is not None:
                if (np.issubdtype(source.dtype, np.floating)
                        and np.issubdtype(dtype, np.integer)):
                    warn("narrowing-cast", step,
                         f"accumulating {source.dtype} values in a {dtype} "
                         "accumulator truncates fractional parts")
            interval = _prefix_sum_interval(source.interval, source.length,
                                            initial=initial)
            bounds = _dtype_range(dtype) if dtype is not None else None
            if bounds is not None and _exceeds(interval, bounds):
                warn("overflow", step,
                     f"running sum interval {interval} exceeds the {dtype} "
                     f"range {bounds}")
                interval = _clamp_to_dtype(interval, dtype)
            length = source.length
        elif op == "SegmentedPrefixSum":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = _prefix_sum_interval(source.interval, source.length)
            length = source.length
        elif op == "PrefixMax":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval, length = source.interval, source.length
        elif op == "AdjacentDifference":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            x = source.interval
            interval = Interval(_sub(x.lo, x.hi), _sub(x.hi, x.lo))
            length = source.length
            if dtype is not None and np.issubdtype(dtype, np.unsignedinteger):
                singleton = (x.lo is not None and x.lo == x.hi)
                if not singleton:
                    warn("wrap", step,
                         f"adjacent differences of {source.dtype} values in "
                         f"{x} can be negative and wrap modulo 2**64 "
                         "(unsigned subtract)")
                    interval = Interval(0, None)
        elif op == "Cast":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = source.interval
            length = source.length
            if (dtype is not None and source.dtype is not None
                    and np.issubdtype(dtype, np.integer)
                    and np.issubdtype(source.dtype, np.floating)):
                warn("narrowing-cast", step,
                     f"cast from {source.dtype} to {dtype} truncates "
                     "fractional values")
        elif op in ("PopBack", "Head", "Tail", "Reverse", "Take", "Compact"):
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = source.interval
            if op == "PopBack" and source.length is not None:
                length = max(source.length - 1, 0)
            elif op == "Reverse":
                length = source.length
        elif op == "PushFront":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = source.interval.hull(_interval_of_scalar(params.get("value")))
            if source.length is not None:
                length = source.length + 1
        elif op == "Repeat":
            values = facts.get(step.column_inputs.get("values", ""), Fact())
            interval = values.interval
        elif op == "Gather":
            values = facts.get(step.column_inputs.get("values", ""), Fact())
            indices = facts.get(step.column_inputs.get("indices", ""), Fact())
            interval = values.interval
            length = indices.length
        elif op == "Scatter":
            values = facts.get(step.column_inputs.get("values", ""), Fact())
            base = facts.get(step.column_inputs.get("base", ""), Fact())
            interval = values.interval.hull(base.interval)
            length = base.length
        elif op == "Concat":
            parts = [facts.get(b, Fact()) for b in step.column_inputs.values()]
            if parts:
                interval = parts[0].interval
                for part in parts[1:]:
                    interval = interval.hull(part.interval)
        elif op in ("Elementwise", "Add", "Subtract", "Multiply", "FloorDivide",
                    "Modulo"):
            named = {"Add": "+", "Subtract": "-", "Multiply": "*",
                     "FloorDivide": "//", "Modulo": "%"}
            operation = named.get(op) or params.get("op", "+")
            left, right = _operand("left", step, facts), _operand("right", step, facts)
            interval = _binary_interval(operation, left[0], right[0])
            interval = check_binary(step, operation, dtype, interval, left, right)
            left_binding = step.column_inputs.get("left")
            if left_binding is not None:
                length = facts.get(left_binding, Fact()).length
            elif step.column_inputs.get("right") is not None:
                length = facts.get(step.column_inputs["right"], Fact()).length
        elif op == "ElementwiseUnary":
            source = facts.get(step.column_inputs.get("operand", ""), Fact())
            interval = _unary_interval(params.get("op", "abs"), source.interval)
            length = source.length
        elif op == "ZigZagDecode":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = _zigzag_decode_interval(source.interval)
            length = source.length
        elif op == "ZigZagEncode":
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            x = source.interval
            if x.lo is not None and x.hi is not None:
                interval = Interval(0, 2 * max(abs(int(x.lo)), abs(int(x.hi))))
            else:
                interval = Interval(0, None)
            length = source.length
        elif op == "UnpackBits":
            width = params.get("width")
            count = params.get("count")
            if isinstance(width, (int, np.integer)) and int(width) < 64:
                interval = Interval(0, (1 << int(width)) - 1)
            else:
                interval = Interval(0, None)
            if isinstance(count, (int, np.integer)):
                length = int(count)
            bounds = _dtype_range(dtype) if dtype is not None else None
            if bounds is not None and _exceeds(interval, bounds):
                warn("overflow", step,
                     f"unpacked width-{width} values {interval} exceed the "
                     f"{dtype} range {bounds} — width >= 63 offsets must stay "
                     "in an unsigned or widened domain")
                interval = _clamp_to_dtype(interval, dtype)
        elif op in ("PackBits", "VarWidthUnpack"):
            interval = Interval(0, None)
        elif op == "FusedElementwise":
            interval, __fused_dtype = _fused_interval(step, facts, check_binary)
        elif op in ("Count", "CountTrue", "CountDistinct"):
            interval = Interval(0, None)
        elif op in ("Min", "Max", "First", "Last", "RunValues"):
            source = facts.get(step.column_inputs.get("col", ""), Fact())
            interval = source.interval
        elif op in ("RunLengths", "RunEndPositions", "RunStartPositions",
                    "RunIds", "SegmentIds", "PositionsOf"):
            interval = Interval(0, None)
        elif op in ("Compare", "Between", "IsIn", "MaskAnd", "MaskOr",
                    "MaskNot", "RunStartsMask"):
            interval = Interval(0, 1)

        # Narrowing check for any explicitly-cast integer target whose
        # incoming interval is known not to fit (e.g. an int32 dtype param).
        if (dtype is not None and np.issubdtype(dtype, np.integer)
                and not interval.is_top()):
            bounds = _dtype_range(dtype)
            if bounds is not None and _exceeds(interval, bounds):
                if not any(f.where.startswith(f"{step.output} <- ")
                           for f in analysis.findings):
                    warn("narrowing-cast", step,
                         f"value interval {interval} does not fit the "
                         f"declared {dtype} output")
                interval = _clamp_to_dtype(interval, dtype)

        facts[step.output] = Fact(dtype=dtype, interval=interval, length=length)

    return analysis


# --------------------------------------------------------------------------- #
# Translation validation for the optimizer
# --------------------------------------------------------------------------- #

def check_optimization(plan: Plan, entry_facts: Mapping[str, Fact],
                       passes: Optional[Sequence[Any]] = None) -> List[Finding]:
    """Validate that each rewrite pass preserves the inferred output fact.

    Runs the abstract interpreter before and after every optimizer pass and
    reports a ``"translation"`` finding when a pass changes the inferred
    output dtype, or yields an interval inconsistent with the previous one
    (disjoint, or a changed exact value).  An abstract-precision change
    (wider/narrower but overlapping interval) is not a finding.
    """
    from ..columnar.compile.optimizer import DEFAULT_PASSES

    findings: List[Finding] = []
    current = plan
    fact = analyze_plan(current, entry_facts).output_fact
    for rewrite in (passes if passes is not None else DEFAULT_PASSES):
        rewritten = rewrite(current)
        after = analyze_plan(rewritten, entry_facts).output_fact
        where = f"{getattr(rewrite, '__name__', str(rewrite))}"
        if fact.dtype is not None and after.dtype is not None \
                and fact.dtype != after.dtype:
            findings.append(Finding(
                "translation", where,
                f"pass changed the inferred output dtype "
                f"{fact.dtype} -> {after.dtype} ({plan.description!r})"))
        if not fact.interval.intersects(after.interval):
            findings.append(Finding(
                "translation", where,
                f"pass produced a disjoint output interval "
                f"{fact.interval} -> {after.interval} ({plan.description!r})"))
        exact_before = (fact.interval.lo is not None
                        and fact.interval.lo == fact.interval.hi)
        exact_after = (after.interval.lo is not None
                       and after.interval.lo == after.interval.hi)
        if exact_before and exact_after and fact.interval.lo != after.interval.lo:
            findings.append(Finding(
                "translation", where,
                f"pass changed the exact output value "
                f"{fact.interval} -> {after.interval} ({plan.description!r})"))
        current, fact = rewritten, after
    return findings

"""Seeded regression corpus: the four historically-shipped hazard plans.

PR 2 fixed four wrong-result bugs, all of them dtype/value-range hazards
that were visible in the plan before any data ran.  Each entry here rebuilds
the *shape* of one of those bugs as a small plan plus entry facts, and names
the finding kind :func:`repro.analysis.intervals.analyze_plan` must emit for
it.  The analyzer gates on this corpus in CI: if a refactor of the interval
pass stops flagging any of the four, the `analysis` job fails — the corpus
is the analyzer's own regression test, exactly like a compiler's
known-miscompile suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..columnar.plan import Plan, PlanBuilder
from .intervals import Fact, PlanAnalysis, analyze_plan, entry_fact

__all__ = ["BadPlan", "KNOWN_BAD_PLANS", "run_corpus"]


@dataclass(frozen=True)
class BadPlan:
    """One known-bad plan: how to build it and what must be flagged."""

    name: str
    description: str
    expected_kind: str
    build: Callable[[], Tuple[Plan, Dict[str, Fact]]]


def _float_minmax_through_int64() -> Tuple[Plan, Dict[str, Fact]]:
    # PR 2 bug 1: grouped float min/max were accumulated through an int64
    # state, truncating fractional parts.  The plan shape: float64 values
    # folded through an integer accumulator.
    builder = PlanBuilder(["values"], description="float min/max via int64 state")
    builder.step("accumulated", "PrefixSum", col="values", dtype=np.int64)
    plan = builder.build("accumulated")
    facts = {"values": entry_fact(np.float64, lo=-1e6, hi=1e6, length=1000)}
    return plan, facts


def _int_sum_through_float64() -> Tuple[Plan, Dict[str, Fact]]:
    # PR 2 bug 2: integer sums whose partials exceed 2**53 were merged
    # through float64, rounding the low bits away.  The plan shape: a big
    # int64 quantity entering float64 arithmetic.
    builder = PlanBuilder(["partials", "weights"],
                          description="integer sum merged in float64")
    builder.step("merged", "Elementwise", left="partials", right="weights", op="*")
    plan = builder.build("merged")
    facts = {
        "partials": entry_fact(np.int64, lo=0, hi=2 ** 60, length=64),
        "weights": entry_fact(np.float64, lo=0.0, hi=1.0, length=64),
    }
    return plan, facts


def _uint64_delta_wrap() -> Tuple[Plan, Dict[str, Fact]]:
    # PR 2 bug 3: adjacent differences of uint64 columns wrap modulo 2**64
    # for any decreasing pair; the deltas were then treated as signed.
    builder = PlanBuilder(["values"], description="uint64 adjacent-difference wrap")
    builder.step("deltas", "AdjacentDifference", col="values")
    plan = builder.build("deltas")
    facts = {"values": entry_fact(np.uint64, lo=0, hi=2 ** 63, length=500)}
    return plan, facts


def _for_segment_bounds_saturation() -> Tuple[Plan, Dict[str, Fact]]:
    # PR 2 bug 4: FOR segment bounds with offsets_width >= 63 were computed
    # as reference + (2**width - 1) without saturation, overflowing int64.
    # The plan shape: width-63 unpacked offsets added to near-max references.
    builder = PlanBuilder(["refs", "offsets"],
                          description="FOR bounds, offsets_width=63, no saturation")
    builder.step("decoded", "UnpackBits", packed="offsets", width=63,
                 count=4096, dtype=np.int64)
    builder.step("bounds", "Elementwise", left="refs", right="decoded", op="+")
    plan = builder.build("bounds")
    facts = {
        "refs": entry_fact(np.int64, lo=0, hi=2 ** 62, length=32),
        "offsets": entry_fact(np.uint64, lo=0, hi=None, length=4032),
    }
    return plan, facts


KNOWN_BAD_PLANS: Tuple[BadPlan, ...] = (
    BadPlan(
        name="float-minmax-int64-accumulator",
        description="grouped float min/max truncated through an int64 state",
        expected_kind="narrowing-cast",
        build=_float_minmax_through_int64,
    ),
    BadPlan(
        name="int-sum-float64-rounding",
        description="integer sum partials beyond 2**53 merged through float64",
        expected_kind="precision-loss",
        build=_int_sum_through_float64,
    ),
    BadPlan(
        name="uint64-delta-wrap",
        description="adjacent differences of uint64 values wrap modulo 2**64",
        expected_kind="wrap",
        build=_uint64_delta_wrap,
    ),
    BadPlan(
        name="for-segment-bounds-overflow",
        description="FOR segment upper bounds overflow int64 at offsets_width 63",
        expected_kind="overflow",
        build=_for_segment_bounds_saturation,
    ),
)


def run_corpus() -> List[Tuple[BadPlan, PlanAnalysis, bool]]:
    """Analyze every seeded plan; the third element is "was it flagged"."""
    results = []
    for bad in KNOWN_BAD_PLANS:
        plan, facts = bad.build()
        analysis = analyze_plan(plan, facts)
        flagged = any(f.kind == bad.expected_kind for f in analysis.findings)
        results.append((bad, analysis, flagged))
    return results

"""Audit of ``kernel_capabilities`` claims against the engine's dispatch.

A scheme that *overclaims* (advertises a kernel the engine cannot dispatch
for its resolved form) silently loses pushdown at runtime: every kernel
returns ``None`` and the scan falls back to decompression with no signal
that a declared fast path never existed.  A scheme that *underclaims* hides
a fast path the engine does implement.  Neither is an exception anywhere —
which is exactly why this is an audit, not a test of behaviour.

The audit is static: it resolves each form (peeling cascades the way
:func:`repro.engine.translate.resolve_form` does at runtime), consults the
engine's real dispatch tables (``_FILTERS`` / ``_GATHERS`` /
``_AGGREGATORS`` in :mod:`repro.engine.kernels` — imported, not duplicated,
so the audit can never drift from the engine), and compares the reachable
kernel set against the scheme's declaration.  Form-dependent dispatch is
honoured: an NS form with the zig-zag transform cannot translate range
bounds into its stored domain, so ``filter_range`` is correctly unclaimed
there and the audit knows it.

:func:`audit_registry` runs the audit across every registered scheme (and a
set of representative parameter variants and cascades);
:func:`golden_claims` / :func:`check_against_golden` pin the exact current
claims to ``capability_golden.json`` so an accidental claim change fails CI
with a diff, not a silent behaviour change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..columnar.column import Column
from ..schemes.base import (
    KERNEL_AGGREGATE,
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    KERNEL_GROUP_CODES,
    CompressedForm,
    CompressionScheme,
)
from ..schemes.registry import make_cascade, make_scheme
from .intervals import Finding

__all__ = [
    "AuditEntry",
    "audit_form",
    "audit_registry",
    "golden_claims",
    "check_against_golden",
    "GOLDEN_PATH",
]

GOLDEN_PATH = Path(__file__).with_name("capability_golden.json")


@dataclass(frozen=True)
class AuditEntry:
    """One scheme-variant's declared vs dispatchable kernel sets."""

    variant: str
    declared: Tuple[str, ...]
    dispatchable: Tuple[str, ...]
    findings: Tuple[Finding, ...]


def _dispatchable(scheme: CompressionScheme, form: CompressedForm) -> frozenset:
    """The kernels the engine can actually dispatch for *form*, statically."""
    from ..engine import kernels, translate

    __, resolved = translate.resolve_form(scheme, form)
    reachable = set()
    if resolved.scheme in kernels._FILTERS:
        # Form-dependent: range translation must exist for the stored domain
        # (NS zig-zag stores magnitudes, which are not order-preserving).
        if resolved.scheme == "NS":
            from ..engine.predicates import RangeBounds

            probe = translate.translate_range_to_stored(resolved, RangeBounds(0, 1))
            if probe is not None:
                reachable.add(KERNEL_FILTER_RANGE)
        else:
            reachable.add(KERNEL_FILTER_RANGE)
    if resolved.scheme in kernels._GATHERS:
        reachable.add(KERNEL_GATHER)
    if resolved.scheme in kernels._AGGREGATORS:
        reachable.add(KERNEL_AGGREGATE)
    if resolved.scheme == "DICT":
        reachable.add(KERNEL_GROUP_CODES)
    return frozenset(reachable)


def audit_form(scheme: CompressionScheme, form: CompressedForm,
               variant: Optional[str] = None) -> AuditEntry:
    """Compare *scheme*'s declared capabilities for *form* with the dispatch."""
    name = variant or form.scheme
    declared = frozenset(scheme.kernel_capabilities(form))
    dispatchable = _dispatchable(scheme, form)
    findings: List[Finding] = []
    for kernel in sorted(declared - dispatchable):
        findings.append(Finding(
            "capability-overclaim", name,
            f"declares {kernel!r} but the engine has no dispatch for it "
            "(pushdown silently degrades to decompression)"))
    for kernel in sorted(dispatchable - declared):
        findings.append(Finding(
            "capability-underclaim", name,
            f"does not declare {kernel!r} although the engine can dispatch "
            "it (a fast path is hidden)"))
    return AuditEntry(variant=name,
                      declared=tuple(sorted(declared)),
                      dispatchable=tuple(sorted(dispatchable)),
                      findings=tuple(findings))


# --------------------------------------------------------------------------- #
# Registry-wide sweep
# --------------------------------------------------------------------------- #

def _sample_column(kind: str = "runs") -> Column:
    if kind == "runs":
        values = np.repeat(np.arange(40, dtype=np.int64) * 7 + 3,
                           np.arange(40) % 5 + 1)
    elif kind == "sorted":
        values = np.cumsum(np.arange(200, dtype=np.int64) % 9)
    else:
        values = (np.arange(200, dtype=np.int64) * 37) % 101
    return Column(values)


def _variants() -> Sequence[Tuple[str, Callable[[], Tuple[CompressionScheme, Column]]]]:
    """Representative scheme x parameter shapes for the sweep."""

    def plain(name: str, data_kind: str = "runs", **params):
        return lambda: (make_scheme(name, **params), _sample_column(data_kind))

    def ns_variant(transform: str):
        # NS picks its signedness transform from the data: non-negative input
        # stays "none"; signed input uses the configured handling.
        def build():
            if transform == "none":
                return make_scheme("NS"), _sample_column("spread")
            data = Column((np.arange(200, dtype=np.int64) * 3) % 41 - 20)
            return make_scheme("NS", signed=transform), data
        return build

    def cascade(outer: str, constituent: str, inner: str):
        return lambda: (make_cascade(outer, {constituent: inner}),
                        _sample_column("runs"))

    return (
        ("ID", plain("ID")),
        ("NS/none", ns_variant("none")),
        ("NS/zigzag", ns_variant("zigzag")),
        ("NS/bias", ns_variant("bias")),
        ("DELTA", plain("DELTA", "sorted")),
        ("RLE", plain("RLE")),
        ("RPE", plain("RPE")),
        ("FOR", plain("FOR", "sorted")),
        ("STEPFUNCTION", plain("STEPFUNCTION", "sorted")),
        ("DICT/packed", plain("DICT", "runs", codes_layout="packed")),
        ("DICT/aligned", plain("DICT", "runs", codes_layout="aligned")),
        ("PFOR", plain("PFOR", "sorted")),
        ("VARWIDTH", plain("VARWIDTH", "spread")),
        ("LINEAR", plain("LINEAR", "sorted")),
        ("POLY", plain("POLY", "sorted")),
        ("CASCADE/RLE∘NS", cascade("RLE", "values", "NS")),
        ("CASCADE/RLE∘DELTA", cascade("RLE", "lengths", "DELTA")),
        ("CASCADE/DICT∘NS", cascade("DICT", "codes", "NS")),
    )


def audit_registry() -> List[AuditEntry]:
    """Run the capability audit over every registered scheme variant."""
    entries: List[AuditEntry] = []
    for variant, build in _variants():
        scheme, data = build()
        form = scheme.compress(data)
        entries.append(audit_form(scheme, form, variant=variant))
    return entries


# --------------------------------------------------------------------------- #
# Golden pinning
# --------------------------------------------------------------------------- #

def golden_claims(entries: Optional[Sequence[AuditEntry]] = None
                  ) -> Dict[str, List[str]]:
    """The exact declared claims per variant, as stored in the golden file."""
    if entries is None:
        entries = audit_registry()
    return {entry.variant: list(entry.declared) for entry in entries}


def check_against_golden(entries: Optional[Sequence[AuditEntry]] = None
                         ) -> List[Finding]:
    """Audit mismatches plus any drift from the pinned golden claims."""
    if entries is None:
        entries = audit_registry()
    findings: List[Finding] = [f for entry in entries for f in entry.findings]
    if not GOLDEN_PATH.exists():
        findings.append(Finding(
            "capability-golden", str(GOLDEN_PATH),
            "golden claims file is missing; regenerate with "
            "python -m repro.analysis --write-golden"))
        return findings
    pinned = json.loads(GOLDEN_PATH.read_text())
    current = golden_claims(entries)
    for variant in sorted(set(pinned) | set(current)):
        if variant not in pinned:
            findings.append(Finding("capability-golden", variant,
                                    "variant is not pinned in the golden file"))
        elif variant not in current:
            findings.append(Finding("capability-golden", variant,
                                    "pinned variant is no longer audited"))
        elif pinned[variant] != current[variant]:
            findings.append(Finding(
                "capability-golden", variant,
                f"claims changed: pinned {pinned[variant]} != "
                f"current {current[variant]}"))
    return findings


def write_golden() -> Dict[str, List[str]]:
    """Regenerate the golden claims file from the current registry."""
    claims = golden_claims()
    GOLDEN_PATH.write_text(json.dumps(claims, indent=2, ensure_ascii=False,
                                      sort_keys=True) + "\n")
    return claims

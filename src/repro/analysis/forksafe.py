"""Static fork-safety check for objects crossing the multiprocess pipe.

The process scan backend pickles one :class:`~repro.engine.parallel.ScanSpec`
per query and broadcasts it to the worker pool.  The old guard was
degrade-and-hope: try ``pickle.dumps`` and fall back to serial on any
exception — which accepts values that *pickle* but fail (or silently share
state) on the other side, and reports failures as an opaque exception string.

This module instead walks the object graph *structurally* and names the
first unsafe value it finds, e.g.::

    ScanSpec.predicates[0].__class__ (locally-defined class
    'test_x.<locals>.LocalPredicate' cannot be imported by a worker)

Unsafe values are: callables and classes not importable by qualified name
(lambdas, locals, instances of locally-defined classes), live OS resources
(locks, threads, sockets, files, mmaps, generators), modules, and
memoryviews.  Safe leaves are scalars, strings/bytes, dtypes, ndarrays and
Columns; containers and plain objects recurse.  The check never imports
worker-side modules and never serialises anything.
"""

from __future__ import annotations

import dataclasses
import inspect
import sys
from typing import Any, Optional

import numpy as np

__all__ = ["check_fork_safety"]

# type(obj).__module__ values that mean a live OS / runtime resource.
_UNSAFE_MODULES = frozenset((
    "_thread", "threading", "mmap", "socket", "select", "ssl",
    "multiprocessing", "multiprocessing.synchronize", "sqlite3",
))

_SAFE_SCALARS = (type(None), bool, int, float, complex, str, bytes, bytearray,
                 np.generic, np.dtype)


def _qualified_lookup(module_name: str, qualname: str) -> Any:
    """Resolve *qualname* inside *module_name* the way pickle-by-reference does."""
    module = sys.modules.get(module_name)
    if module is None:
        return None
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return obj


def _callable_problem(obj: Any) -> Optional[str]:
    """Why a function/class cannot be re-imported by a worker, or ``None``."""
    qualname = getattr(obj, "__qualname__", getattr(obj, "__name__", ""))
    module = getattr(obj, "__module__", None)
    if "<lambda>" in qualname:
        return f"lambda defined in {module!r} cannot be pickled"
    if "<locals>" in qualname:
        return (f"locally-defined {'class' if isinstance(obj, type) else 'function'} "
                f"{module}.{qualname!r} cannot be imported by a worker")
    if module is None:
        return f"callable {qualname!r} has no module to import it from"
    if _qualified_lookup(module, qualname) is not obj:
        return (f"{qualname!r} is not reachable as {module}.{qualname} "
                "(pickle-by-reference would fail in the worker)")
    return None


def _resource_problem(obj: Any) -> Optional[str]:
    kind = type(obj)
    if kind.__module__ in _UNSAFE_MODULES:
        return (f"{kind.__module__}.{kind.__name__} is a live OS/runtime "
                "resource that cannot cross a process boundary")
    if isinstance(obj, memoryview):
        return "memoryview exposes shared memory that does not survive a fork"
    import io

    if isinstance(obj, io.IOBase):
        return f"open file object {kind.__name__} cannot cross a process boundary"
    if kind.__name__ in ("generator", "coroutine", "async_generator"):
        return f"{kind.__name__} objects cannot be pickled"
    return None


def check_fork_safety(obj: Any, root: str = "value",
                      _seen: Optional[set] = None) -> Optional[str]:
    """Return a named path to the first fork-unsafe value in *obj*, or ``None``.

    The path string is suitable for
    ``ScanResult.backend = f"serial ({path})"`` reporting: it names where in
    the object graph the offending value sits and why it is unsafe.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return None
    if isinstance(obj, _SAFE_SCALARS):
        return None
    _seen.add(id(obj))

    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            for index, item in enumerate(obj.flat):
                problem = check_fork_safety(item, f"{root}[{index}]", _seen)
                if problem is not None:
                    return problem
        return None

    if isinstance(obj, type(sys)):  # a module
        return f"{root}: module {obj.__name__!r} cannot cross a process boundary"

    problem = _resource_problem(obj)
    if problem is not None:
        return f"{root}: {problem}"

    # Routines and classes pickle by reference; callable *instances* fall
    # through to the generic instance walk below.
    if isinstance(obj, type) or inspect.isroutine(obj):
        bound_self = getattr(obj, "__self__", None)
        if bound_self is not None:
            deeper = check_fork_safety(bound_self, f"{root}.__self__", _seen)
            if deeper is not None:
                return deeper
            return None
        why = _callable_problem(obj)
        if why is not None:
            return f"{root}: {why}"
        return None

    if isinstance(obj, dict):
        for key, value in obj.items():
            label = f"{root}[{key!r}]" if isinstance(key, (str, int)) else f"{root}[...]"
            problem = (check_fork_safety(key, f"{root}.<key {key!r}>", _seen)
                       or check_fork_safety(value, label, _seen))
            if problem is not None:
                return problem
        return None

    if isinstance(obj, (list, tuple, set, frozenset)):
        for index, item in enumerate(obj):
            problem = check_fork_safety(item, f"{root}[{index}]", _seen)
            if problem is not None:
                return problem
        return None

    # Instances: the class itself must be importable, then the state recurses.
    why = _callable_problem(type(obj))
    if why is not None:
        return f"{root}.__class__ ({why})"

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field_ in dataclasses.fields(obj):
            problem = check_fork_safety(getattr(obj, field_.name, None),
                                        f"{root}.{field_.name}", _seen)
            if problem is not None:
                return problem
        return None

    state = getattr(obj, "__dict__", None)
    if state:
        for name, value in state.items():
            problem = check_fork_safety(value, f"{root}.{name}", _seen)
            if problem is not None:
                return problem
    slots = getattr(type(obj), "__slots__", ())
    for name in (slots if isinstance(slots, (tuple, list)) else (slots,)):
        if name and hasattr(obj, name):
            problem = check_fork_safety(getattr(obj, name), f"{root}.{name}", _seen)
            if problem is not None:
                return problem
    return None

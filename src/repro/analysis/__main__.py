"""``python -m repro.analysis`` — run every static check and gate on clean.

Checks, in order:

1. **lint** — the AST engine-invariant rules over the installed ``repro``
   source tree (see :mod:`repro.analysis.lint` for the rule list);
2. **audit** — the capability-claim audit across every registered scheme
   variant, plus drift detection against the pinned golden claims;
3. **plans** — abstract interpretation of every scheme's decompression plan
   (must be hazard-free) and translation validation of every optimizer pass
   over those plans;
4. **corpus** — the four seeded historical-bug plans, each of which the
   interval analysis *must* flag (the analyzer's own regression suite).

Exit status 0 only if 1–3 are clean and every corpus plan is flagged.
``--write-golden`` regenerates the pinned capability claims after an
intentional change.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

import numpy as np


def _lint(source_root: Path) -> List:
    from .lint import lint_tree

    return lint_tree(source_root)


def _audit(write_golden: bool) -> List:
    from . import capabilities

    if write_golden:
        claims = capabilities.write_golden()
        print(f"wrote {capabilities.GOLDEN_PATH} ({len(claims)} variants)")
    return capabilities.check_against_golden()


def _plans() -> List:
    from ..columnar.column import Column
    from ..schemes import registry
    from .intervals import analyze_plan, check_optimization, entry_facts_for_form

    rng = np.random.default_rng(20180409)  # the paper's year+month, fixed
    base = np.repeat(rng.integers(-1000, 1000, 64), rng.integers(1, 9, 64))
    data = Column(base.astype(np.int64))
    sorted_data = Column(np.sort(base).astype(np.int64))
    findings: List = []
    for name in registry.available_schemes():
        scheme = registry.make_scheme(name)
        for sample in (data, sorted_data):
            form = scheme.compress(sample)
            plan = scheme.decompression_plan(form)
            facts = entry_facts_for_form(scheme, form)
            findings.extend(analyze_plan(plan, facts).findings)
            findings.extend(check_optimization(plan, facts))
    return findings


def _corpus() -> List:
    from .corpus import run_corpus
    from .intervals import Finding

    missed: List = []
    for bad, analysis, flagged in run_corpus():
        if not flagged:
            missed.append(Finding(
                "corpus-miss", bad.name,
                f"seeded bad plan was NOT flagged (expected a "
                f"{bad.expected_kind!r} finding): {bad.description}"))
    return missed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static verification of the repro engine")
    parser.add_argument("--source-root", type=Path, default=None,
                        help="source tree to lint (default: the installed "
                             "repro package)")
    parser.add_argument("--skip-lint", action="store_true")
    parser.add_argument("--skip-audit", action="store_true")
    parser.add_argument("--skip-plans", action="store_true")
    parser.add_argument("--skip-corpus", action="store_true")
    parser.add_argument("--write-golden", action="store_true",
                        help="regenerate the pinned capability claims first")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the lint rule list and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        from .lint import RULES

        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    if args.source_root is None:
        import repro

        args.source_root = Path(repro.__file__).parent

    failed = False
    sections = (
        ("lint", args.skip_lint, lambda: _lint(args.source_root)),
        ("audit", args.skip_audit, lambda: _audit(args.write_golden)),
        ("plans", args.skip_plans, _plans),
        ("corpus", args.skip_corpus, _corpus),
    )
    for title, skipped, run in sections:
        if skipped:
            print(f"-- {title}: skipped")
            continue
        findings = run()
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"-- {title}: {status}")
        for finding in findings:
            print(f"   {finding}")
        failed = failed or bool(findings)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

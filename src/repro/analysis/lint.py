"""AST-level engine-invariant lints over ``src/repro``.

Three invariants that generic linters cannot express, each of which has a
wrong-result (not crash) failure mode:

* **RA001 accumulator-width** — in the accumulation-sensitive modules
  (``columnar/ops``, ``engine/operators.py``, ``engine/kernels.py``,
  ``engine/pushdown.py``), every ``sum``/``cumsum`` must pass an explicit
  64-bit ``dtype=``.  NumPy's default accumulator follows the input dtype,
  so a narrow column sums in its own width and wraps silently.
* **RA002 merge-determinism** — partial-merge code (any function whose name
  contains ``merge``) must not iterate over sets or set-algebra of dict
  keys: partial-aggregate merging is only order-insensitive if the code
  never *depends* on an iteration order that differs between workers.
* **RA003 scan-cache-bypass** — inside ``engine/scan.py``, chunk
  decompression must go through the shared per-scan cache (the
  ``chunk_values`` closure); a direct ``.decompress()`` call silently
  re-decodes the chunk and skips the hot-cache accounting.

Suppress a finding inline with ``# repro: ignore[RA001]`` (or a bare
``# repro: ignore``) on the flagged line, ideally with a trailing reason.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .intervals import Finding

__all__ = ["RULES", "lint_file", "lint_tree"]

#: rule id -> one-line description (the CLI prints this as the rule list).
RULES: Dict[str, str] = {
    "RA001": "sum/cumsum in accumulation paths must pass an explicit 64-bit dtype",
    "RA002": "merge functions must not iterate over sets (order is not deterministic)",
    "RA003": "engine/scan.py must decompress chunks via the shared chunk_values cache",
}

_SUPPRESS = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9, ]+)\])?")

_ACCUMULATION_SCOPE = (
    "columnar/ops/",
    "engine/operators.py",
    "engine/kernels.py",
    "engine/pushdown.py",
)

_WIDE_DTYPES = frozenset(("int64", "uint64", "float64"))


def _suppressed(lines: Sequence[str], lineno: int, rule: str) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    match = _SUPPRESS.search(lines[lineno - 1])
    if match is None:
        return False
    which = match.group("rules")
    if which is None:
        return True
    return rule in {r.strip() for r in which.split(",")}


def _dtype_kwarg_is_wide(call: ast.Call) -> Optional[bool]:
    """True/False for an explicit ``dtype=`` kwarg, ``None`` when absent."""
    for keyword in call.keywords:
        if keyword.arg != "dtype":
            continue
        value = keyword.value
        if isinstance(value, ast.Attribute):  # np.int64 and friends
            return value.attr in _WIDE_DTYPES
        if isinstance(value, ast.Name):  # a computed accumulator dtype
            return True
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value in _WIDE_DTYPES
        return True  # anything computed: give it the benefit of the doubt
    return None


def _is_sum_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in ("sum", "cumsum"):
        # Exclude np.add.reduce-style ufunc methods and Python builtins.
        return not (isinstance(func.value, ast.Name) and func.value.id == "builtins")
    return False


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _keys_call(node.left) or _keys_call(node.right) \
            or _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _keys_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys")


class _Linter(ast.NodeVisitor):
    def __init__(self, relative: str, lines: Sequence[str]):
        self.relative = relative
        self.lines = lines
        self.findings: List[Finding] = []
        self._function_stack: List[str] = []

    # ------------------------------------------------------------------ #

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno, rule):
            return
        self.findings.append(
            Finding(rule, f"{self.relative}:{lineno}", message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _in_merge_function(self) -> bool:
        return any("merge" in name for name in self._function_stack)

    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        if any(self.relative.endswith(scope) or scope in self.relative
               for scope in _ACCUMULATION_SCOPE) and _is_sum_call(node):
            wide = _dtype_kwarg_is_wide(node)
            if wide is None:
                self._report(
                    "RA001", node,
                    "sum/cumsum without an explicit dtype accumulates in the "
                    "input dtype and can wrap; pass dtype=np.int64/np.uint64/"
                    "np.float64 (or a computed 64-bit accumulator)")
            elif wide is False:
                self._report(
                    "RA001", node,
                    "sum/cumsum accumulator dtype is narrower than 64 bits")
        if self.relative.endswith("engine/scan.py"):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "decompress" \
                    and "chunk_values" not in self._function_stack:
                self._report(
                    "RA003", node,
                    "direct .decompress() bypasses the shared per-scan chunk "
                    "cache; route through chunk_values()")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._in_merge_function() and _is_set_expression(node.iter):
            self._report(
                "RA002", node,
                "iterating a set inside a merge function is order-"
                "nondeterministic across workers; iterate a sorted list or "
                "the dict itself (insertion-ordered)")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self._in_merge_function() and _is_set_expression(node.iter):
            self._report(
                "RA002", node.iter,
                "comprehension over a set inside a merge function is order-"
                "nondeterministic across workers")
        self.generic_visit(node)


def lint_file(path: Path, root: Path) -> List[Finding]:
    """Lint one file; *root* anchors the path names used in findings."""
    relative = path.relative_to(root).as_posix()
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    linter = _Linter(relative, source.splitlines())
    linter.visit(tree)
    return linter.findings


def lint_tree(root: Path) -> List[Finding]:
    """Lint every ``*.py`` file under *root* (typically ``src/repro``)."""
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, root))
    return findings

"""Static verification of the engine: ``repro.analysis``.

Four analyses, none of which executes data:

* :mod:`~repro.analysis.intervals` — abstract interpretation of plans
  (dtype + value-interval inference, overflow/wrap/precision hazards,
  translation validation for the plan optimizer);
* :mod:`~repro.analysis.capabilities` — audit of every scheme's
  ``kernel_capabilities`` claims against the engine's actual dispatch;
* :mod:`~repro.analysis.forksafe` — structural fork-safety check for
  objects about to cross the multiprocess scan pipe;
* :mod:`~repro.analysis.lint` — AST-level engine-invariant lints over
  ``src/repro``, with a seeded corpus of historically-bad plans
  (:mod:`~repro.analysis.corpus`).

Run everything with ``python -m repro.analysis``.

Submodules are imported lazily: :mod:`~repro.analysis.forksafe` is imported
by :mod:`repro.engine.parallel`, and an eager import of
:mod:`~repro.analysis.capabilities` here would close an import cycle back
into the engine.
"""

from __future__ import annotations

import importlib

_SUBMODULES = ("intervals", "capabilities", "forksafe", "lint", "corpus")

__all__ = list(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

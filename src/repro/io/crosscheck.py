"""Cross-version format check: write a packed table, verify it elsewhere.

CI writes a packed file on the oldest supported Python and verifies it on
the newest (artifact handoff between jobs), proving the format is
bit-stable across interpreter and NumPy versions::

    python -m repro.io.crosscheck write  crosscheck-dir
    python -m repro.io.crosscheck verify crosscheck-dir

``write`` builds a deterministic multi-scheme table (fixed seed), saves it
packed, and records the ground truth next to it: per-column SHA-256 digests
of the materialised values and the answers of a few selective queries.
``verify`` re-opens the file cold, re-runs everything, and exits non-zero
on any mismatch — it also asserts the selective query mapped fewer bytes
than the file holds, so the laziness contract is checked cross-version too.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..engine import Between, Query
from ..schemes import (
    Cascade,
    Delta,
    DictionaryEncoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
)
from ..storage.table import Table
from .reader import open_packed_table
from .writer import write_packed_table

NUM_ROWS = 100_000
CHUNK_SIZE = 8_192
SEED = 20_180_416

PACKED_NAME = "dataset.rpk"
EXPECTED_NAME = "expected.json"


def build_table() -> Table:
    """A deterministic table exercising plain, segmented and cascaded schemes."""
    rng = np.random.default_rng(SEED)
    data = {
        "ship_date": np.sort(rng.integers(0, 1_000, NUM_ROWS)).astype(np.int64),
        "price": (np.cumsum(rng.integers(-4, 5, NUM_ROWS)) + 50_000).astype(np.int64),
        "quantity": rng.integers(0, 512, NUM_ROWS).astype(np.int64),
        "category": rng.integers(0, 40, NUM_ROWS).astype(np.int64),
    }
    return Table.from_pydict(
        data,
        schemes={
            "ship_date": Cascade(RunLengthEncoding(), {"values": Delta()}),
            "price": FrameOfReference(segment_length=256),
            "quantity": NullSuppression(),
            "category": DictionaryEncoding(),
        },
        chunk_size=CHUNK_SIZE,
    )


def _column_digest(values: np.ndarray) -> str:
    arr = np.ascontiguousarray(values.astype("<i8"))
    return hashlib.sha256(arr.tobytes()).hexdigest()


def _run_queries(table: Table) -> Dict[str, Any]:
    selective = (Query(table)
                 .filter(Between("ship_date", 100, 160))
                 .aggregate("price", "sum")
                 .run())
    broad = (Query(table)
             .filter(Between("quantity", 0, 255))
             .aggregate("quantity", "count")
             .run())
    return {
        "selective_sum_price": int(selective.scalars["sum(price)"]),
        "selective_rows": int(selective.row_count),
        "broad_count": int(broad.scalars["count(quantity)"]),
    }


def write_command(directory: Path) -> int:
    directory.mkdir(parents=True, exist_ok=True)
    table = build_table()
    path = write_packed_table(table, directory / PACKED_NAME)
    expected = {
        "written_on": {"python": platform.python_version(),
                       "numpy": np.__version__},
        "row_count": int(table.row_count),
        "columns": {name: _column_digest(table.column(name).materialize().values)
                    for name in table.column_names},
        "queries": _run_queries(table),
        "file_size": path.stat().st_size,
    }
    (directory / EXPECTED_NAME).write_text(json.dumps(expected, indent=2,
                                                      sort_keys=True))
    print(f"wrote {path} ({path.stat().st_size} bytes) on "
          f"Python {platform.python_version()} / NumPy {np.__version__}")
    return 0


def verify_command(directory: Path) -> int:
    expected = json.loads((directory / EXPECTED_NAME).read_text())
    packed = open_packed_table(directory / PACKED_NAME)
    failures: List[str] = []

    def check(label: str, got: Any, want: Any) -> None:
        if got != want:
            failures.append(f"{label}: got {got!r}, expected {want!r}")

    check("file_size", packed.file_size, expected["file_size"])
    check("row_count", packed.table.row_count, expected["row_count"])

    # Selective cold query first: it must not map the whole file.
    packed.reset_accounting()
    check("queries", _run_queries(packed.table), expected["queries"])
    if packed.bytes_mapped >= packed.file_size:
        failures.append(
            f"selective queries mapped {packed.bytes_mapped} bytes, not fewer "
            f"than the {packed.file_size}-byte file"
        )
    selective_bytes = packed.bytes_mapped

    for name, want in expected["columns"].items():
        got = _column_digest(packed.table.column(name).materialize().values)
        check(f"column {name!r} digest", got, want)

    if failures:
        print(f"cross-version verify FAILED on Python "
              f"{platform.python_version()} / NumPy {np.__version__}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"cross-version verify OK on Python {platform.python_version()} / "
          f"NumPy {np.__version__} (written on Python "
          f"{expected['written_on']['python']} / NumPy "
          f"{expected['written_on']['numpy']}); selective queries mapped "
          f"{selective_bytes}/{packed.file_size} bytes")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["write", "verify"])
    parser.add_argument("directory", type=Path,
                        help="directory holding dataset.rpk + expected.json")
    args = parser.parse_args(argv)
    if args.command == "write":
        return write_command(args.directory)
    return verify_command(args.directory)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Writing tables into the packed single-file format (v3).

The writer walks a :class:`~repro.storage.table.Table` column by column,
chunk by chunk, and streams every constituent column of every compressed
form into the file as one aligned *segment* of raw little-endian bytes.
The metadata — scheme descriptions, form parameters, chunk statistics and
the ``(offset, nbytes, dtype, length, crc32)`` of every segment —
accumulates into the JSON footer, written last, followed by the fixed
trailer.

Version 3 adds end-to-end integrity: every segment descriptor carries the
CRC32 of the segment's raw bytes (verified lazily by the reader on first
materialisation, and exhaustively by ``python -m repro.io.verify``), and
the footer carries a ``write_uuid`` that changes on every write — the
process backend's per-worker table cache keys on it, so an in-place
rewrite is never served from a stale mmap even when size and mtime agree.

Nothing is buffered beyond one segment's bytes: a table much larger than
memory could be streamed, chunk at a time, as long as its ``Table`` object
can be held (compressed) in memory.
"""

from __future__ import annotations

import uuid
from pathlib import Path
from typing import Any, BinaryIO, Dict, Union

import numpy as np

from .. import __version__
from ..errors import StorageError
from ..schemes.base import CompressedForm
from ..storage.chunk import ColumnChunk
from ..storage.column_store import StoredColumn
from ..storage.serialization import describe_scheme
from ..storage.table import Table
from .format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    SEGMENT_ALIGNMENT,
    aligned,
    encode_footer,
    json_safe,
    little_endian,
    pack_header,
    pack_trailer,
    segment_digest,
)

PathLike = Union[str, Path]

#: Conventional file suffix for packed tables (not enforced on read).
PACKED_SUFFIX = ".rpk"


class _SegmentStream:
    """Appends aligned segments to *handle*, tracking the running offset."""

    def __init__(self, handle: BinaryIO, offset: int, digests: bool = True):
        self._handle = handle
        self.offset = offset
        self.digests = digests

    def append(self, values: np.ndarray, name: str) -> Dict[str, Any]:
        """Write one constituent array; return its segment descriptor."""
        arr = np.ascontiguousarray(values)
        dtype = little_endian(arr.dtype)
        if dtype != arr.dtype:
            arr = arr.astype(dtype)
        start = aligned(self.offset)
        if start > self.offset:
            self._handle.write(b"\x00" * (start - self.offset))
        data = arr.tobytes()
        self._handle.write(data)
        self.offset = start + len(data)
        descriptor = {
            "name": name,
            "offset": start,
            "nbytes": len(data),
            "dtype": dtype.str,
            "length": int(arr.shape[0]),
        }
        if self.digests:
            descriptor["crc32"] = segment_digest(data)
        return descriptor


def _write_form(form: CompressedForm, stream: _SegmentStream) -> Dict[str, Any]:
    """Stream a compressed form's constituents; return its footer descriptor."""
    segments = {name: stream.append(col.values, name) for name, col in form.columns.items()}
    nested = {name: _write_form(sub, stream) for name, sub in form.nested.items()}
    return {
        "scheme": form.scheme,
        "parameters": json_safe(form.parameters),
        "original_length": int(form.original_length),
        "original_dtype": np.dtype(form.original_dtype).str,
        "segments": segments,
        "nested": nested,
    }


def _write_chunk(chunk: ColumnChunk, stream: _SegmentStream) -> Dict[str, Any]:
    return {
        "row_offset": int(chunk.row_offset),
        "row_count": int(chunk.row_count),
        "scheme": describe_scheme(chunk.scheme),
        "statistics": json_safe(vars(chunk.statistics)),
        "form": _write_form(chunk.form, stream),
    }


def _write_column(column: StoredColumn, stream: _SegmentStream) -> Dict[str, Any]:
    return {
        "name": column.name,
        "dtype": np.dtype(column.dtype).str,
        "chunks": [_write_chunk(chunk, stream) for chunk in column.iter_chunks()],
    }


def write_packed_table(table: Table, path: PathLike, digests: bool = True) -> Path:
    """Write *table* as one packed file at *path* (parents created).

    Returns the path written.  The write is atomic at the filesystem level:
    bytes go to ``<path>.tmp`` first and are renamed into place, so a
    crashed write never leaves a half-file under the final name.

    *digests* (default on) writes the version-3 integrity metadata:
    per-segment CRC32 digests and a footer ``write_uuid``.  ``digests=False``
    emits a digest-free version-2 file — the pre-integrity format — which
    exists so tests can pin that v2 files remain readable; there is no
    reason to use it otherwise.
    """
    if not isinstance(table, Table):
        raise StorageError("write_packed_table() expects a Table")
    version = FORMAT_VERSION if digests else 2
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(pack_header(version=version))
            stream = _SegmentStream(handle, HEADER_SIZE, digests=digests)
            columns = [_write_column(table.column(name), stream) for name in table.column_names]
            footer = {
                "format_version": version,
                "writer": f"repro {__version__}",
                "segment_alignment": SEGMENT_ALIGNMENT,
                "row_count": int(table.row_count),
                "columns": columns,
            }
            if digests:
                footer["write_uuid"] = uuid.uuid4().hex
            footer_bytes = encode_footer(footer)
            footer_offset = stream.offset
            handle.write(footer_bytes)
            handle.write(pack_trailer(footer_offset, len(footer_bytes)))
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    tmp_path.replace(path)
    return path

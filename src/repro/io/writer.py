"""Writing tables into the packed single-file format (v2).

The writer walks a :class:`~repro.storage.table.Table` column by column,
chunk by chunk, and streams every constituent column of every compressed
form into the file as one aligned *segment* of raw little-endian bytes.
The metadata — scheme descriptions, form parameters, chunk statistics and
the ``(offset, nbytes, dtype, length)`` of every segment — accumulates into
the JSON footer, written last, followed by the fixed trailer.

Nothing is buffered beyond one segment's bytes: a table much larger than
memory could be streamed, chunk at a time, as long as its ``Table`` object
can be held (compressed) in memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, BinaryIO, Dict, Union

import numpy as np

from .. import __version__
from ..errors import StorageError
from ..schemes.base import CompressedForm
from ..storage.chunk import ColumnChunk
from ..storage.column_store import StoredColumn
from ..storage.serialization import describe_scheme
from ..storage.table import Table
from .format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    SEGMENT_ALIGNMENT,
    aligned,
    encode_footer,
    json_safe,
    little_endian,
    pack_header,
    pack_trailer,
)

PathLike = Union[str, Path]

#: Conventional file suffix for packed tables (not enforced on read).
PACKED_SUFFIX = ".rpk"


class _SegmentStream:
    """Appends aligned segments to *handle*, tracking the running offset."""

    def __init__(self, handle: BinaryIO, offset: int):
        self._handle = handle
        self.offset = offset

    def append(self, values: np.ndarray, name: str) -> Dict[str, Any]:
        """Write one constituent array; return its segment descriptor."""
        arr = np.ascontiguousarray(values)
        dtype = little_endian(arr.dtype)
        if dtype != arr.dtype:
            arr = arr.astype(dtype)
        start = aligned(self.offset)
        if start > self.offset:
            self._handle.write(b"\x00" * (start - self.offset))
        data = arr.tobytes()
        self._handle.write(data)
        self.offset = start + len(data)
        return {
            "name": name,
            "offset": start,
            "nbytes": len(data),
            "dtype": dtype.str,
            "length": int(arr.shape[0]),
        }


def _write_form(form: CompressedForm, stream: _SegmentStream) -> Dict[str, Any]:
    """Stream a compressed form's constituents; return its footer descriptor."""
    segments = {name: stream.append(col.values, name) for name, col in form.columns.items()}
    nested = {name: _write_form(sub, stream) for name, sub in form.nested.items()}
    return {
        "scheme": form.scheme,
        "parameters": json_safe(form.parameters),
        "original_length": int(form.original_length),
        "original_dtype": np.dtype(form.original_dtype).str,
        "segments": segments,
        "nested": nested,
    }


def _write_chunk(chunk: ColumnChunk, stream: _SegmentStream) -> Dict[str, Any]:
    return {
        "row_offset": int(chunk.row_offset),
        "row_count": int(chunk.row_count),
        "scheme": describe_scheme(chunk.scheme),
        "statistics": json_safe(vars(chunk.statistics)),
        "form": _write_form(chunk.form, stream),
    }


def _write_column(column: StoredColumn, stream: _SegmentStream) -> Dict[str, Any]:
    return {
        "name": column.name,
        "dtype": np.dtype(column.dtype).str,
        "chunks": [_write_chunk(chunk, stream) for chunk in column.iter_chunks()],
    }


def write_packed_table(table: Table, path: PathLike) -> Path:
    """Write *table* as one packed file at *path* (parents created).

    Returns the path written.  The write is atomic at the filesystem level:
    bytes go to ``<path>.tmp`` first and are renamed into place, so a
    crashed write never leaves a half-file under the final name.
    """
    if not isinstance(table, Table):
        raise StorageError("write_packed_table() expects a Table")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(pack_header())
            stream = _SegmentStream(handle, HEADER_SIZE)
            columns = [_write_column(table.column(name), stream) for name in table.column_names]
            footer = {
                "format_version": FORMAT_VERSION,
                "writer": f"repro {__version__}",
                "segment_alignment": SEGMENT_ALIGNMENT,
                "row_count": int(table.row_count),
                "columns": columns,
            }
            footer_bytes = encode_footer(footer)
            footer_offset = stream.offset
            handle.write(footer_bytes)
            handle.write(pack_trailer(footer_offset, len(footer_bytes)))
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    tmp_path.replace(path)
    return path

"""Offline integrity verification of packed tables: ``python -m repro.io.verify``.

Walks a packed file's framing (header magic/version, trailer, footer JSON)
and then re-computes every segment's CRC32 against the digest recorded in
its descriptor — **without decompressing anything**: segments are raw
little-endian bytes, so verification is one sequential ``zlib.crc32`` pass
over each recorded byte range, independent of the compression scheme
stacked on top.  The reader does the same check lazily, segment by
segment, on first materialisation; this tool is the eager, exhaustive
variant for "is this artifact intact?" questions — backup validation, CI
cross-version checks, locating the damage after a
:class:`~repro.errors.CorruptionError`.

Usage::

    python -m repro.io.verify TABLE.rpk [MORE.rpk ...]
    python -m repro.io.verify CATALOG_DIR

Directories are treated as catalogs (every table named by
``catalog.json`` is verified).  Exit status is 0 when everything checks
out and 1 otherwise, with one line per problem naming the file, segment
and byte range.  Version-2 files carry no digests — they get framing
verification only, and the report says so.
"""

from __future__ import annotations

import argparse
import mmap
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

from ..errors import StorageError
from .format import (
    HEADER_SIZE,
    TRAILER_SIZE,
    decode_footer,
    segment_digest,
    unpack_header,
    unpack_trailer,
)

PathLike = Union[str, Path]

__all__ = ["VerifyReport", "verify_packed_file", "verify_path", "main"]


@dataclass
class VerifyReport:
    """The outcome of verifying one packed file."""

    path: Path
    format_version: int = 0
    segments_total: int = 0
    segments_verified: int = 0
    #: Human-readable problem lines; empty means the file is intact.
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def has_digests(self) -> bool:
        return self.format_version >= 3

    def summary(self) -> str:
        if not self.ok:
            return (f"CORRUPT {self.path}: {len(self.problems)} problem(s), "
                    f"{self.segments_verified}/{self.segments_total} "
                    f"segment(s) verified")
        if not self.has_digests:
            return (f"OK {self.path}: framing intact; format v"
                    f"{self.format_version} carries no segment digests "
                    f"(rewrite with repro.io.save_table for end-to-end "
                    f"integrity)")
        return (f"OK {self.path}: framing intact, "
                f"{self.segments_verified} segment digest(s) verified")


def _iter_segments(form: Dict[str, Any], where: str
                   ) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Every ``(context, segment descriptor)`` of a form, nested included."""
    for name, descriptor in form.get("segments", {}).items():
        yield f"{where}, segment {name!r}", descriptor
    for name, sub in form.get("nested", {}).items():
        yield from _iter_segments(sub, f"{where}, nested form {name!r}")


def verify_packed_file(path: PathLike) -> VerifyReport:
    """Verify one packed file's framing and every recorded segment digest."""
    path = Path(path)
    report = VerifyReport(path=path)
    try:
        with open(path, "rb") as handle:
            data = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except OSError as error:
        report.problems.append(f"{path}: cannot read file ({error})")
        return report
    with data:
        file_size = len(data)
        try:
            report.format_version = unpack_header(
                bytes(data[:HEADER_SIZE]), path)
            footer_offset, footer_length = unpack_trailer(
                bytes(data[max(file_size - TRAILER_SIZE, 0):]),
                file_size, path)
            footer = decode_footer(
                bytes(data[footer_offset:footer_offset + footer_length]),
                path)
        except StorageError as error:
            report.problems.append(str(error))
            return report
        for column in footer.get("columns", []):
            column_name = column.get("name", "?")
            for chunk in column.get("chunks", []):
                where = (f"column {column_name!r}, chunk @ row "
                         f"{chunk.get('row_offset', '?')}")
                for context, descriptor in _iter_segments(
                        chunk.get("form", {}), where):
                    report.segments_total += 1
                    offset = int(descriptor.get("offset", -1))
                    nbytes = int(descriptor.get("nbytes", -1))
                    end = offset + nbytes
                    if offset < HEADER_SIZE or nbytes < 0 \
                            or end > footer_offset:
                        report.problems.append(
                            f"{path}: {context} records byte range "
                            f"[{offset}, {end}) outside the segment region "
                            f"[{HEADER_SIZE}, {footer_offset})")
                        continue
                    expected = descriptor.get("crc32")
                    if expected is None:
                        continue  # digest-free (v2) descriptor
                    actual = segment_digest(data[offset:end])
                    if actual != int(expected):
                        report.problems.append(
                            f"{path}: {context} failed its integrity check "
                            f"(crc32 {actual:#010x}, recorded "
                            f"{int(expected):#010x}, byte range "
                            f"[{offset}, {end}))")
                        continue
                    report.segments_verified += 1
    return report


def verify_path(path: PathLike) -> List[VerifyReport]:
    """Verify a packed file, or every table of a catalog directory."""
    from .catalog import CATALOG_FILE, Catalog

    path = Path(path)
    if not path.is_dir():
        return [verify_packed_file(path)]
    if not (path / CATALOG_FILE).exists():
        report = VerifyReport(path=path)
        report.problems.append(
            f"{path}: directory is not a catalog (no {CATALOG_FILE})")
        return [report]
    catalog = Catalog(path, create=False)
    return [verify_packed_file(catalog.path_of(name))
            for name in catalog.names()]


def main(argv: Union[List[str], None] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.io.verify",
        description="Verify packed-table framing and per-segment CRC32 "
                    "digests without decompressing any data.")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="packed table file(s) and/or catalog "
                             "director(ies)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print only problems (still exits nonzero on "
                             "corruption)")
    arguments = parser.parse_args(argv)
    reports: List[VerifyReport] = []
    for path in arguments.paths:
        reports.extend(verify_path(path))
    failed = False
    for report in reports:
        if not arguments.quiet or not report.ok:
            print(report.summary())
        for problem in report.problems:
            failed = True
            print(f"  {problem}")
    if not arguments.quiet:
        intact = sum(report.ok for report in reports)
        print(f"{intact}/{len(reports)} file(s) intact")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Durable tables: the packed single-file format (v2) and the table catalog.

The paper's claim that compressed forms are *just named columns plus
scalars* extends naturally across the process boundary: on disk, a table is
the same bundle — constituent segments plus a metadata footer.  This
package makes that durable and **lazy**:

* :func:`save_table` writes a table as one packed file (aligned segments,
  JSON footer with scheme descriptions, chunk boundaries and persisted
  zone-map statistics, truncation-detecting trailer);
* :func:`load_table` / :func:`open_table` read it back *without touching
  segment bytes*: chunks carry mmap-backed lazy constituents, so a
  query's zone-map pruning decides chunk survival before any I/O and
  surviving chunks map only the constituent ranges actually used;
* :class:`Catalog` names many packed tables in one directory and opens
  them lazily.

:func:`load_table` keeps the deprecated v1 directory format readable
(:func:`migrate_v1` converts in one call), and raises a clear
:class:`~repro.errors.StorageError` — naming the path and the found vs.
expected versions — on truncated files and unknown format versions.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Union

from ..errors import StorageError
from ..storage.table import Table
from .catalog import CATALOG_FILE, Catalog
from .format import FORMAT_VERSION, MAGIC, SEGMENT_ALIGNMENT, TAIL_MAGIC, segment_digest
from .reader import (
    LazyConstituents,
    PackedForm,
    PackedTableFile,
    footer_fingerprint,
    open_packed_table,
)
from .writer import PACKED_SUFFIX, write_packed_table

PathLike = Union[str, Path]

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "TAIL_MAGIC",
    "SEGMENT_ALIGNMENT",
    "PACKED_SUFFIX",
    "CATALOG_FILE",
    "Catalog",
    "LazyConstituents",
    "PackedForm",
    "PackedTableFile",
    "footer_fingerprint",
    "segment_digest",
    "open_packed_table",
    "open_table",
    "write_packed_table",
    "save_table",
    "load_table",
    "migrate_v1",
]


def save_table(table: Table, path: PathLike) -> Path:
    """Persist *table* at *path* in the packed v2 format (one file)."""
    return write_packed_table(table, path)


def open_table(path: PathLike) -> PackedTableFile:
    """Open a packed table file lazily, exposing I/O accounting.

    Alias of :func:`open_packed_table`; use this when you want the
    :class:`PackedTableFile` handle (``.table``, ``.bytes_mapped``,
    ``.file_size``) rather than just the table.
    """
    return open_packed_table(path)


def load_table(path: PathLike) -> Table:
    """Load a table saved by :func:`save_table` (or the deprecated v1 format).

    * A packed file yields a lazy, mmap-backed table (see :func:`open_table`
      for the handle with I/O accounting).
    * A v1 directory (one subdirectory of ``.npy`` files per column) still
      loads — eagerly, as it always did — with a :class:`DeprecationWarning`
      suggesting :func:`migrate_v1`.

    Truncated files and unknown format versions raise
    :class:`~repro.errors.StorageError` naming the path and the found vs.
    expected version.
    """
    path = Path(path)
    if path.is_dir():
        if (path / "table.json").exists():
            from ..storage.serialization import read_table

            warnings.warn(
                f"{path} holds a v1 directory-format table; the v1 format is "
                "deprecated — convert it with repro.io.migrate_v1() to get "
                "single-file storage and mmap-lazy scans",
                DeprecationWarning,
                stacklevel=2,
            )
            return read_table(path)
        raise StorageError(
            f"{path}: directory is neither a packed table file nor a v1 "
            "table directory (no table.json)"
        )
    return open_packed_table(path).table


def migrate_v1(directory: PathLike, path: PathLike) -> Path:
    """Convert a deprecated v1 table directory into a packed v2 file."""
    from ..storage.serialization import read_table

    return save_table(read_table(directory), path)

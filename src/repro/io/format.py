"""On-disk layout of the packed single-file table format (version 2).

A packed table file is one flat byte stream::

    +--------------------------------------------------------------+
    | header (16 B): MAGIC "RPROPACK", version u32 LE, flags u32   |
    +--------------------------------------------------------------+
    | segment 0  (raw little-endian array bytes, 64-B aligned)     |
    | segment 1                                                    |
    | ...                                                          |
    +--------------------------------------------------------------+
    | footer: one JSON document (UTF-8)                            |
    +--------------------------------------------------------------+
    | trailer (24 B): footer offset u64 LE, footer length u64 LE,  |
    |                 TAIL_MAGIC "RPROPEND"                        |
    +--------------------------------------------------------------+

Every constituent column of every chunk's compressed form becomes one
*segment*: the raw bytes of the array, little-endian, padded so each segment
starts on a :data:`SEGMENT_ALIGNMENT` boundary.  Alignment means a reader can
hand out ``np.memmap`` views straight into the file (zero copy) for any
fixed-width dtype, and that a scan which prunes a chunk via its zone map
never touches that chunk's byte ranges at all.

The footer is self-describing: it records, per column and per chunk, the
scheme description (rebuildable through the scheme registry), the scalar
parameters of the compressed form, the persisted
:class:`~repro.storage.statistics.ColumnStatistics` (the zone maps scans
prune with *before* any segment I/O), and the ``(offset, nbytes, dtype,
length)`` of each constituent segment — recursively for nested (cascade)
forms.  The trailer makes truncation detectable in O(1): a file whose last
24 bytes do not end in :data:`TAIL_MAGIC` was cut short.

This module holds the constants and the footer (de)serialisation helpers;
:mod:`repro.io.writer` and :mod:`repro.io.reader` do the byte work.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict

import numpy as np

from ..errors import StorageError

#: Leading file magic — identifies a packed table file.
MAGIC = b"RPROPACK"

#: Trailing magic — its absence at EOF means the file was truncated.
TAIL_MAGIC = b"RPROPEND"

#: Version of the packed format written by this library.  Version 3 added
#: per-segment CRC32 digests (``crc32`` in each segment descriptor) and a
#: footer ``write_uuid``; version-2 files (digest-free) remain readable.
FORMAT_VERSION = 3

#: Format versions this library can read.
READABLE_VERSIONS = (2, 3)

#: Segment start alignment, in bytes.  64 covers every NumPy dtype's
#: natural alignment and one cache line.
SEGMENT_ALIGNMENT = 64

#: Fixed sizes of the framing regions.
HEADER_SIZE = len(MAGIC) + 4 + 4  # magic + version u32 + flags u32
TRAILER_SIZE = 8 + 8 + len(TAIL_MAGIC)  # footer offset + length + magic

_HEADER_STRUCT = struct.Struct("<8sII")
_TRAILER_STRUCT = struct.Struct("<QQ8s")


def pack_header(version: int = FORMAT_VERSION, flags: int = 0) -> bytes:
    """The 16-byte file header."""
    return _HEADER_STRUCT.pack(MAGIC, version, flags)


def pack_trailer(footer_offset: int, footer_length: int) -> bytes:
    """The 24-byte file trailer."""
    return _TRAILER_STRUCT.pack(footer_offset, footer_length, TAIL_MAGIC)


def unpack_header(data: bytes, path: Any) -> int:
    """Validate the header bytes and return the format version found.

    Raises :class:`StorageError` naming *path* when the magic is wrong or
    the version is not :data:`FORMAT_VERSION`.
    """
    if len(data) < HEADER_SIZE:
        raise StorageError(
            f"{path}: truncated packed table file "
            f"({len(data)} bytes is smaller than the {HEADER_SIZE}-byte header)"
        )
    magic, version, _flags = _HEADER_STRUCT.unpack(data[:HEADER_SIZE])
    if magic != MAGIC:
        raise StorageError(
            f"{path}: not a packed table file (leading magic {magic!r}, "
            f"expected {MAGIC!r})"
        )
    if version not in READABLE_VERSIONS:
        raise StorageError(
            f"{path}: unsupported packed format version {version}, "
            f"this library reads version {FORMAT_VERSION} "
            f"(and the digest-free version 2)"
        )
    return version


def unpack_trailer(data: bytes, file_size: int, path: Any) -> "tuple[int, int]":
    """Validate the trailer bytes and return ``(footer_offset, footer_length)``.

    Raises :class:`StorageError` naming *path* on a missing tail magic
    (truncation) or a footer range that does not fit inside the file.
    """
    if len(data) < TRAILER_SIZE:
        raise StorageError(
            f"{path}: truncated packed table file "
            f"({file_size} bytes is smaller than the {TRAILER_SIZE}-byte trailer)"
        )
    footer_offset, footer_length, tail = _TRAILER_STRUCT.unpack(data[-TRAILER_SIZE:])
    if tail != TAIL_MAGIC:
        raise StorageError(
            f"{path}: truncated or corrupt packed table file "
            f"(tail magic {tail!r}, expected {TAIL_MAGIC!r})"
        )
    footer_end = footer_offset + footer_length
    if footer_end + TRAILER_SIZE > file_size or footer_offset < HEADER_SIZE:
        raise StorageError(
            f"{path}: corrupt packed table file (footer range "
            f"[{footer_offset}, {footer_end}) does not fit "
            f"a {file_size}-byte file)"
        )
    return footer_offset, footer_length


def segment_digest(data: bytes) -> int:
    """The integrity digest of one segment's raw bytes (CRC32, unsigned).

    CRC32 is the only always-available checksum in the standard library
    that is fast enough for the hot read path (xxhash would be preferred
    but must not become a hard dependency); collisions are irrelevant here
    — the digest detects accidental corruption, not adversaries.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def aligned(offset: int, alignment: int = SEGMENT_ALIGNMENT) -> int:
    """The smallest multiple of *alignment* that is ``>= offset``."""
    return -(-offset // alignment) * alignment


def little_endian(dtype: np.dtype) -> np.dtype:
    """The little-endian flavour of *dtype* (identity for 1-byte dtypes)."""
    dtype = np.dtype(dtype)
    return dtype.newbyteorder("<") if dtype.byteorder == ">" else dtype


def json_safe(value: Any) -> Any:
    """Recursively convert NumPy scalars (in dicts/lists too) for ``json``.

    Shared with the v1 manifest writer so both formats serialise scalar
    parameters identically (one converter, no drift).
    """
    from ..storage.serialization import _json_safe

    return _json_safe(value)


def encode_footer(footer: Dict[str, Any]) -> bytes:
    """Serialise the footer document to bytes."""
    return json.dumps(json_safe(footer), sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_footer(data: bytes, path: Any) -> Dict[str, Any]:
    """Parse the footer document, raising :class:`StorageError` on garbage."""
    try:
        footer = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(f"{path}: corrupt packed table footer ({error})") from None
    if not isinstance(footer, dict) or "columns" not in footer:
        raise StorageError(f"{path}: packed table footer is not a table description")
    return footer

"""Reading packed table files with mmap-lazy constituent segments.

Opening a packed file (:class:`PackedTableFile`) reads and validates only
the fixed header, the fixed trailer, and the JSON footer.  The table it
exposes is a perfectly ordinary :class:`~repro.storage.table.Table` of
:class:`~repro.storage.column_store.StoredColumn` objects — but every
chunk's :class:`~repro.schemes.base.CompressedForm` is a :class:`PackedForm`
whose constituents are *handles into an* ``np.memmap`` rather than arrays:

* chunk statistics (the zone maps) come straight from the footer, so the
  query engine's pruning decisions cost **zero segment I/O**;
* a chunk that survives pruning maps only the byte ranges of the
  constituents actually touched — compressed-form pushdown that reads one
  constituent of three maps one segment of three;
* the mapped views are zero-copy (``Column.wrap_readonly`` over a read-only
  memmap slice) and cached per constituent, so repeated scans pay once.

The file keeps an I/O account (:attr:`PackedTableFile.bytes_mapped`): every
segment materialisation adds its ``nbytes``.  Tests and benchmarks use it to
assert the central property of the format — a selective scan maps fewer
bytes than the file holds.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from ..columnar.column import Column
from ..errors import CorruptionError, StorageError
from ..schemes.base import CompressedForm
from ..storage.chunk import ColumnChunk
from ..storage.column_store import StoredColumn
from ..storage.serialization import rebuild_scheme
from ..storage.statistics import ColumnStatistics
from ..storage.table import Table
from .format import (
    HEADER_SIZE,
    TRAILER_SIZE,
    decode_footer,
    segment_digest,
    unpack_header,
    unpack_trailer,
)

PathLike = Union[str, Path]

#: Read-fault injection hook, installed by
#: :func:`repro.engine.resilience.install_fault_plan` (``None`` = no faults).
#: When set, it is called as ``hook(path, descriptor, name, raw)`` after a
#: segment's bytes are mapped and before they are verified; it may raise (a
#: simulated truncated read), sleep (a slow read), or return replacement
#: bytes (a bit flip) — returning ``None`` leaves the segment untouched.
#: Injected corruption therefore hits the *same* digest check real
#: corruption would, which is the point of the chaos harness.
_FAULT_HOOK = None


class SegmentSource:
    """One open packed file: the shared memmap plus the I/O account.

    Thread-safe: the scan scheduler may fan chunks out over a thread pool
    (``Query.with_parallelism``), so memmap creation, segment loads and the
    accounting counters are guarded by one lock (loads are cheap — a slice
    and a view — so a single lock does not serialise any real work).
    """

    def __init__(self, path: Path):
        self.path = path
        self.file_size = path.stat().st_size
        self._mm: Optional[np.memmap] = None
        self._lock = threading.Lock()
        self.bytes_mapped = 0
        self.segments_mapped = 0

    def load(self, descriptor: Dict[str, Any], name: str,
             context: str = "") -> Column:
        """Materialise one segment as a zero-copy read-only column.

        A segment descriptor carrying a ``crc32`` digest (format version 3)
        is verified here, on first materialisation — the constituent cache
        in :class:`LazyConstituents` makes this once per segment per open
        file.  A mismatch raises :class:`~repro.errors.CorruptionError`
        naming the file, the owning column/chunk (*context*), the segment,
        and the corrupt byte range.
        """
        nbytes = int(descriptor["nbytes"])
        length = int(descriptor["length"])
        dtype = np.dtype(descriptor["dtype"])
        if nbytes != length * dtype.itemsize:
            raise StorageError(
                f"{self.path}: segment {name!r} declares {nbytes} bytes "
                f"for {length} values of {dtype} "
                f"({length * dtype.itemsize} expected)"
            )
        offset = int(descriptor["offset"])
        if length and offset + nbytes > self.file_size:
            raise StorageError(
                f"{self.path}: truncated packed table file (segment {name!r} "
                f"spans [{offset}, {offset + nbytes}) of a "
                f"{self.file_size}-byte file)"
            )
        with self._lock:
            self.bytes_mapped += nbytes
            self.segments_mapped += 1
            if length == 0:
                return Column.empty(dtype, name=name)
            if self._mm is None:
                self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
            raw = self._mm[offset:offset + nbytes]
        # Fault injection and digest verification run outside the lock: a
        # slow-read fault must not stall concurrent threads, and hashing is
        # the only non-trivial work on this path.
        hook = _FAULT_HOOK
        if hook is not None:
            replacement = hook(self.path, descriptor, name, raw)
            if replacement is not None:
                raw = np.frombuffer(replacement, dtype=np.uint8)
        expected = descriptor.get("crc32")
        if expected is not None:
            actual = segment_digest(raw)
            if actual != int(expected):
                where = f" of {context}" if context else ""
                raise CorruptionError(
                    f"{self.path}: segment {name!r}{where} failed its "
                    f"integrity check (crc32 {actual:#010x}, recorded "
                    f"{int(expected):#010x}, byte range "
                    f"[{offset}, {offset + nbytes}))"
                )
        return Column.wrap_readonly(raw.view(dtype), name=name)

    def uncharge(self, descriptor: Dict[str, Any]) -> None:
        """Back out one accounted load (a lost cache race, see
        :meth:`LazyConstituents.__getitem__`)."""
        with self._lock:
            self.bytes_mapped -= int(descriptor["nbytes"])
            self.segments_mapped -= 1

    def reset_accounting(self) -> None:
        with self._lock:
            self.bytes_mapped = 0
            self.segments_mapped = 0

    def close(self) -> None:
        """Drop this source's reference to the memmap.  Columns already
        materialised keep the mapping alive through their view's base, so
        existing zero-copy views stay valid."""
        with self._lock:
            self._mm = None


class LazyConstituents(Mapping):
    """A constituents mapping that maps segments on first access.

    Behaves like the plain ``Dict[str, Column]`` a
    :class:`~repro.schemes.base.CompressedForm` normally carries; iteration
    and membership are metadata-only, ``[]`` triggers (and caches) the
    segment mapping.
    """

    __slots__ = ("_source", "_segments", "_cache", "_context")

    def __init__(self, source: SegmentSource, segments: Dict[str, Dict[str, Any]],
                 context: str = ""):
        self._source = source
        self._segments = segments
        self._cache: Dict[str, Column] = {}
        self._context = context

    def __getitem__(self, name: str) -> Column:
        column = self._cache.get(name)
        if column is None:
            # Under parallel scans two threads may race here; both produce
            # equivalent read-only views, but only one may win the cache and
            # be charged to the I/O account (setdefault keeps it consistent).
            loaded = self._source.load(self._segments[name], name,
                                       self._context)
            column = self._cache.setdefault(name, loaded)
            if column is not loaded:
                self._source.uncharge(self._segments[name])
        return column

    def __iter__(self) -> Iterator[str]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, name: object) -> bool:
        # Mapping's default __contains__ calls __getitem__, which would map
        # the segment; membership must stay metadata-only.
        return name in self._segments

    def __repr__(self) -> str:
        mapped = sorted(self._cache)
        pending = sorted(set(self._segments) - set(self._cache))
        return f"<lazy constituents mapped={mapped} pending={pending}>"


class PackedForm(CompressedForm):
    """A compressed form whose constituents live in a packed file.

    Identical to :class:`~repro.schemes.base.CompressedForm` except that
    size accounting comes from the footer metadata instead of materialised
    buffers — asking a cold table for its compressed size must not read it.
    """

    def compressed_size_bytes(self) -> int:
        return self.__dict__["_packed_nbytes"]


def _form_nbytes(descriptor: Dict[str, Any]) -> int:
    size = sum(int(seg["nbytes"]) for seg in descriptor["segments"].values())
    size += sum(_form_nbytes(sub) for sub in descriptor["nested"].values())
    return size


def _build_form(descriptor: Dict[str, Any], source: SegmentSource,
                context: str = "") -> PackedForm:
    form = PackedForm(
        scheme=descriptor["scheme"],
        columns=LazyConstituents(source, descriptor["segments"], context),
        parameters=dict(descriptor["parameters"]),
        original_length=int(descriptor["original_length"]),
        original_dtype=np.dtype(descriptor["original_dtype"]),
        nested={name: _build_form(sub, source,
                                  f"{context}, nested form {name!r}")
                for name, sub in descriptor["nested"].items()},
    )
    form.__dict__["_packed_nbytes"] = _form_nbytes(descriptor)
    return form


def _build_chunk(descriptor: Dict[str, Any], source: SegmentSource,
                 path: Path, column: str = "?") -> ColumnChunk:
    try:
        scheme = rebuild_scheme(descriptor["scheme"])
        statistics = ColumnStatistics(**descriptor["statistics"])
    except (KeyError, TypeError) as error:
        raise StorageError(
            f"{path}: malformed chunk metadata in packed footer ({error})"
        ) from None
    row_offset = int(descriptor["row_offset"])
    context = f"column {column!r}, chunk @ row {row_offset}"
    return ColumnChunk(
        form=_build_form(descriptor["form"], source, context),
        scheme=scheme,
        statistics=statistics,
        row_offset=row_offset,
    )


class PackedTableFile:
    """An open packed table file: lazy table plus I/O accounting.

    Opening validates framing and parses the footer; no segment bytes are
    touched until a chunk's constituents are actually needed by a scan,
    a pushdown, or an explicit materialisation.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        if not self.path.exists():
            raise StorageError(f"{self.path}: no such packed table file")
        if self.path.is_dir():
            raise StorageError(
                f"{self.path}: is a directory, not a packed table file "
                "(directories hold the deprecated v1 format; use load_table)"
            )
        file_size = self.path.stat().st_size
        with open(self.path, "rb") as handle:
            head = handle.read(HEADER_SIZE)
            self.format_version = unpack_header(head, self.path)
            if file_size < HEADER_SIZE + TRAILER_SIZE:
                raise StorageError(
                    f"{self.path}: truncated packed table file "
                    f"({file_size} bytes cannot hold header and trailer)"
                )
            handle.seek(file_size - TRAILER_SIZE)
            trailer = handle.read(TRAILER_SIZE)
            footer_offset, footer_length = unpack_trailer(
                trailer, file_size, self.path)
            handle.seek(footer_offset)
            footer_bytes = handle.read(footer_length)
        if len(footer_bytes) != footer_length:
            raise StorageError(
                f"{self.path}: truncated packed table file (footer "
                f"declares {footer_length} bytes, {len(footer_bytes)} present)"
            )
        self.footer = decode_footer(footer_bytes, self.path)
        declared = self.footer.get("format_version")
        if declared != self.format_version:
            raise StorageError(
                f"{self.path}: footer format version {declared!r} disagrees "
                f"with header version {self.format_version}"
            )
        self._source = SegmentSource(self.path)
        self._table: Optional[Table] = None

    # ------------------------------------------------------------------ #
    # Metadata (no segment I/O)
    # ------------------------------------------------------------------ #

    @property
    def file_size(self) -> int:
        return self._source.file_size

    @property
    def row_count(self) -> int:
        return int(self.footer["row_count"])

    @property
    def column_names(self) -> List[str]:
        return [column["name"] for column in self.footer["columns"]]

    @property
    def writer(self) -> str:
        return str(self.footer.get("writer", "unknown"))

    @property
    def write_uuid(self) -> Optional[str]:
        """The unique id of the write that produced this file (v3+)."""
        value = self.footer.get("write_uuid")
        return None if value is None else str(value)

    @property
    def has_digests(self) -> bool:
        """Whether this file carries per-segment integrity digests."""
        return self.format_version >= 3

    # ------------------------------------------------------------------ #
    # I/O accounting
    # ------------------------------------------------------------------ #

    @property
    def bytes_mapped(self) -> int:
        """Total segment bytes materialised since open (or the last reset)."""
        return self._source.bytes_mapped

    @property
    def segments_mapped(self) -> int:
        return self._source.segments_mapped

    def reset_accounting(self) -> None:
        """Zero the I/O account (already-cached constituents stay cached)."""
        self._source.reset_accounting()

    # ------------------------------------------------------------------ #
    # The table
    # ------------------------------------------------------------------ #

    @property
    def table(self) -> Table:
        """The packed table, built lazily on first access."""
        if self._table is None:
            columns: Dict[str, StoredColumn] = {}
            for descriptor in self.footer["columns"]:
                name = descriptor["name"]
                chunks = [_build_chunk(chunk, self._source, self.path, name)
                          for chunk in descriptor["chunks"]]
                columns[name] = StoredColumn(
                    name, chunks, np.dtype(descriptor["dtype"]))
            table = Table(columns)
            if table.row_count != self.row_count:
                raise StorageError(
                    f"{self.path}: footer claims {self.row_count} rows, "
                    f"columns hold {table.row_count}"
                )
            self._table = table
        return self._table

    def close(self) -> None:
        self._source.close()

    def __enter__(self) -> "PackedTableFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PackedTableFile {self.path} v{self.format_version} "
                f"rows={self.row_count} columns={self.column_names} "
                f"mapped={self.bytes_mapped}/{self.file_size} B>")


def open_packed_table(path: PathLike) -> PackedTableFile:
    """Open a packed table file for lazy reading."""
    return PackedTableFile(path)


def footer_fingerprint(path: PathLike) -> int:
    """The CRC32 of the file's footer bytes — a cheap content fingerprint.

    A version-3 footer embeds a fresh ``write_uuid`` on every write, so two
    writes of even an identical table fingerprint differently.  The process
    backend mixes this into its per-worker table-cache key: size and mtime
    alone miss a same-size rewrite landing within the filesystem's mtime
    granularity (the stale-mmap race).  Only the trailer and footer are
    read — no segment I/O.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as handle:
        if file_size < HEADER_SIZE + TRAILER_SIZE:
            raise StorageError(
                f"{path}: truncated packed table file "
                f"({file_size} bytes cannot hold header and trailer)"
            )
        handle.seek(file_size - TRAILER_SIZE)
        trailer = handle.read(TRAILER_SIZE)
        footer_offset, footer_length = unpack_trailer(trailer, file_size, path)
        handle.seek(footer_offset)
        footer_bytes = handle.read(footer_length)
    return segment_digest(footer_bytes)

"""A directory-level catalog of packed tables.

A :class:`Catalog` names multiple packed tables inside one directory and
opens them lazily: ``catalog.json`` records, per table name, the file it
lives in plus the cheap metadata (row count, column names, on-disk size) a
tool needs to list tables *without* opening any of them.  Opening a table
parses only its footer; scanning it maps only the byte ranges its zone maps
admit — so a catalog over many large tables costs what you actually query.

::

    cat = Catalog("warehouse")
    cat.save("lineitem", table)          # writes warehouse/lineitem.rpk
    cat.names()                          # -> ["lineitem"]
    ds = dataset(cat.table("lineitem"))  # cold, lazy: footer only
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from ..errors import StorageError
from ..storage.table import Table
from .format import FORMAT_VERSION
from .reader import PackedTableFile
from .writer import PACKED_SUFFIX, write_packed_table

PathLike = Union[str, Path]

CATALOG_FILE = "catalog.json"
CATALOG_VERSION = 1

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class Catalog:
    """Named packed tables in one directory, opened lazily."""

    def __init__(self, root: PathLike, create: bool = True):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StorageError(f"{self.root}: catalog directory does not exist")
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._open: Dict[str, PackedTableFile] = {}
        self.refresh()

    # ------------------------------------------------------------------ #
    # The catalog file
    # ------------------------------------------------------------------ #

    @property
    def catalog_path(self) -> Path:
        return self.root / CATALOG_FILE

    def refresh(self) -> None:
        """Re-read ``catalog.json`` (picking up writes by other processes)."""
        if not self.catalog_path.exists():
            self._entries = {}
            return
        try:
            document = json.loads(self.catalog_path.read_text())
        except json.JSONDecodeError as error:
            raise StorageError(
                f"{self.catalog_path}: corrupt catalog file ({error})"
            ) from None
        version = document.get("catalog_version")
        if version != CATALOG_VERSION:
            raise StorageError(
                f"{self.catalog_path}: unsupported catalog version {version!r}, "
                f"this library reads version {CATALOG_VERSION}"
            )
        self._entries = dict(document.get("tables", {}))

    def _flush(self) -> None:
        document = {
            "catalog_version": CATALOG_VERSION,
            "tables": {name: self._entries[name] for name in sorted(self._entries)},
        }
        tmp_path = self.catalog_path.with_name(self.catalog_path.name + ".tmp")
        tmp_path.write_text(json.dumps(document, indent=2, sort_keys=True))
        tmp_path.replace(self.catalog_path)

    # ------------------------------------------------------------------ #
    # Listing (no table I/O at all)
    # ------------------------------------------------------------------ #

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def info(self, name: str) -> Dict[str, Any]:
        """The catalog entry of *name*: file, rows, columns, size — metadata
        only, nothing is opened."""
        try:
            return dict(self._entries[name])
        except KeyError:
            raise StorageError(
                f"catalog {self.root} has no table {name!r}; "
                f"tables: {self.names()}"
            ) from None

    def path_of(self, name: str) -> Path:
        return self.root / self.info(name)["file"]

    # ------------------------------------------------------------------ #
    # Saving and opening
    # ------------------------------------------------------------------ #

    def save(self, name: str, table: Table, overwrite: bool = True) -> Path:
        """Write *table* as ``<root>/<name>.rpk`` and register it."""
        if not _NAME_PATTERN.match(name):
            raise StorageError(
                f"invalid table name {name!r}: use letters, digits, '_', '-', '.'"
            )
        # Merge the latest on-disk listing first so a save never drops
        # entries written by another Catalog instance or process (the
        # read-modify-write below is best-effort, not a file lock).
        self.refresh()
        if not overwrite and name in self._entries:
            raise StorageError(
                f"catalog {self.root} already has a table {name!r}"
            )
        file_name = name + PACKED_SUFFIX
        path = write_packed_table(table, self.root / file_name)
        stale = self._open.pop(name, None)
        if stale is not None:
            stale.close()
        self._entries[name] = {
            "file": file_name,
            "format_version": FORMAT_VERSION,
            "row_count": int(table.row_count),
            "columns": list(table.column_names),
            "file_size": path.stat().st_size,
        }
        self._flush()
        return path

    def open(self, name: str) -> PackedTableFile:
        """The open packed file for *name* (footer-only; cached per name)."""
        handle = self._open.get(name)
        if handle is None:
            handle = PackedTableFile(self.path_of(name))
            self._open[name] = handle
        return handle

    def table(self, name: str) -> Table:
        """The (lazy, mmap-backed) table registered under *name*."""
        return self.open(name).table

    def drop(self, name: str) -> None:
        """Forget *name* and delete its file."""
        self.refresh()
        path = self.path_of(name)
        handle = self._open.pop(name, None)
        if handle is not None:
            handle.close()
        del self._entries[name]
        self._flush()
        if path.exists():
            path.unlink()

    def close(self) -> None:
        for handle in self._open.values():
            handle.close()
        self._open.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Catalog {self.root} tables={self.names()}>"

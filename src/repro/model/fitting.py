"""Fitting low-dimensional column models.

The paper's §II-B reads FOR as *"the evaluation of a step function plus
narrow residuals"* and immediately suggests richer models: piecewise-linear
functions ("an offset from a diagonal line at some slope"), and more
generally stepwise low-degree polynomials or splines.  It also notes the
compression-side consequence: richer models need curve fitting rather than
"taking the minimum or the middle of the range of values".

This module is that fitting code.  Every fit returns a :class:`SegmentedModel`
— per-segment coefficients plus a vectorised ``predict`` — and the schemes in
:mod:`repro.schemes` store the model coefficients and (for lossless use) the
integer residuals.

All models use fixed-length segments, matching the paper's framing of FOR as
a fixed-segment-length scheme.  Fits are vectorised across segments wherever
possible (closed-form step and linear fits); the general polynomial fit
falls back to a per-segment least-squares loop, which is acceptable because
the number of segments is ``n / segment_length``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Tuple

import numpy as np

from ..columnar.column import Column
from ..errors import ModelFitError

ReferencePolicy = Literal["min", "mid", "first", "mean"]


def _segment_bounds(n: int, segment_length: int) -> Tuple[int, int]:
    """Number of segments and the length of the (possibly shorter) last one."""
    if segment_length <= 0:
        raise ModelFitError(f"segment_length must be positive, got {segment_length}")
    if n == 0:
        return 0, 0
    num_segments = (n + segment_length - 1) // segment_length
    last_length = n - (num_segments - 1) * segment_length
    return num_segments, last_length


def segment_index(n: int, segment_length: int) -> np.ndarray:
    """The segment id of every position (``position // segment_length``)."""
    if segment_length <= 0:
        raise ModelFitError(f"segment_length must be positive, got {segment_length}")
    return np.arange(n, dtype=np.int64) // segment_length


def position_in_segment(n: int, segment_length: int) -> np.ndarray:
    """The within-segment position of every element (``position % segment_length``)."""
    if segment_length <= 0:
        raise ModelFitError(f"segment_length must be positive, got {segment_length}")
    return np.arange(n, dtype=np.int64) % segment_length


@dataclass
class SegmentedModel:
    """A per-segment polynomial model of a column.

    Attributes
    ----------
    coefficients:
        Array of shape ``(num_segments, degree + 1)``; ``coefficients[s, k]``
        is the coefficient of ``x**k`` for segment ``s``, where ``x`` is the
        *within-segment* position.  Degree 0 is a step function, degree 1 a
        piecewise-linear model, and so on.
    segment_length:
        Fixed segment length the model was fitted with.
    length:
        Length of the modelled column.
    degree:
        Polynomial degree (``coefficients.shape[1] - 1``).
    """

    coefficients: np.ndarray
    segment_length: int
    length: int

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=np.float64)
        if self.coefficients.ndim != 2:
            raise ModelFitError("coefficients must be a (segments, degree+1) matrix")

    @property
    def degree(self) -> int:
        return int(self.coefficients.shape[1] - 1)

    @property
    def num_segments(self) -> int:
        return int(self.coefficients.shape[0])

    def predict(self, round_to_int: bool = True) -> np.ndarray:
        """Evaluate the model at every position of the original column.

        With ``round_to_int=True`` (the default) the prediction is rounded to
        the nearest integer — the form used by the lossless model+residual
        schemes, whose residuals are ``data - round(prediction)``.
        """
        n = self.length
        if n == 0:
            return np.empty(0, dtype=np.int64 if round_to_int else np.float64)
        seg = segment_index(n, self.segment_length)
        pos = position_in_segment(n, self.segment_length).astype(np.float64)
        # Horner evaluation across all elements at once.
        prediction = np.zeros(n, dtype=np.float64)
        for k in range(self.degree, -1, -1):
            prediction = prediction * pos + self.coefficients[seg, k]
        if round_to_int:
            return np.rint(prediction).astype(np.int64)
        return prediction

    def residuals(self, values: np.ndarray) -> np.ndarray:
        """Integer residuals ``values - round(prediction)``."""
        values = np.asarray(values)
        if len(values) != self.length:
            raise ModelFitError(
                f"model describes {self.length} values, got {len(values)} to diff against"
            )
        return values.astype(np.int64) - self.predict(round_to_int=True)

    def parameters_count(self) -> int:
        """Number of scalar parameters the model stores (its 'dimension')."""
        return int(self.coefficients.size)


def _as_values(column) -> np.ndarray:
    values = column.values if isinstance(column, Column) else np.asarray(column)
    if values.ndim != 1:
        raise ModelFitError("model fitting requires a one-dimensional column")
    return values


# --------------------------------------------------------------------------- #
# Degree-0: step functions (FOR references)
# --------------------------------------------------------------------------- #

def fit_step_function(column, segment_length: int,
                      policy: ReferencePolicy = "min") -> SegmentedModel:
    """Fit a fixed-segment-length step function (degree-0 model).

    *policy* selects the per-segment constant:

    * ``"min"`` — the segment minimum; residuals are non-negative, which is
      the classic FOR reference choice;
    * ``"mid"`` — the midpoint of the segment's range; halves the residual
      magnitude at the cost of signed residuals ("taking ... the middle of
      the range of values", §II-B);
    * ``"first"`` — the segment's first element (cheapest to compute, and the
      natural choice for sorted data);
    * ``"mean"`` — the rounded segment mean (minimises L2, not L∞).
    """
    values = _as_values(column)
    n = len(values)
    num_segments, last_length = _segment_bounds(n, segment_length)
    if num_segments == 0:
        return SegmentedModel(np.empty((0, 1)), segment_length, 0)

    refs = np.empty(num_segments, dtype=np.float64)
    full = values[: (num_segments - 1) * segment_length].reshape(-1, segment_length) \
        if num_segments > 1 else values[:0].reshape(0, segment_length)
    tail = values[(num_segments - 1) * segment_length:]

    def per_segment(reducer_full, reducer_tail):
        if num_segments > 1:
            refs[:-1] = reducer_full(full)
        refs[-1] = reducer_tail(tail)

    if policy == "min":
        per_segment(lambda m: m.min(axis=1), lambda t: t.min())
    elif policy == "mid":
        per_segment(lambda m: (m.min(axis=1) + m.max(axis=1)) / 2.0,
                    lambda t: (t.min() + t.max()) / 2.0)
    elif policy == "first":
        per_segment(lambda m: m[:, 0], lambda t: t[0])
    elif policy == "mean":
        per_segment(lambda m: np.rint(m.mean(axis=1)), lambda t: np.rint(t.mean()))
    else:
        raise ModelFitError(f"unknown reference policy {policy!r}")

    return SegmentedModel(refs.reshape(-1, 1), segment_length, n)


# --------------------------------------------------------------------------- #
# Degree-1: piecewise-linear models
# --------------------------------------------------------------------------- #

def fit_piecewise_linear(column, segment_length: int) -> SegmentedModel:
    """Fit a least-squares line per segment (degree-1 model).

    The fit is closed-form and vectorised across all full segments:
    ``slope = cov(x, y) / var(x)``, ``intercept = mean(y) - slope * mean(x)``
    with ``x`` the within-segment position.  Segments of length 1 (and the
    possibly-short last segment) are handled separately.
    """
    values = _as_values(column).astype(np.float64)
    n = len(values)
    num_segments, last_length = _segment_bounds(n, segment_length)
    if num_segments == 0:
        return SegmentedModel(np.empty((0, 2)), segment_length, 0)

    coeffs = np.zeros((num_segments, 2), dtype=np.float64)
    x = np.arange(segment_length, dtype=np.float64)
    x_mean = x.mean()
    x_var = ((x - x_mean) ** 2).sum()

    if num_segments > 1:
        full = values[: (num_segments - 1) * segment_length].reshape(-1, segment_length)
        y_mean = full.mean(axis=1)
        if x_var > 0:
            slope = ((full - y_mean[:, None]) * (x - x_mean)[None, :]).sum(axis=1) / x_var
        else:
            slope = np.zeros(num_segments - 1)
        intercept = y_mean - slope * x_mean
        coeffs[:-1, 0] = intercept
        coeffs[:-1, 1] = slope

    tail = values[(num_segments - 1) * segment_length:]
    if last_length == 1:
        coeffs[-1] = (tail[0], 0.0)
    else:
        xt = np.arange(last_length, dtype=np.float64)
        xt_mean, yt_mean = xt.mean(), tail.mean()
        xt_var = ((xt - xt_mean) ** 2).sum()
        slope_t = ((tail - yt_mean) * (xt - xt_mean)).sum() / xt_var if xt_var > 0 else 0.0
        coeffs[-1] = (yt_mean - slope_t * xt_mean, slope_t)

    return SegmentedModel(coeffs, segment_length, n)


# --------------------------------------------------------------------------- #
# Degree-d: piecewise-polynomial models
# --------------------------------------------------------------------------- #

def fit_piecewise_polynomial(column, segment_length: int, degree: int) -> SegmentedModel:
    """Fit a least-squares polynomial of *degree* per segment.

    Degrees 0 and 1 delegate to the specialised (vectorised) fits; higher
    degrees run one small least-squares problem per segment.
    """
    if degree < 0:
        raise ModelFitError(f"polynomial degree must be non-negative, got {degree}")
    if degree == 0:
        return fit_step_function(column, segment_length, policy="mean")
    if degree == 1:
        return fit_piecewise_linear(column, segment_length)

    values = _as_values(column).astype(np.float64)
    n = len(values)
    num_segments, __ = _segment_bounds(n, segment_length)
    if num_segments == 0:
        return SegmentedModel(np.empty((0, degree + 1)), segment_length, 0)

    coeffs = np.zeros((num_segments, degree + 1), dtype=np.float64)
    for s in range(num_segments):
        start = s * segment_length
        seg_values = values[start: start + segment_length]
        x = np.arange(len(seg_values), dtype=np.float64)
        effective_degree = min(degree, len(seg_values) - 1)
        if effective_degree <= 0:
            coeffs[s, 0] = seg_values[0]
            continue
        # numpy.polynomial convention: coefficients in increasing order of power.
        fitted = np.polynomial.polynomial.polyfit(x, seg_values, effective_degree)
        coeffs[s, : len(fitted)] = fitted
    return SegmentedModel(coeffs, segment_length, n)


def fit_model(column, segment_length: int, degree: int = 0,
              policy: ReferencePolicy = "min") -> SegmentedModel:
    """Convenience dispatcher: degree 0 honours *policy*, higher degrees fit LSQ."""
    if degree == 0:
        return fit_step_function(column, segment_length, policy=policy)
    return fit_piecewise_polynomial(column, segment_length, degree)

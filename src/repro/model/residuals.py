"""Residual analysis: choosing how to encode the "noise" around a model.

Lessons-learned 2 of the paper: *"Some compression schemes separate a
simpler, coarser, inaccurate representation of the data from finer, local,
noise-like complementary features."*  Given a fitted model and the data, the
question is how to encode the complementary features (the residuals), and
the answer depends on which metric the data is "close" to the model in:

* small **L∞** distance → fixed-width offsets (plain FOR / NS residuals);
* small **L0** distance → patches (store the few divergent positions);
* small **bit-cost** distance but occasional large deviations → variable
  width residuals.

:class:`ResidualProfile` computes the statistics a planner needs to make
that call, and :func:`recommend_residual_encoding` turns them into a
recommendation used by the compression advisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal

import numpy as np

from ..columnar.column import Column
from .fitting import SegmentedModel

ResidualEncoding = Literal["none", "fixed_width", "patched", "variable_width"]


@dataclass
class ResidualProfile:
    """Summary statistics of the residuals of a model fit.

    Attributes
    ----------
    count:
        Number of residuals (column length).
    nonzero:
        Number of non-zero residuals (the L0 distance to the model).
    max_magnitude:
        Largest absolute residual (the L∞ distance to the model).
    fixed_width_bits:
        Bits per value a fixed-width signed offset column would need.
    total_bit_cost:
        The paper's product bit-cost metric over all residuals.
    width_histogram:
        Mapping from bit width to the number of residuals needing exactly
        that many (magnitude) bits; width 0 counts exact matches.
    """

    count: int
    nonzero: int
    max_magnitude: int
    fixed_width_bits: int
    total_bit_cost: int
    width_histogram: Dict[int, int]

    @property
    def l0_fraction(self) -> float:
        """Fraction of positions that deviate from the model at all."""
        return self.nonzero / self.count if self.count else 0.0

    def fixed_width_total_bits(self) -> int:
        """Total bits under a fixed-width residual encoding."""
        return self.count * self.fixed_width_bits

    def patched_total_bits(self, value_bits: int, position_bits: int) -> int:
        """Total bits under a patch encoding: each divergent position stores
        its position and its full value; non-divergent positions cost nothing
        beyond the model."""
        return self.nonzero * (value_bits + position_bits)

    def variable_width_total_bits(self, width_field_bits: int = 3) -> int:
        """Total bits under a per-value variable-width encoding, charging
        *width_field_bits* per value for the width bookkeeping (which the
        paper elides "for simplicity of presentation" but a real encoding
        must pay)."""
        return self.total_bit_cost + self.count * width_field_bits


def profile_residuals(residuals) -> ResidualProfile:
    """Compute a :class:`ResidualProfile` for an array/column of integer residuals."""
    values = residuals.values if isinstance(residuals, Column) else np.asarray(residuals)
    values = values.astype(np.int64, copy=False)
    count = int(values.size)
    if count == 0:
        return ResidualProfile(0, 0, 0, 1, 0, {})
    magnitude = np.abs(values)
    nonzero = int(np.count_nonzero(magnitude))
    max_magnitude = int(magnitude.max())
    fixed_width = max(1, max_magnitude.bit_length() + 1)  # sign bit included
    nz = magnitude[magnitude > 0]
    if nz.size:
        widths = np.floor(np.log2(nz.astype(np.float64))).astype(np.int64) + 1
        total_bit_cost = int(widths.sum())
        histogram_values, histogram_counts = np.unique(widths, return_counts=True)
        histogram = {int(w): int(c) for w, c in zip(histogram_values, histogram_counts)}
    else:
        total_bit_cost = 0
        histogram = {}
    histogram[0] = count - nonzero
    return ResidualProfile(
        count=count,
        nonzero=nonzero,
        max_magnitude=max_magnitude,
        fixed_width_bits=fixed_width,
        total_bit_cost=total_bit_cost,
        width_histogram=histogram,
    )


def profile_model_fit(model: SegmentedModel, column) -> ResidualProfile:
    """Profile the residuals of *model* against *column*."""
    values = column.values if isinstance(column, Column) else np.asarray(column)
    return profile_residuals(model.residuals(values))


def recommend_residual_encoding(
    profile: ResidualProfile,
    value_bits: int = 64,
    position_bits: int = 32,
    patch_threshold: float = 0.05,
) -> ResidualEncoding:
    """Recommend how to encode residuals with the given profile.

    The rules mirror the paper's metric-to-scheme correspondence:

    * all residuals zero → the model alone is lossless (``"none"``);
    * few positions deviate (L0 fraction below *patch_threshold*) → patches;
    * otherwise choose fixed-width or variable-width offsets, whichever
      costs fewer total bits (including the width bookkeeping for the
      variable-width option).
    """
    if profile.count == 0 or profile.nonzero == 0:
        return "none"
    if profile.l0_fraction <= patch_threshold:
        patched = profile.patched_total_bits(value_bits, position_bits)
        if patched < profile.fixed_width_total_bits():
            return "patched"
    fixed = profile.fixed_width_total_bits()
    variable = profile.variable_width_total_bits()
    return "fixed_width" if fixed <= variable else "variable_width"

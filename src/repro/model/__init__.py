"""Column models, metrics and residual analysis.

The paper's §II-B argues that FOR-like schemes split a column into a coarse
low-dimensional *model* and noise-like *residuals*, and that the metric in
which the data is close to the model dictates the residual encoding.  This
package contains:

* :mod:`repro.model.metrics` — the L∞, L0, L1 and bit-cost metrics;
* :mod:`repro.model.fitting` — step-function, piecewise-linear and
  piecewise-polynomial model fitting over fixed-length segments;
* :mod:`repro.model.residuals` — residual profiling and the
  metric-to-residual-encoding recommendation used by the compression advisor.
"""

from .metrics import (
    METRICS,
    bit_cost,
    bit_cost_distance,
    distance,
    l0_distance,
    l1_distance,
    linf_distance,
    residual_bit_width,
)
from .fitting import (
    SegmentedModel,
    fit_model,
    fit_piecewise_linear,
    fit_piecewise_polynomial,
    fit_step_function,
    position_in_segment,
    segment_index,
)
from .residuals import (
    ResidualProfile,
    profile_model_fit,
    profile_residuals,
    recommend_residual_encoding,
)

__all__ = [
    "METRICS",
    "bit_cost",
    "bit_cost_distance",
    "distance",
    "l0_distance",
    "l1_distance",
    "linf_distance",
    "residual_bit_width",
    "SegmentedModel",
    "fit_model",
    "fit_piecewise_linear",
    "fit_piecewise_polynomial",
    "fit_step_function",
    "position_in_segment",
    "segment_index",
    "ResidualProfile",
    "profile_model_fit",
    "profile_residuals",
    "recommend_residual_encoding",
]

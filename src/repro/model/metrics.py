"""Column distance metrics.

Section II-B of the paper frames a family of compression schemes as
*a coarse low-dimensional model plus residuals*, where the choice of metric
determines what kind of residual encoding is appropriate:

* the **L∞ metric** — the largest absolute deviation — determines the fixed
  offset width of FOR (all residuals must fit in the offset width);
* the **L0 metric** — the number of positions that deviate at all — leads to
  *patched* schemes, which store the few divergent elements verbatim;
* the **bit-cost (product) metric** — the total number of bits needed to
  write down each deviation — leads to variable-width residual encodings.

This module implements those metrics over columns (and raw NumPy arrays), so
model-fitting code and the compression planner can reason about which
residual scheme a given model/data pair calls for.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..columnar.column import Column
from ..errors import ColumnError

ArrayOrColumn = Union[np.ndarray, Column]


def _values(data: ArrayOrColumn) -> np.ndarray:
    return data.values if isinstance(data, Column) else np.asarray(data)


def _check_same_length(x: np.ndarray, y: np.ndarray, metric: str) -> None:
    if x.shape != y.shape:
        raise ColumnError(
            f"{metric} metric requires equal-length columns, got {x.shape} and {y.shape}"
        )


def linf_distance(x: ArrayOrColumn, y: ArrayOrColumn) -> float:
    """L∞ distance: the maximum absolute element-wise deviation.

    This is the quantity that bounds the FOR/NS offset width: if the model is
    within L∞ distance ``d`` of the data, offsets fit in ``bits(d)`` bits.

    >>> linf_distance(np.array([1, 2, 3]), np.array([1, 5, 3]))
    3.0
    """
    xv, yv = _values(x), _values(y)
    _check_same_length(xv, yv, "L-infinity")
    if xv.size == 0:
        return 0.0
    return float(np.abs(xv.astype(np.float64) - yv.astype(np.float64)).max())


def l0_distance(x: ArrayOrColumn, y: ArrayOrColumn) -> int:
    """L0 distance: the number of positions at which the columns differ.

    The paper's patched-model extension targets columns whose data is
    "really" a step function except at a few positions — i.e. columns at a
    small L0 distance from the model.

    >>> l0_distance(np.array([1, 2, 3]), np.array([1, 5, 3]))
    1
    """
    xv, yv = _values(x), _values(y)
    _check_same_length(xv, yv, "L0")
    return int(np.count_nonzero(xv != yv))


def l1_distance(x: ArrayOrColumn, y: ArrayOrColumn) -> float:
    """L1 distance: the sum of absolute deviations (useful for diagnostics)."""
    xv, yv = _values(x), _values(y)
    _check_same_length(xv, yv, "L1")
    if xv.size == 0:
        return 0.0
    return float(np.abs(xv.astype(np.float64) - yv.astype(np.float64)).sum())


def bit_cost(value: Union[int, np.integer]) -> int:
    """The paper's per-element bit cost: ``d(x, y) = ceil(log2(|x-y| + 1))``.

    Returns 0 when the deviation is 0 (x == y).

    >>> [bit_cost(v) for v in (0, 1, 2, 3, 4, 255, 256)]
    [0, 1, 2, 2, 3, 8, 9]
    """
    magnitude = abs(int(value))
    return magnitude.bit_length()


def bit_cost_distance(x: ArrayOrColumn, y: ArrayOrColumn) -> int:
    """Product bit-cost metric: total bits needed to write down every deviation.

    ``d(x, y) = Σ_i ceil(log2(|x_i - y_i| + 1))``, the metric the paper
    associates with variable-width residual encodings.  (As in the paper, the
    per-element width bookkeeping is not charged here.)
    """
    xv, yv = _values(x), _values(y)
    _check_same_length(xv, yv, "bit-cost")
    if xv.size == 0:
        return 0
    deviation = np.abs(xv.astype(np.int64) - yv.astype(np.int64))
    nonzero = deviation[deviation > 0]
    if nonzero.size == 0:
        return 0
    # ceil(log2(m + 1)) == bit_length(m) for m >= 1.
    bits = np.floor(np.log2(nonzero.astype(np.float64))).astype(np.int64) + 1
    return int(bits.sum())


def residual_bit_width(x: ArrayOrColumn, y: ArrayOrColumn, signed: bool = True) -> int:
    """The fixed bit width a FOR-style offset column would need for ``x - y``.

    With ``signed=False`` the residuals are assumed non-negative (model is a
    per-segment minimum); otherwise a sign bit is included.
    """
    xv, yv = _values(x), _values(y)
    _check_same_length(xv, yv, "residual width")
    if xv.size == 0:
        return 1
    residual = xv.astype(np.int64) - yv.astype(np.int64)
    if not signed:
        if residual.min() < 0:
            raise ColumnError("residuals are negative but signed=False was requested")
        top = int(residual.max())
        return max(1, top.bit_length())
    lo, hi = int(residual.min()), int(residual.max())
    magnitude = max(abs(lo), abs(hi))
    return max(1, magnitude.bit_length() + 1)


METRICS = {
    "linf": linf_distance,
    "l0": l0_distance,
    "l1": l1_distance,
    "bit_cost": bit_cost_distance,
}


def distance(metric: str, x: ArrayOrColumn, y: ArrayOrColumn) -> float:
    """Dispatch to a named metric (``"linf"``, ``"l0"``, ``"l1"``, ``"bit_cost"``)."""
    if metric not in METRICS:
        raise ColumnError(f"unknown metric {metric!r}; known metrics: {sorted(METRICS)}")
    return METRICS[metric](x, y)

"""repro — decomposable and re-composable lightweight compression for columnar DBMSes.

A from-scratch reproduction of Rozenberg, *"Decomposing and re-composing
lightweight compression schemes — and why it matters"* (ICDE 2018), built as
a usable Python library:

* :mod:`repro.columnar` — columns, the columnar operator algebra, and plans
  (decompression as data);
* :mod:`repro.schemes` — the scheme zoo (NS, DELTA, RLE, RPE, FOR, DICT,
  PFOR, VARWIDTH, LINEAR, POLY, STEPFUNCTION), composition (``Cascade``) and
  the paper's decomposition identities;
* :mod:`repro.model` — metrics (L∞ / L0 / bit-cost), model fitting, residual
  analysis;
* :mod:`repro.storage` — chunks, stored columns, tables, statistics;
* :mod:`repro.io` — the packed single-file table format (mmap-lazy scans)
  and the directory-level table catalog;
* :mod:`repro.engine` — predicates, compressed-form pushdown, operators,
  queries;
* :mod:`repro.api` — the lazy expression DSL (``col``/``lit``), logical
  plans, the optimizer, and the :class:`~repro.api.Dataset` facade;
* :mod:`repro.planner` — cost model, compression advisor, partial
  decompression planning;
* :mod:`repro.workloads` — synthetic data generators;
* :mod:`repro.bench` — the benchmark harness behind experiments E1–E10.

Quickstart
----------
>>> from repro import Column, schemes
>>> col = Column([3, 3, 3, 7, 7, 9])
>>> rle = schemes.RunLengthEncoding()
>>> form = rle.compress(col)
>>> rle.decompress(form).to_pylist()
[3, 3, 3, 7, 7, 9]
"""

__version__ = "1.1.0"

from .columnar import Column, Plan, PlanBuilder
from . import columnar, schemes, model, storage, engine, planner, workloads, bench
from . import api
from . import io
from .errors import ReproError

__all__ = [
    "Column",
    "Plan",
    "PlanBuilder",
    "ReproError",
    "columnar",
    "schemes",
    "model",
    "storage",
    "io",
    "engine",
    "api",
    "planner",
    "workloads",
    "bench",
    "__version__",
]

"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses distinguish misuse of
the columnar algebra, malformed compressed forms, planning failures, and
storage-level problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ColumnError(ReproError):
    """A column was constructed or used incorrectly (wrong shape, dtype, ...)."""


class OperatorError(ReproError):
    """A columnar operator was invoked with invalid operands."""


class UnknownOperatorError(OperatorError):
    """An operator name was looked up in the registry but is not registered."""


class PlanError(ReproError):
    """An operator plan is malformed or cannot be evaluated."""


class CompressionError(ReproError):
    """A compression scheme could not compress the given column."""


class DecompressionError(ReproError):
    """A compressed form is malformed or inconsistent and cannot be decompressed."""


class SchemeParameterError(CompressionError):
    """A compression scheme was configured with invalid parameters."""


class ModelFitError(ReproError):
    """A low-dimensional column model could not be fitted to the data."""


class StorageError(ReproError):
    """A storage-layer object (segment, chunk, table) was used incorrectly."""


class CorruptionError(StorageError):
    """Stored bytes failed an integrity check (per-segment digest mismatch).

    Raised by the packed-format reader on first materialisation of a
    corrupt constituent segment; the message names the file, column, chunk,
    segment, and byte range so the damage can be located with
    ``python -m repro.io.verify``.
    """


class QueryError(ReproError):
    """A query or physical operator was constructed or executed incorrectly."""


class ScanTimeoutError(QueryError):
    """A scan exceeded its fault-policy deadline and was cancelled."""


class PlanningError(ReproError):
    """The compression planner / advisor could not produce a valid decision."""

"""Dtype and bit-width helpers for the columnar substrate.

Lightweight compression is, to a large extent, about *widths*: null
suppression (NS) stores values in the narrowest width that can represent
them, frame-of-reference (FOR) makes values narrow by subtracting a nearby
reference, DELTA makes them narrow by subtracting the previous element.
This module centralises the width arithmetic used throughout the library:

* how many bits a value (or a range of values) needs,
* the narrowest NumPy integer dtype for a given bit width,
* logical vs physical sizes of columns.

All functions operate on plain integers or NumPy arrays and never mutate
their inputs.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import ColumnError

#: Integer dtypes the library considers "physical" storage widths, narrowest
#: first.  Unsigned widths are used for non-negative data (offsets, lengths,
#: dictionary codes); signed widths for general integer data (deltas can be
#: negative).
UNSIGNED_DTYPES = (np.uint8, np.uint16, np.uint32, np.uint64)
SIGNED_DTYPES = (np.int8, np.int16, np.int32, np.int64)

#: Bit widths corresponding to the physical dtypes above.
PHYSICAL_BIT_WIDTHS = (8, 16, 32, 64)

IntLike = Union[int, np.integer]


def is_integer_dtype(dtype: np.dtype) -> bool:
    """Return ``True`` when *dtype* is a (signed or unsigned) integer dtype."""
    return np.issubdtype(np.dtype(dtype), np.integer)


def is_unsigned_dtype(dtype: np.dtype) -> bool:
    """Return ``True`` when *dtype* is an unsigned integer dtype."""
    return np.issubdtype(np.dtype(dtype), np.unsignedinteger)


def is_float_dtype(dtype: np.dtype) -> bool:
    """Return ``True`` when *dtype* is a floating-point dtype."""
    return np.issubdtype(np.dtype(dtype), np.floating)


def dtype_bits(dtype: np.dtype) -> int:
    """Return the physical width of *dtype* in bits (e.g. 32 for ``int32``)."""
    return np.dtype(dtype).itemsize * 8


def bits_for_unsigned(value: IntLike) -> int:
    """Return the number of bits needed to represent non-negative *value*.

    By convention zero needs one bit (a width-0 column cannot distinguish
    anything, but a run of zeros still occupies one bit per element under a
    bit-packed NS encoding).

    >>> bits_for_unsigned(0)
    1
    >>> bits_for_unsigned(1)
    1
    >>> bits_for_unsigned(255)
    8
    >>> bits_for_unsigned(256)
    9
    """
    value = int(value)
    if value < 0:
        raise ColumnError(f"bits_for_unsigned() requires a non-negative value, got {value}")
    return max(1, value.bit_length())


def bits_for_signed(value: IntLike) -> int:
    """Return the number of bits needed for *value* in two's complement.

    >>> bits_for_signed(0)
    1
    >>> bits_for_signed(-1)
    1
    >>> bits_for_signed(127)
    8
    >>> bits_for_signed(-128)
    8
    >>> bits_for_signed(128)
    9
    """
    value = int(value)
    if value >= 0:
        return value.bit_length() + 1 if value else 1
    return (-value - 1).bit_length() + 1 if value != -1 else 1


def bits_for_range(lo: IntLike, hi: IntLike) -> int:
    """Bits needed to represent any value in the inclusive range [*lo*, *hi*]
    as a non-negative offset from *lo*.

    This is the quantity that determines the offset width of a FOR segment
    whose reference is the segment minimum.

    >>> bits_for_range(100, 100)
    1
    >>> bits_for_range(0, 255)
    8
    >>> bits_for_range(-4, 3)
    3
    """
    lo, hi = int(lo), int(hi)
    if hi < lo:
        raise ColumnError(f"bits_for_range() requires lo <= hi, got [{lo}, {hi}]")
    return bits_for_unsigned(hi - lo)


def bits_needed_unsigned(values: Union[np.ndarray, Iterable[int]]) -> int:
    """Bits needed to store every element of *values* as an unsigned integer."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 1
    mn = int(arr.min())
    if mn < 0:
        raise ColumnError("bits_needed_unsigned() requires non-negative data")
    return bits_for_unsigned(int(arr.max()))


def bits_needed_signed(values: Union[np.ndarray, Iterable[int]]) -> int:
    """Bits needed to store every element of *values* as a signed integer."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 1
    return max(bits_for_signed(int(arr.min())), bits_for_signed(int(arr.max())))


def narrowest_unsigned_dtype(bits: int) -> np.dtype:
    """Return the narrowest physical unsigned dtype holding *bits* bits.

    >>> narrowest_unsigned_dtype(1) == np.dtype(np.uint8)
    True
    >>> narrowest_unsigned_dtype(12) == np.dtype(np.uint16)
    True
    """
    if bits <= 0:
        raise ColumnError(f"bit width must be positive, got {bits}")
    for dtype, width in zip(UNSIGNED_DTYPES, PHYSICAL_BIT_WIDTHS):
        if bits <= width:
            return np.dtype(dtype)
    raise ColumnError(f"no unsigned dtype can hold {bits} bits")


def narrowest_signed_dtype(bits: int) -> np.dtype:
    """Return the narrowest physical signed dtype holding *bits* bits
    (two's-complement, so the sign bit counts).
    """
    if bits <= 0:
        raise ColumnError(f"bit width must be positive, got {bits}")
    for dtype, width in zip(SIGNED_DTYPES, PHYSICAL_BIT_WIDTHS):
        if bits <= width:
            return np.dtype(dtype)
    raise ColumnError(f"no signed dtype can hold {bits} bits")


def narrowest_dtype_for(values: np.ndarray) -> np.dtype:
    """Return the narrowest physical integer dtype that can hold *values*.

    Non-negative data gets an unsigned dtype, data with negative elements a
    signed one.  Float data is returned unchanged (lightweight integer
    narrowing does not apply).
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return np.dtype(np.uint8)
    if is_float_dtype(arr.dtype):
        return arr.dtype
    if int(arr.min()) >= 0:
        return narrowest_unsigned_dtype(bits_needed_unsigned(arr))
    return narrowest_signed_dtype(bits_needed_signed(arr))


def packed_size_bits(num_values: int, bits_per_value: int) -> int:
    """Size in bits of *num_values* values bit-packed at *bits_per_value*."""
    if num_values < 0 or bits_per_value < 0:
        raise ColumnError("sizes must be non-negative")
    return num_values * bits_per_value


def packed_size_bytes(num_values: int, bits_per_value: int) -> int:
    """Size in bytes (rounded up to whole bytes) of a bit-packed buffer."""
    bits = packed_size_bits(num_values, bits_per_value)
    return (bits + 7) // 8

"""Static dtype inference over plans (no data, no evaluation).

Every operator in :mod:`repro.columnar.ops` has a deterministic output dtype
given its input dtypes and scalar parameters.  This module captures those
rules once, so that :meth:`repro.columnar.plan.Plan.output_dtype`, the
abstract interpreter in :mod:`repro.analysis.intervals`, and any future
codegen backend agree on what a step produces without running it.

The rules mirror the kernels exactly — e.g. ``ElementwiseUnary("round")``
casts to int64 because the kernel does, ``AdjacentDifference`` keeps uint64
wrapping, and mixed int64/uint64 elementwise arithmetic promotes to float64
because NumPy's ``result_type`` does.  A rule returns ``None`` when the
dtype cannot be determined statically (e.g. an unresolved ``DTypeOf`` over
an unknown binding); callers must treat ``None`` as "unknown", never as a
default.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

__all__ = ["step_output_dtype", "binding_dtypes"]


_BOOL_BINARY = frozenset(("==", "!=", "<", "<=", ">", ">="))


def _as_dtype(value: Any) -> Optional[np.dtype]:
    if value is None:
        return None
    try:
        return np.dtype(value)
    except TypeError:
        return None


def _promote(*operands: Any) -> Optional[np.dtype]:
    """``np.result_type`` over dtypes and scalars, ``None`` if any is unknown."""
    resolved = []
    for operand in operands:
        if operand is None:
            return None
        resolved.append(operand)
    try:
        return np.result_type(*resolved)
    except TypeError:
        return None


def _binary_dtype(op: str, left: Any, right: Any) -> Optional[np.dtype]:
    if op in _BOOL_BINARY:
        return np.dtype(np.bool_)
    return _promote(left, right)


def _unary_dtype(op: str, operand: Optional[np.dtype]) -> Optional[np.dtype]:
    if op == "round":
        return np.dtype(np.int64)
    if op == "zigzag":
        return np.dtype(np.int64)
    if op == "not":
        return np.dtype(np.bool_)
    return operand


def _adjacent_difference_dtype(operand: Optional[np.dtype]) -> Optional[np.dtype]:
    if operand is None:
        return None
    if np.issubdtype(operand, np.floating):
        return operand
    if operand == np.dtype(np.uint64):
        return operand  # wrapping subtract, by design
    return _promote(operand, np.dtype(np.int64))


def _fused_dtype(params: Mapping[str, Any],
                 inputs: Mapping[str, Optional[np.dtype]]) -> Optional[np.dtype]:
    """Interpret a ``FusedElementwise`` chain symbolically for its dtype."""

    def operand_dtype(ref: Any) -> Any:
        kind, payload = ref[0], ref[1]
        if kind == "col":
            return inputs.get(payload)
        if kind == "reg":
            return registers[payload]
        if kind in ("lit", "param"):
            return payload if kind == "lit" else params.get(payload)
        return None

    registers: list = []
    chain = params.get("chain", ())
    for instruction in chain:
        opcode = instruction[0]
        if opcode == "binary":
            __, op, a, b = instruction
            registers.append(_binary_dtype(op, operand_dtype(a), operand_dtype(b)))
        elif opcode == "unary":
            __, op, a = instruction
            operand = operand_dtype(a)
            registers.append(_unary_dtype(op, _as_dtype(operand)))
        elif opcode == "gather":
            __, values, __indices = instruction
            registers.append(_as_dtype(operand_dtype(values)))
        elif opcode == "unpack":
            __, __packed, __width, __count, dtype = instruction
            registers.append(_as_dtype(operand_dtype(dtype)))
        else:
            registers.append(None)
    return _as_dtype(registers[-1]) if registers else None


def _first_input(inputs: Mapping[str, Optional[np.dtype]]) -> Optional[np.dtype]:
    for dtype in inputs.values():
        return dtype
    return None


def _dtype_param(params: Mapping[str, Any], default: Any,
                 inputs: Mapping[str, Optional[np.dtype]]) -> Optional[np.dtype]:
    value = params.get("dtype", default)
    # A DTypeOf param ref resolves statically when the referenced binding's
    # dtype is already known; plan_types stays import-light so the check is
    # structural (any ParamRef exposes .references()).
    if hasattr(value, "references"):
        refs = value.references()
        if refs and refs[0] in inputs:
            return inputs[refs[0]]
        return None
    return _as_dtype(value)


def _elementwise_operand(key: str, step_params: Mapping[str, Any],
                         inputs: Mapping[str, Optional[np.dtype]]) -> Any:
    if key in inputs:
        return inputs[key]
    value = step_params.get(key)
    if hasattr(value, "references"):
        return None
    return value


_INT64 = np.dtype(np.int64)
_UINT64 = np.dtype(np.uint64)
_BOOL = np.dtype(np.bool_)

# op name -> rule(params, input dtypes keyed by the operator kwarg name)
_RULES: Dict[str, Callable[..., Optional[np.dtype]]] = {
    # generators
    "Constant": lambda p, i: (
        _dtype_param(p, None, i)
        or (_INT64 if isinstance(p.get("value"), (int, np.integer))
            and not isinstance(p.get("value"), (bool, np.bool_))
            else _as_dtype(np.asarray(p.get("value")).dtype)
            if p.get("value") is not None else None)
    ),
    "Zeros": lambda p, i: _dtype_param(p, _INT64, i),
    "Ones": lambda p, i: _dtype_param(p, _INT64, i),
    "Iota": lambda p, i: _dtype_param(p, _INT64, i),
    "Sequence": lambda p, i: _dtype_param(p, None, i),
    # scans
    "PrefixSum": lambda p, i: _dtype_param(p, _INT64, i),
    "ExclusivePrefixSum": lambda p, i: _dtype_param(p, _INT64, i),
    "PrefixMax": lambda p, i: _first_input(i),
    "SegmentedPrefixSum": lambda p, i: _INT64,
    # movement (dtype-preserving over their value column)
    "PopBack": lambda p, i: i.get("col", _first_input(i)),
    "PushFront": lambda p, i: i.get("col", _first_input(i)),
    "Head": lambda p, i: i.get("col", _first_input(i)),
    "Tail": lambda p, i: i.get("col", _first_input(i)),
    "Reverse": lambda p, i: i.get("col", _first_input(i)),
    "Take": lambda p, i: i.get("col", _first_input(i)),
    "Repeat": lambda p, i: i.get("values", _first_input(i)),
    "Gather": lambda p, i: i.get("values", _first_input(i)),
    "Scatter": lambda p, i: i.get("base"),
    "Concat": lambda p, i: _promote(*i.values()) if i else None,
    # element-wise
    "Elementwise": lambda p, i: _binary_dtype(
        p.get("op", "+"),
        _elementwise_operand("left", p, i),
        _elementwise_operand("right", p, i),
    ),
    "ElementwiseUnary": lambda p, i: _unary_dtype(
        p.get("op", "abs"), i.get("operand", _first_input(i))),
    "Add": lambda p, i: _binary_dtype("+", _elementwise_operand("left", p, i),
                                      _elementwise_operand("right", p, i)),
    "Subtract": lambda p, i: _binary_dtype("-", _elementwise_operand("left", p, i),
                                           _elementwise_operand("right", p, i)),
    "Multiply": lambda p, i: _binary_dtype("*", _elementwise_operand("left", p, i),
                                           _elementwise_operand("right", p, i)),
    "FloorDivide": lambda p, i: _binary_dtype("//", _elementwise_operand("left", p, i),
                                              _elementwise_operand("right", p, i)),
    "Modulo": lambda p, i: _binary_dtype("%", _elementwise_operand("left", p, i),
                                         _elementwise_operand("right", p, i)),
    "AdjacentDifference": lambda p, i: _adjacent_difference_dtype(
        i.get("col", _first_input(i))),
    "FusedElementwise": _fused_dtype,
    "Cast": lambda p, i: _dtype_param(p, None, i),
    # bit packing
    "PackBits": lambda p, i: _UINT64,
    "UnpackBits": lambda p, i: _dtype_param(p, _UINT64, i),
    "ZigZagEncode": lambda p, i: _UINT64,
    "ZigZagDecode": lambda p, i: _INT64,
    "VarWidthUnpack": lambda p, i: _UINT64,
    # selections / masks
    "Compare": lambda p, i: _BOOL,
    "Between": lambda p, i: _BOOL,
    "IsIn": lambda p, i: _BOOL,
    "MaskAnd": lambda p, i: _BOOL,
    "MaskOr": lambda p, i: _BOOL,
    "MaskNot": lambda p, i: _BOOL,
    "RunStartsMask": lambda p, i: _BOOL,
    "Compact": lambda p, i: i.get("col", _first_input(i)),
    "PositionsOf": lambda p, i: _INT64,
    # runs / segments
    "RunLengths": lambda p, i: _INT64,
    "RunEndPositions": lambda p, i: _INT64,
    "RunStartPositions": lambda p, i: _INT64,
    "RunIds": lambda p, i: _INT64,
    "RunValues": lambda p, i: i.get("col", _first_input(i)),
    "SegmentIds": lambda p, i: _INT64,
    # reductions
    "Count": lambda p, i: _INT64,
    "CountTrue": lambda p, i: _INT64,
    "CountDistinct": lambda p, i: _INT64,
    "First": lambda p, i: _first_input(i),
    "Last": lambda p, i: _first_input(i),
    "Min": lambda p, i: _first_input(i),
    "Max": lambda p, i: _first_input(i),
}


def step_output_dtype(step: Any,
                      input_dtypes: Mapping[str, Optional[np.dtype]]
                      ) -> Optional[np.dtype]:
    """The dtype *step* produces given the dtypes of its column inputs.

    *input_dtypes* maps binding names to dtypes (``None`` = unknown); the
    step's ``column_inputs`` are resolved through it.  Returns ``None`` when
    the operator has no registered rule or an operand dtype is unknown.
    """
    rule = _RULES.get(step.op)
    if rule is None:
        return None
    by_arg: Dict[str, Optional[np.dtype]] = {
        arg: input_dtypes.get(binding)
        for arg, binding in step.column_inputs.items()
    }
    dtype = rule(step.params, by_arg)
    return _as_dtype(dtype)


def binding_dtypes(plan: Any,
                   input_dtypes: Mapping[str, Any]
                   ) -> Dict[str, Optional[np.dtype]]:
    """Dtypes of every binding in *plan*, inferred from its input dtypes.

    Unknown dtypes propagate as ``None``; plan inputs missing from
    *input_dtypes* are unknown.
    """
    facts: Dict[str, Optional[np.dtype]] = {}
    for name in plan.inputs:
        facts[name] = _as_dtype(input_dtypes.get(name))
    for step in plan.steps:
        facts[step.output] = step_output_dtype(step, facts)
    return facts

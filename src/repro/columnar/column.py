"""The :class:`Column` — the single data container of the library.

The paper insists on viewing compressed forms as *"pure" columns, stripped
bare of implementation-specific adornments* (headers, block padding, ...).
Accordingly the whole library passes around a single, very plain container:
a named, typed, one-dimensional, immutable array of values.

Columns wrap a NumPy array.  All columnar operators (:mod:`repro.columnar.ops`)
consume and produce Columns; compression schemes map one Column to a bundle
of Columns (:class:`repro.schemes.base.CompressedForm`) and back.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import ColumnError
from . import dtypes as _dt

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[float], "Column"]


class Column:
    """An immutable, typed, one-dimensional column of values.

    Parameters
    ----------
    values:
        Anything :func:`numpy.asarray` accepts, as long as the result is
        one-dimensional and of integer, floating or boolean dtype.
    name:
        Optional human-readable name, used in plans, storage and query
        results.  The name is metadata only: two columns with equal values
        but different names compare equal under :meth:`equals`.
    dtype:
        Optional dtype override; values are converted (safely) if given.

    Notes
    -----
    The underlying buffer is marked read-only, so accidentally mutating a
    column through its ``values`` attribute raises instead of silently
    corrupting shared data — columns are shared freely between compressed
    forms, plans and query operators.
    """

    __slots__ = ("_values", "_name")

    def __init__(self, values: ArrayLike, name: Optional[str] = None, dtype: Any = None):
        if isinstance(values, Column):
            arr = values.values if dtype is None else values.values.astype(dtype)
            if name is None:
                name = values.name
        else:
            arr = np.asarray(values, dtype=dtype)
        if arr.ndim != 1:
            raise ColumnError(f"a Column must be one-dimensional, got shape {arr.shape}")
        if not (
            _dt.is_integer_dtype(arr.dtype)
            or _dt.is_float_dtype(arr.dtype)
            or arr.dtype == np.bool_
        ):
            raise ColumnError(f"unsupported column dtype: {arr.dtype}")
        arr = arr.copy() if arr.base is not None or arr.flags.writeable else arr
        arr.setflags(write=False)
        self._values = arr
        self._name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_pylist(values: Iterable[Any], name: Optional[str] = None, dtype: Any = None) -> "Column":
        """Build a column from a plain Python iterable."""
        return Column(np.asarray(list(values), dtype=dtype), name=name)

    @staticmethod
    def empty(dtype: Any = np.int64, name: Optional[str] = None) -> "Column":
        """An empty column of the given dtype."""
        return Column(np.empty(0, dtype=dtype), name=name)

    @staticmethod
    def wrap_readonly(values: np.ndarray, name: Optional[str] = None) -> "Column":
        """Wrap *values* without copying, trusting the caller's buffer.

        ``__init__`` defensively copies any array that has a base or is
        writeable, which is right for arbitrary caller arrays but defeats
        zero-copy views over read-only storage (``np.memmap`` slices from the
        packed file format, :mod:`repro.io`).  This constructor skips the
        copy; the caller guarantees the backing buffer is never mutated for
        the lifetime of the column.  Writeable arrays are still copied — only
        already-read-only views take the zero-copy path.
        """
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ColumnError(f"a Column must be one-dimensional, got shape {arr.shape}")
        if not (
            _dt.is_integer_dtype(arr.dtype)
            or _dt.is_float_dtype(arr.dtype)
            or arr.dtype == np.bool_
        ):
            raise ColumnError(f"unsupported column dtype: {arr.dtype}")
        if arr.flags.writeable:
            arr = arr.copy()
            arr.setflags(write=False)
        column = Column.__new__(Column)
        column._values = arr
        column._name = name
        return column

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) NumPy array."""
        return self._values

    @property
    def name(self) -> Optional[str]:
        """The column's name, or ``None`` if unnamed."""
        return self._name

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype of the column's values."""
        return self._values.dtype

    @property
    def nbytes(self) -> int:
        """Physical size of the column's buffer in bytes."""
        return int(self._values.nbytes)

    @property
    def width_bits(self) -> int:
        """Physical width of a single element, in bits."""
        return _dt.dtype_bits(self._values.dtype)

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, item: Any) -> Any:
        """Scalar indexing returns a Python scalar; slicing returns a Column."""
        result = self._values[item]
        if isinstance(result, np.ndarray):
            return Column(result, name=self._name)
        return result.item() if hasattr(result, "item") else result

    def __repr__(self) -> str:
        label = self._name or "<unnamed>"
        preview = np.array2string(self._values[:8], separator=", ")
        suffix = ", ..." if len(self) > 8 else ""
        return f"Column({label!r}, n={len(self)}, dtype={self.dtype}, {preview}{suffix})"

    # ------------------------------------------------------------------ #
    # Comparison and conversion
    # ------------------------------------------------------------------ #

    def equals(self, other: "Column", check_dtype: bool = False) -> bool:
        """Value equality (optionally also requiring identical dtypes)."""
        if not isinstance(other, Column):
            return False
        if len(self) != len(other):
            return False
        if check_dtype and self.dtype != other.dtype:
            return False
        if len(self) == 0:
            return True
        if _dt.is_float_dtype(self.dtype) or _dt.is_float_dtype(other.dtype):
            return bool(np.allclose(self._values, other._values, equal_nan=True))
        return bool(np.array_equal(self._values, other._values))

    def __eq__(self, other: object) -> bool:  # pragma: no cover - thin wrapper
        if isinstance(other, Column):
            return self.equals(other)
        return NotImplemented

    def __hash__(self) -> int:
        # Columns are immutable; a cheap structural hash is enough for use in
        # sets of plan inputs.  Collisions only cost an equality check.
        return hash((len(self), str(self.dtype)))

    def to_numpy(self) -> np.ndarray:
        """Return a *writable copy* of the column's values."""
        return self._values.copy()

    def to_pylist(self) -> list:
        """Return the values as a plain Python list."""
        return self._values.tolist()

    # ------------------------------------------------------------------ #
    # Convenience derived quantities
    # ------------------------------------------------------------------ #

    def rename(self, name: Optional[str]) -> "Column":
        """Return the same values under a different name (no copy)."""
        clone = Column.__new__(Column)
        clone._values = self._values
        clone._name = name
        return clone

    def astype(self, dtype: Any) -> "Column":
        """Return a column with the values converted to *dtype*."""
        return Column(self._values.astype(dtype), name=self._name)

    def min(self) -> Any:
        """Minimum value (raises on an empty column)."""
        if len(self) == 0:
            raise ColumnError("min() of an empty column")
        return self._values.min().item()

    def max(self) -> Any:
        """Maximum value (raises on an empty column)."""
        if len(self) == 0:
            raise ColumnError("max() of an empty column")
        return self._values.max().item()

    def is_sorted(self) -> bool:
        """True when the values are non-decreasing."""
        if len(self) <= 1:
            return True
        return bool(np.all(self._values[1:] >= self._values[:-1]))

    def narrowest_dtype(self) -> np.dtype:
        """The narrowest physical integer dtype able to hold the values."""
        return _dt.narrowest_dtype_for(self._values)

    def logical_bits_per_value(self) -> int:
        """Minimum bits per value under an ideal (bit-packed) NS encoding."""
        if len(self) == 0:
            return 1
        if _dt.is_float_dtype(self.dtype):
            return self.width_bits
        if int(self._values.min()) >= 0:
            return _dt.bits_needed_unsigned(self._values)
        return _dt.bits_needed_signed(self._values)


def as_column(values: ArrayLike, name: Optional[str] = None) -> Column:
    """Coerce *values* to a :class:`Column` (no copy when already a Column)."""
    if isinstance(values, Column):
        return values if name is None else values.rename(name)
    return Column(values, name=name)


def concat_columns(columns: Sequence[Column], name: Optional[str] = None) -> Column:
    """Concatenate columns end to end, promoting dtypes as NumPy would."""
    if not columns:
        raise ColumnError("concat_columns() requires at least one column")
    arrays = [c.values for c in columns]
    return Column(np.concatenate(arrays), name=name or columns[0].name)

"""Columnar substrate: columns, operators, and operator plans.

This package provides the vector algebra the paper expresses decompression
in: a plain :class:`~repro.columnar.column.Column` container, a registry of
columnar operators (:mod:`repro.columnar.ops`), and a plan representation
(:mod:`repro.columnar.plan`) through which decompression becomes data that
can be truncated, spliced and rewritten — the mechanical core of the paper's
decomposition and re-composition arguments.
"""

from .column import Column, as_column, concat_columns
from .plan import (
    DTypeOf,
    EvaluationResult,
    LengthOf,
    ParamRef,
    Plan,
    PlanBuilder,
    PlanCost,
    PlanStep,
    ScalarAt,
)
from . import dtypes
from . import ops

__all__ = [
    "Column",
    "as_column",
    "concat_columns",
    "Plan",
    "PlanBuilder",
    "PlanStep",
    "PlanCost",
    "EvaluationResult",
    "ParamRef",
    "LengthOf",
    "ScalarAt",
    "DTypeOf",
    "dtypes",
    "ops",
]

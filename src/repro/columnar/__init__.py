"""Columnar substrate: columns, operators, operator plans — and a compiler.

This package provides the vector algebra the paper expresses decompression
in: a plain :class:`~repro.columnar.column.Column` container, a registry of
columnar operators (:mod:`repro.columnar.ops`), and a plan representation
(:mod:`repro.columnar.plan`) through which decompression becomes data that
can be truncated, spliced and rewritten — the mechanical core of the paper's
decomposition and re-composition arguments.

Plans have two execution paths:

* the **interpreter** (:meth:`Plan.evaluate` / :meth:`Plan.evaluate_detailed`)
  walks the uncompiled step list — simple, introspectable, and the
  reference semantics;
* the **compiler** (:mod:`repro.columnar.compile`) optimizes the plan
  (dead-step elimination, constant folding, scan strength reduction,
  common-subplan elimination, elementwise fusion), resolves its operators
  once, annotates binding liveness, and caches the compiled artifact by
  structural signature so every chunk encoded with the same scheme shares
  one compiled plan.  The two paths are observationally identical; the
  property tests assert it for every registered scheme.
"""

from .column import Column, as_column, concat_columns
from .plan import (
    DTypeOf,
    EvaluationResult,
    LengthOf,
    ParamRef,
    Plan,
    PlanBuilder,
    PlanCost,
    PlanStep,
    ScalarAt,
)
from . import dtypes
from . import ops
from . import compile

__all__ = [
    "compile",
    "Column",
    "as_column",
    "concat_columns",
    "Plan",
    "PlanBuilder",
    "PlanStep",
    "PlanCost",
    "EvaluationResult",
    "ParamRef",
    "LengthOf",
    "ScalarAt",
    "DTypeOf",
    "dtypes",
    "ops",
]

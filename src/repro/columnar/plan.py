"""Operator plans: decompression (and queries) as data.

The paper's key move is to write the decompression of a lightweight scheme
as a short sequence of generic columnar operators (its Algorithms 1 and 2).
Once decompression *is* a plan, the paper's decomposition arguments become
mechanical operations on that plan:

* dropping the **first** steps of a plan (treating their outputs as inputs
  that are stored directly) yields a *weaker-but-cheaper* scheme — this is
  exactly how RPE falls out of RLE (§II-A);
* dropping the **last** steps of a plan yields a *coarse model* of the data —
  this is how the step-function model falls out of FOR (§II-B);
* concatenating plans composes schemes.

This module provides that plan representation: a linear sequence of
:class:`PlanStep` s over named bindings, an evaluator with cost accounting,
and the prefix/suffix surgery used by :mod:`repro.schemes.decomposition`.

Plans are deliberately *linear* (a topologically-ordered list of steps over a
shared namespace of bindings) rather than a nested expression tree: that is
how the paper presents its algorithms, and it makes "drop the first k steps"
well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanError
from .column import Column
from .ops.registry import DEFAULT_REGISTRY, OperatorRegistry


# --------------------------------------------------------------------------- #
# Parameter references: scalars derived from columns at evaluation time
# --------------------------------------------------------------------------- #

class ParamRef:
    """Base class for scalar parameters computed from bound columns.

    Plans frequently need scalars that are only known once data is bound:
    Algorithm 1 materialises a zero column whose length ``n`` is the *last
    element* of the prefix-summed lengths, and a ones column whose length is
    the *length* of another column.  ``ParamRef`` instances stand for such
    scalars inside a step's parameter mapping and are resolved by the
    evaluator.
    """

    def resolve(self, env: Mapping[str, Column]) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def references(self) -> Tuple[str, ...]:  # pragma: no cover - interface
        """Binding names this reference depends on."""
        raise NotImplementedError


@dataclass(frozen=True)
class LengthOf(ParamRef):
    """The length of the column bound to *binding* (optionally plus a delta)."""

    binding: str
    delta: int = 0

    def resolve(self, env: Mapping[str, Column]) -> int:
        if self.binding not in env:
            raise PlanError(f"LengthOf({self.binding!r}): binding is not defined")
        return len(env[self.binding]) + self.delta

    def references(self) -> Tuple[str, ...]:
        return (self.binding,)


@dataclass(frozen=True)
class ScalarAt(ParamRef):
    """The scalar value at *index* of the column bound to *binding*.

    Negative indices count from the end, so ``ScalarAt("run_positions", -1)``
    is Algorithm 1's read of the total uncompressed length ``n``.
    """

    binding: str
    index: int = -1

    def resolve(self, env: Mapping[str, Column]) -> Any:
        if self.binding not in env:
            raise PlanError(f"ScalarAt({self.binding!r}): binding is not defined")
        col = env[self.binding]
        if len(col) == 0:
            raise PlanError(f"ScalarAt({self.binding!r}): column is empty")
        return col[self.index]

    def references(self) -> Tuple[str, ...]:
        return (self.binding,)


@dataclass(frozen=True)
class DTypeOf(ParamRef):
    """The dtype of the column bound to *binding* (for dtype-preserving generators)."""

    binding: str

    def resolve(self, env: Mapping[str, Column]) -> np.dtype:
        if self.binding not in env:
            raise PlanError(f"DTypeOf({self.binding!r}): binding is not defined")
        return env[self.binding].dtype

    def references(self) -> Tuple[str, ...]:
        return (self.binding,)


def _param_references(params: Mapping[str, Any]) -> Tuple[str, ...]:
    refs: List[str] = []
    for value in params.values():
        if isinstance(value, ParamRef):
            refs.extend(value.references())
    return tuple(refs)


# --------------------------------------------------------------------------- #
# Plan steps
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PlanStep:
    """One operator application binding a new name.

    Attributes
    ----------
    output:
        The binding name this step defines.
    op:
        Registered operator name (see :data:`repro.columnar.ops.DEFAULT_REGISTRY`).
    column_inputs:
        Mapping from the operator's keyword-argument name to the binding name
        of the column to pass, e.g. ``{"col": "lengths"}`` for ``PrefixSum``.
    params:
        Mapping from keyword-argument name to a scalar value or a
        :class:`ParamRef` resolved at evaluation time.
    """

    output: str
    op: str
    column_inputs: Mapping[str, str] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)

    def dependencies(self) -> Tuple[str, ...]:
        """All binding names this step reads (column inputs and param refs)."""
        return tuple(self.column_inputs.values()) + _param_references(self.params)

    def output_dtype(self, input_dtypes: Mapping[str, Any]) -> Optional[np.dtype]:
        """The dtype this step produces, inferred statically (no evaluation).

        *input_dtypes* maps binding names to the dtypes of this step's column
        inputs; returns ``None`` when the dtype cannot be determined without
        data.  The rules live in :mod:`repro.columnar.plan_types` and are the
        single source of truth shared with :mod:`repro.analysis.intervals`.
        """
        from . import plan_types

        return plan_types.step_output_dtype(self, input_dtypes)

    def describe(self) -> str:
        """A compact, human-readable rendering of the step."""
        cols = ", ".join(f"{k}={v}" for k, v in self.column_inputs.items())
        pars = ", ".join(
            f"{k}={v!r}" if not isinstance(v, ParamRef) else f"{k}={v}"
            for k, v in self.params.items()
        )
        args = ", ".join(p for p in (cols, pars) if p)
        return f"{self.output} <- {self.op}({args})"


# --------------------------------------------------------------------------- #
# Cost accounting
# --------------------------------------------------------------------------- #

@dataclass
class PlanCost:
    """Cost accounting for one plan evaluation.

    The cost model is deliberately simple and hardware-agnostic (the paper's
    claims are about *which operators appear and how much data they touch*,
    not about a particular CPU): every operator invocation contributes its
    input and output element counts, weighted by the operator's
    ``cost_weight`` (random-access movement is weighted higher than
    streaming arithmetic).
    """

    operator_invocations: int = 0
    elements_in: int = 0
    elements_out: int = 0
    bytes_materialized: int = 0
    weighted_cost: float = 0.0
    per_operator: Dict[str, int] = field(default_factory=dict)

    def add(self, op: str, elements_in: int, elements_out: int,
            bytes_out: int, weight: float) -> None:
        """Record one operator invocation."""
        self.operator_invocations += 1
        self.elements_in += elements_in
        self.elements_out += elements_out
        self.bytes_materialized += bytes_out
        self.weighted_cost += weight * (elements_in + elements_out)
        self.per_operator[op] = self.per_operator.get(op, 0) + 1

    def merge(self, other: "PlanCost") -> "PlanCost":
        """Return a new cost combining self and *other*."""
        merged = PlanCost(
            operator_invocations=self.operator_invocations + other.operator_invocations,
            elements_in=self.elements_in + other.elements_in,
            elements_out=self.elements_out + other.elements_out,
            bytes_materialized=self.bytes_materialized + other.bytes_materialized,
            weighted_cost=self.weighted_cost + other.weighted_cost,
            per_operator=dict(self.per_operator),
        )
        for op, n in other.per_operator.items():
            merged.per_operator[op] = merged.per_operator.get(op, 0) + n
        return merged


@dataclass
class EvaluationResult:
    """The outcome of a *detailed* plan evaluation: output, bindings, cost.

    Retaining ``bindings`` pins every intermediate column of the evaluation
    in memory, so this result is only produced by the opt-in
    :meth:`Plan.evaluate_detailed` path (and by the compiled executor's
    ``run_detailed``); the plain :meth:`Plan.evaluate` fast path frees
    intermediates as soon as their last consumer has run and returns only
    the output column.
    """

    output: Column
    bindings: Dict[str, Column]
    cost: PlanCost


# --------------------------------------------------------------------------- #
# The plan itself
# --------------------------------------------------------------------------- #

class Plan:
    """A linear sequence of operator applications over named bindings.

    Parameters
    ----------
    inputs:
        Names of the columns that must be supplied at evaluation time (for a
        decompression plan: the constituent columns of the compressed form).
    steps:
        The operator applications, in execution order.  Each step may only
        reference inputs or outputs of earlier steps.
    output:
        The binding name whose value the plan returns.
    description:
        Optional human-readable description (e.g. "RLE decompression,
        Algorithm 1").
    """

    def __init__(
        self,
        inputs: Sequence[str],
        steps: Sequence[PlanStep],
        output: str,
        description: str = "",
    ):
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.steps: Tuple[PlanStep, ...] = tuple(steps)
        self.output: str = output
        self.description: str = description
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation and introspection
    # ------------------------------------------------------------------ #

    def validate(self, registry: OperatorRegistry = DEFAULT_REGISTRY) -> None:
        """Check well-formedness: unique bindings, defined references, known ops."""
        defined = set(self.inputs)
        if len(defined) != len(self.inputs):
            raise PlanError(f"duplicate plan input names: {self.inputs}")
        for step in self.steps:
            if step.op not in registry:
                raise PlanError(f"step {step.output!r} uses unknown operator {step.op!r}")
            for dep in step.dependencies():
                if dep not in defined:
                    raise PlanError(
                        f"step {step.output!r} references undefined binding {dep!r}"
                    )
            if step.output in defined:
                raise PlanError(f"binding {step.output!r} is defined more than once")
            defined.add(step.output)
        if self.output not in defined:
            raise PlanError(f"plan output {self.output!r} is never defined")

    def bindings_defined(self) -> Tuple[str, ...]:
        """All binding names, inputs first, then step outputs in order."""
        return self.inputs + tuple(step.output for step in self.steps)

    def step_producing(self, binding: str) -> Optional[PlanStep]:
        """The step that defines *binding*, or ``None`` if it is a plan input."""
        for step in self.steps:
            if step.output == binding:
                return step
        if binding in self.inputs:
            return None
        raise PlanError(f"binding {binding!r} is not defined by this plan")

    def binding_dtypes(self, input_dtypes: Mapping[str, Any]
                       ) -> Dict[str, Optional[np.dtype]]:
        """Statically inferred dtype of every binding (``None`` = unknown).

        *input_dtypes* maps plan-input names to their dtypes; step outputs
        are derived by the per-operator rules in
        :mod:`repro.columnar.plan_types` without evaluating anything.
        """
        from . import plan_types

        return plan_types.binding_dtypes(self, input_dtypes)

    def output_dtype(self, input_dtypes: Mapping[str, Any]) -> Optional[np.dtype]:
        """The statically inferred dtype of the plan output (``None`` = unknown)."""
        return self.binding_dtypes(input_dtypes).get(self.output)

    def operator_counts(self) -> Dict[str, int]:
        """How many times each operator name appears in the plan."""
        counts: Dict[str, int] = {}
        for step in self.steps:
            counts[step.op] = counts.get(step.op, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return (
            f"Plan({self.description or '<unnamed>'!r}, inputs={list(self.inputs)}, "
            f"{len(self.steps)} steps, output={self.output!r})"
        )

    def describe(self) -> str:
        """Multi-line, human-readable rendering of the whole plan."""
        lines = [f"Plan: {self.description or '<unnamed>'}"]
        lines.append(f"  inputs: {', '.join(self.inputs) or '(none)'}")
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  {i}: {step.describe()}")
        lines.append(f"  return {self.output}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        inputs: Mapping[str, Column],
        registry: OperatorRegistry = DEFAULT_REGISTRY,
    ) -> Column:
        """Evaluate the plan and return only the output column.

        This is the fast interpreted path: it performs no cost accounting
        and frees every intermediate binding as soon as its last consumer
        has run, so evaluating a plan does not pin all of its intermediates
        in memory at once.  Callers that want the full environment or cost
        accounting opt in via :meth:`evaluate_detailed`; callers that want
        the optimized, cached execution use :mod:`repro.columnar.compile`.
        """
        env: Dict[str, Column] = {}
        for name in self.inputs:
            if name not in inputs:
                raise PlanError(f"missing plan input {name!r}")
            value = inputs[name]
            if not isinstance(value, Column):
                raise PlanError(f"plan input {name!r} must be a Column, got {type(value)!r}")
            env[name] = value
        if self.output in env:
            return env[self.output]

        # Last consumer of every binding, so intermediates can be freed early.
        last_use: Dict[str, int] = {}
        for index, step in enumerate(self.steps):
            for binding in step.dependencies():
                last_use[binding] = index

        for index, step in enumerate(self.steps):
            spec = registry.get(step.op)
            kwargs: Dict[str, Any] = {}
            for arg_name, binding in step.column_inputs.items():
                kwargs[arg_name] = env[binding]
            for arg_name, value in step.params.items():
                kwargs[arg_name] = value.resolve(env) if isinstance(value, ParamRef) else value
            try:
                result = spec.func(**kwargs)
            except TypeError as exc:
                raise PlanError(
                    f"step {step.output!r} ({step.op}) could not be invoked: {exc}"
                ) from exc
            if not isinstance(result, Column):
                raise PlanError(
                    f"operator {step.op!r} returned {type(result)!r}, expected Column"
                )
            env[step.output] = result
            if step.output == self.output:
                return result
            for binding in step.dependencies():
                if last_use.get(binding) == index and binding != self.output:
                    env.pop(binding, None)
        raise PlanError(f"binding {self.output!r} was never computed")

    def evaluate_detailed(
        self,
        inputs: Mapping[str, Column],
        registry: OperatorRegistry = DEFAULT_REGISTRY,
        stop_after: Optional[str] = None,
    ) -> EvaluationResult:
        """Evaluate the plan keeping every intermediate binding and cost.

        Parameters
        ----------
        inputs:
            Mapping from input name to :class:`Column`.  Extra keys are
            ignored; missing keys raise :class:`PlanError`.
        stop_after:
            If given, stop once this binding has been computed and return it
            as the output — *partial evaluation*, the executable form of the
            paper's "apply Algorithm 1 sans its first operation".
        """
        env: Dict[str, Column] = {}
        for name in self.inputs:
            if name not in inputs:
                raise PlanError(f"missing plan input {name!r}")
            value = inputs[name]
            if not isinstance(value, Column):
                raise PlanError(f"plan input {name!r} must be a Column, got {type(value)!r}")
            env[name] = value

        cost = PlanCost()
        target = stop_after if stop_after is not None else self.output
        if target in env:
            return EvaluationResult(output=env[target], bindings=dict(env), cost=cost)

        found = False
        for step in self.steps:
            spec = registry.get(step.op)
            kwargs: Dict[str, Any] = {}
            elements_in = 0
            for arg_name, binding in step.column_inputs.items():
                col = env[binding]
                kwargs[arg_name] = col
                elements_in += len(col)
            for arg_name, value in step.params.items():
                kwargs[arg_name] = value.resolve(env) if isinstance(value, ParamRef) else value
            try:
                result = spec.func(**kwargs)
            except TypeError as exc:
                raise PlanError(
                    f"step {step.output!r} ({step.op}) could not be invoked: {exc}"
                ) from exc
            if not isinstance(result, Column):
                raise PlanError(
                    f"operator {step.op!r} returned {type(result)!r}, expected Column"
                )
            env[step.output] = result
            cost.add(step.op, elements_in, len(result), result.nbytes, spec.cost_weight)
            if step.output == target:
                found = True
                break

        if not found and target not in env:
            raise PlanError(f"binding {target!r} was never computed")
        return EvaluationResult(output=env[target], bindings=env, cost=cost)

    # ------------------------------------------------------------------ #
    # Decomposition surgery
    # ------------------------------------------------------------------ #

    def required_steps(self, binding: str) -> List[PlanStep]:
        """The minimal, order-preserving subsequence of steps needed to compute *binding*."""
        needed = {binding}
        kept: List[PlanStep] = []
        for step in reversed(self.steps):
            if step.output in needed:
                kept.append(step)
                needed.update(step.dependencies())
        kept.reverse()
        return kept

    def prune(self) -> "Plan":
        """Drop steps whose outputs do not contribute to the plan output."""
        kept = self.required_steps(self.output)
        used = {self.output}
        for step in kept:
            used.update(step.dependencies())
        inputs = tuple(name for name in self.inputs if name in used)
        return Plan(inputs, kept, self.output, description=self.description)

    def truncate_at(self, binding: str, description: str = "") -> "Plan":
        """Return the plan computing *binding* instead of the original output.

        This is "keep only the initial steps": the executable form of reading
        a coarse model off a model+residual scheme (§II-B — keep Algorithm 2's
        replication of references, drop the final addition of offsets).
        """
        if binding not in self.bindings_defined():
            raise PlanError(f"cannot truncate at unknown binding {binding!r}")
        plan = Plan(self.inputs, self.steps, binding,
                    description=description or f"{self.description} [truncated at {binding}]")
        return plan.prune()

    def drop_prefix(self, new_inputs: Sequence[str], description: str = "") -> "Plan":
        """Return the plan with the steps producing *new_inputs* removed.

        The bindings in *new_inputs* become plan inputs: the caller promises
        to store those columns directly instead of computing them.  This is
        "drop the first operation(s)": the executable form of deriving RPE
        from RLE (§II-A — store ``run_positions`` instead of ``lengths`` and
        skip the prefix sum).

        Steps that only contributed to the removed prefix are pruned; original
        inputs that are no longer referenced are dropped.
        """
        new_inputs = tuple(new_inputs)
        defined = set(self.bindings_defined())
        for name in new_inputs:
            if name not in defined:
                raise PlanError(f"cannot treat unknown binding {name!r} as an input")

        promoted = set(new_inputs)
        remaining: List[PlanStep] = [s for s in self.steps if s.output not in promoted]
        # The promoted bindings plus the untouched original inputs form the
        # new input set; prune unreferenced ones afterwards.
        candidate_inputs = tuple(dict.fromkeys(tuple(self.inputs) + new_inputs))
        plan = Plan(
            candidate_inputs,
            remaining,
            self.output,
            description=description or f"{self.description} [prefix dropped: {', '.join(new_inputs)}]",
        )
        return plan.prune()

    def rename_bindings(self, mapping: Mapping[str, str]) -> "Plan":
        """Return a plan with bindings renamed (used when splicing plans together)."""
        def rename(name: str) -> str:
            return mapping.get(name, name)

        def rename_params(params: Mapping[str, Any]) -> Dict[str, Any]:
            out: Dict[str, Any] = {}
            for key, value in params.items():
                if isinstance(value, LengthOf):
                    out[key] = LengthOf(rename(value.binding), value.delta)
                elif isinstance(value, ScalarAt):
                    out[key] = ScalarAt(rename(value.binding), value.index)
                elif isinstance(value, DTypeOf):
                    out[key] = DTypeOf(rename(value.binding))
                else:
                    out[key] = value
            return out

        steps = [
            PlanStep(
                output=rename(step.output),
                op=step.op,
                column_inputs={k: rename(v) for k, v in step.column_inputs.items()},
                params=rename_params(step.params),
            )
            for step in self.steps
        ]
        return Plan(
            [rename(name) for name in self.inputs],
            steps,
            rename(self.output),
            description=self.description,
        )

    def compose_after(self, inner: "Plan", binding: str, description: str = "") -> "Plan":
        """Splice *inner* in front of this plan so that it produces *binding*.

        ``outer.compose_after(inner, "x")`` returns a plan in which the input
        ``x`` of the outer plan is computed by the inner plan instead of being
        supplied — this is scheme composition at the plan level: the inner
        plan decompresses a constituent column which the outer plan then
        consumes.

        Bindings of the inner plan are prefixed to avoid collisions, except
        for its inputs (which become inputs of the combined plan) and its
        output (which is renamed to *binding*).
        """
        if binding not in self.inputs:
            raise PlanError(
                f"compose_after(): {binding!r} is not an input of the outer plan"
            )
        prefix = f"__{binding}__"
        inner_renames = {}
        for name in inner.bindings_defined():
            if name in inner.inputs:
                inner_renames[name] = name
            elif name == inner.output:
                inner_renames[name] = binding
            else:
                inner_renames[name] = prefix + name
        renamed_inner = inner.rename_bindings(inner_renames)

        outer_inputs = [name for name in self.inputs if name != binding]
        combined_inputs = list(dict.fromkeys(list(renamed_inner.inputs) + outer_inputs))
        combined_steps = list(renamed_inner.steps) + list(self.steps)
        return Plan(
            combined_inputs,
            combined_steps,
            self.output,
            description=description or f"{inner.description} ∘ {self.description}",
        )


# --------------------------------------------------------------------------- #
# Builder
# --------------------------------------------------------------------------- #

class PlanBuilder:
    """Incremental construction of a :class:`Plan`.

    Example
    -------
    Building the paper's Algorithm 1 looks like::

        b = PlanBuilder(["lengths", "values"], description="RLE decompression")
        b.step("run_positions", "PrefixSum", col="lengths")
        ...
        plan = b.build("decompressed")
    """

    def __init__(self, inputs: Sequence[str], description: str = ""):
        self._inputs = tuple(inputs)
        self._steps: List[PlanStep] = []
        self._description = description
        self._defined = set(self._inputs)

    def step(self, __output: str, __operator: str, **arguments: Any) -> str:
        """Append a step binding ``__output`` to the result of ``__operator``.

        Keyword arguments whose value is the *name of an already-defined
        binding* (a string) are treated as column inputs; everything else
        (ints, floats, dtypes, :class:`ParamRef` instances, operation symbols
        such as ``"+"``) is treated as a scalar parameter.  The two positional
        parameters are name-mangled so they can never collide with an
        operator's own keyword arguments (e.g. ``Elementwise``'s ``op``).
        """
        column_inputs: Dict[str, str] = {}
        params: Dict[str, Any] = {}
        for key, value in arguments.items():
            if isinstance(value, str) and value in self._defined:
                column_inputs[key] = value
            else:
                params[key] = value
        self._steps.append(PlanStep(__output, __operator, column_inputs, params))
        self._defined.add(__output)
        return __output

    def splice(self, plan: Plan) -> str:
        """Append all steps of an existing *plan* to this builder.

        The plan's inputs must already be defined in this builder (either as
        builder inputs or as outputs of earlier steps).  Returns the binding
        name of the spliced plan's output, so the caller can keep building on
        top of it — this is how composite schemes stitch the decompression
        plans of their constituents together.
        """
        for name in plan.inputs:
            if name not in self._defined:
                raise PlanError(
                    f"cannot splice plan {plan.description!r}: input {name!r} "
                    "is not defined in the enclosing builder"
                )
        for step in plan.steps:
            if step.output in self._defined:
                raise PlanError(
                    f"cannot splice plan {plan.description!r}: binding "
                    f"{step.output!r} is already defined"
                )
            self._steps.append(step)
            self._defined.add(step.output)
        return plan.output

    def build(self, output: str) -> Plan:
        """Finalise and validate the plan returning *output*."""
        return Plan(self._inputs, self._steps, output, description=self._description)

"""Data-movement operators: ``Gather``, ``Scatter``, ``PopBack``, ``Repeat`` ...

These are the operators that actually *move* data between positions — the
expensive, random-access part of both decompression plans and query plans.
Algorithm 1 of the paper uses ``Scatter`` to mark run starts and ``Gather``
to replicate run values into output positions; dictionary decoding is a pure
``Gather``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


@register_operator("Gather", 2, "out[i] = values[indices[i]]", cost_weight=2.0,
                   category="movement")
def gather(values: Column, indices: Column, name: Optional[str] = None) -> Column:
    """Random-access read: ``out[i] = values[indices[i]]``.

    *indices* must be integer-typed and within ``[0, len(values))``.

    >>> from repro.columnar.ops.generate import sequence
    >>> gather(sequence([10, 20, 30]), sequence([2, 0, 0, 1])).to_pylist()
    [30, 10, 10, 20]
    """
    idx = indices.values
    if not np.issubdtype(idx.dtype, np.integer):
        raise OperatorError(f"Gather() indices must be integers, got dtype {idx.dtype}")
    if len(idx) and (idx.min() < 0 or idx.max() >= len(values)):
        raise OperatorError(
            f"Gather() indices out of range [0, {len(values)}): "
            f"min={idx.min() if len(idx) else None}, max={idx.max() if len(idx) else None}"
        )
    return Column(values.values[idx], name=name or values.name)


@register_operator("Scatter", 3, "out[indices[i]] = values[i] over a base column",
                   cost_weight=2.0, category="movement")
def scatter(values: Column, indices: Column, base: Column,
            name: Optional[str] = None) -> Column:
    """Random-access write into a copy of *base*: ``out = base; out[indices[i]] = values[i]``.

    Following the paper's usage, ``Scatter`` never writes out of bounds and
    leaves unwritten positions at their *base* value (Algorithm 1 scatters
    ones into a column of zeros).

    >>> from repro.columnar.ops.generate import sequence, zeros
    >>> scatter(sequence([1, 1]), sequence([0, 3]), zeros(5)).to_pylist()
    [1, 0, 0, 1, 0]
    """
    if len(values) != len(indices):
        raise OperatorError(
            f"Scatter() values and indices must have equal length, "
            f"got {len(values)} and {len(indices)}"
        )
    idx = indices.values
    if not np.issubdtype(idx.dtype, np.integer):
        raise OperatorError(f"Scatter() indices must be integers, got dtype {idx.dtype}")
    if len(idx) and (idx.min() < 0 or idx.max() >= len(base)):
        raise OperatorError(f"Scatter() indices out of range [0, {len(base)})")
    out = base.to_numpy()
    out[idx] = values.values
    return Column(out, name=name or base.name)


@register_operator("PopBack", 1, "drop the last element of a column", category="movement")
def pop_back(col: Column, name: Optional[str] = None) -> Column:
    """Return the column without its last element (length must be >= 1).

    >>> from repro.columnar.ops.generate import sequence
    >>> pop_back(sequence([1, 2, 3])).to_pylist()
    [1, 2]
    """
    if len(col) == 0:
        raise OperatorError("PopBack() of an empty column")
    return Column(col.values[:-1], name=name or col.name)


@register_operator("PushFront", 1, "prepend a scalar to a column", category="movement")
def push_front(col: Column, value, name: Optional[str] = None) -> Column:
    """Return the column with *value* prepended.

    >>> from repro.columnar.ops.generate import sequence
    >>> push_front(sequence([2, 3]), 1).to_pylist()
    [1, 2, 3]
    """
    front = np.asarray([value], dtype=col.dtype)
    return Column(np.concatenate([front, col.values]), name=name or col.name)


@register_operator("Head", 1, "first k elements of a column", category="movement")
def head(col: Column, count: int, name: Optional[str] = None) -> Column:
    """Return the first *count* elements (count must not exceed the length)."""
    if count < 0 or count > len(col):
        raise OperatorError(f"Head() count {count} out of range for length {len(col)}")
    return Column(col.values[:count], name=name or col.name)


@register_operator("Tail", 1, "last k elements of a column", category="movement")
def tail(col: Column, count: int, name: Optional[str] = None) -> Column:
    """Return the last *count* elements (count must not exceed the length)."""
    if count < 0 or count > len(col):
        raise OperatorError(f"Tail() count {count} out of range for length {len(col)}")
    return Column(col.values[len(col) - count:], name=name or col.name)


@register_operator("Reverse", 1, "reverse the order of a column", category="movement")
def reverse(col: Column, name: Optional[str] = None) -> Column:
    """Return the column with its elements in reverse order."""
    return Column(col.values[::-1], name=name or col.name)


@register_operator("Repeat", 2, "repeat values[i] lengths[i] times (run expansion)",
                   cost_weight=1.5, category="movement")
def repeat(values: Column, lengths: Column, name: Optional[str] = None) -> Column:
    """Expand ``(values, lengths)`` run pairs into a flat column.

    This is the *fused* form of RLE decompression — the baseline the paper's
    columnar formulation (Algorithm 1) is compared against in experiment E2.

    >>> from repro.columnar.ops.generate import sequence
    >>> repeat(sequence([7, 9]), sequence([3, 2])).to_pylist()
    [7, 7, 7, 9, 9]
    """
    if len(values) != len(lengths):
        raise OperatorError(
            f"Repeat() values and lengths must have equal length, "
            f"got {len(values)} and {len(lengths)}"
        )
    lens = lengths.values
    if len(lens) and lens.min() < 0:
        raise OperatorError("Repeat() lengths must be non-negative")
    return Column(np.repeat(values.values, lens), name=name or values.name)


@register_operator("Concat", None, "concatenate columns end to end", category="movement")
def concat(*columns: Column, name: Optional[str] = None) -> Column:
    """Concatenate one or more columns end to end."""
    if not columns:
        raise OperatorError("Concat() requires at least one column")
    return Column(np.concatenate([c.values for c in columns]), name=name or columns[0].name)


@register_operator("Take", 2, "select elements at given positions (alias of Gather)",
                   cost_weight=2.0, category="movement")
def take(values: Column, positions: Column, name: Optional[str] = None) -> Column:
    """Alias of :func:`gather` with the argument order used by query engines."""
    return gather(values, positions, name=name)

"""Scan (prefix-aggregate) operators: ``PrefixSum`` and friends.

``PrefixSum`` is the workhorse of the paper's Algorithm 1: it turns run
lengths into run end positions, and it turns a scattered column of run-start
markers into a per-element run index.  The library also provides the
exclusive variant and segmented scans, which show up when decompressing
block-partitioned data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


@register_operator("PrefixSum", 1, "inclusive prefix sum (scan) of a column", category="scan")
def prefix_sum(col: Column, dtype=np.int64, name: Optional[str] = None) -> Column:
    """Inclusive prefix sum: ``out[i] = col[0] + ... + col[i]``.

    >>> from repro.columnar.ops.generate import sequence
    >>> prefix_sum(sequence([3, 1, 2])).to_pylist()
    [3, 4, 6]
    """
    return Column(np.cumsum(col.values, dtype=dtype), name=name or col.name)


@register_operator("ExclusivePrefixSum", 1, "exclusive prefix sum (scan) of a column",
                   category="scan")
def exclusive_prefix_sum(col: Column, initial: int = 0, dtype=np.int64,
                         name: Optional[str] = None) -> Column:
    """Exclusive prefix sum: ``out[i] = initial + col[0] + ... + col[i-1]``.

    The first output element equals *initial*.  For run *lengths* this yields
    run *start* positions directly (whereas the paper's Algorithm 1 obtains
    them as the inclusive prefix sum with the last element popped off and a
    zero pushed in front — both formulations are provided so the
    equivalence can be tested).

    >>> from repro.columnar.ops.generate import sequence
    >>> exclusive_prefix_sum(sequence([3, 1, 2])).to_pylist()
    [0, 3, 4]
    """
    arr = col.values
    out = np.empty(len(arr), dtype=dtype)
    if len(arr):
        out[0] = initial
        np.cumsum(arr[:-1], dtype=dtype, out=out[1:])
        if initial:
            out[1:] += initial
    return Column(out, name=name or col.name)


@register_operator("PrefixMax", 1, "inclusive prefix maximum of a column", category="scan")
def prefix_max(col: Column, name: Optional[str] = None) -> Column:
    """Inclusive running maximum: ``out[i] = max(col[0..i])``.

    Useful for propagating the most recent "anchor" value to subsequent
    positions, e.g. when decompressing patched or sparse encodings.
    """
    return Column(np.maximum.accumulate(col.values), name=name or col.name)


@register_operator("SegmentedPrefixSum", 2,
                   "prefix sum restarting at every new segment id", category="scan")
def segmented_prefix_sum(col: Column, segment_ids: Column,
                         name: Optional[str] = None) -> Column:
    """Inclusive prefix sum that restarts whenever ``segment_ids`` changes.

    ``segment_ids`` must be non-decreasing (a standard assumption for
    segmented scans over block-partitioned columns).

    >>> from repro.columnar.ops.generate import sequence
    >>> segmented_prefix_sum(sequence([1, 1, 1, 1]), sequence([0, 0, 1, 1])).to_pylist()
    [1, 2, 1, 2]
    """
    if len(col) != len(segment_ids):
        raise OperatorError(
            f"SegmentedPrefixSum() operands must have equal length, "
            f"got {len(col)} and {len(segment_ids)}"
        )
    values = col.values.astype(np.int64, copy=False)
    seg = segment_ids.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=np.int64), name=name or col.name)
    if np.any(seg[1:] < seg[:-1]):
        raise OperatorError("SegmentedPrefixSum() requires non-decreasing segment ids")
    total = np.cumsum(values, dtype=np.int64)
    # Subtract, from every element, the running total accumulated before its
    # segment started: find the index where each segment starts and propagate
    # the prefix total at that point.
    starts = np.empty(len(values), dtype=bool)
    starts[0] = True
    starts[1:] = seg[1:] != seg[:-1]
    start_offsets = np.where(starts, total - values, 0)
    baseline = np.maximum.accumulate(np.where(starts, start_offsets, 0))
    return Column(total - baseline, name=name or col.name)

"""The columnar operator algebra.

Importing this package registers every operator in
:data:`repro.columnar.ops.registry.DEFAULT_REGISTRY` and re-exports the
Python callables for direct use.  Plans (:mod:`repro.columnar.plan`) refer to
operators by their registered names.

Operator inventory
------------------

========================  =====================================================
Category                  Operators
========================  =====================================================
generate                  Constant, Zeros, Ones, Iota, Sequence
scan                      PrefixSum, ExclusivePrefixSum, PrefixMax,
                          SegmentedPrefixSum
movement                  Gather, Scatter, PopBack, PushFront, Head, Tail,
                          Reverse, Repeat, Concat, Take
elementwise               Elementwise, ElementwiseUnary, Add, Subtract,
                          Multiply, FloorDivide, Modulo, AdjacentDifference,
                          Compare
selection                 Compact, PositionsOf, Between, IsIn, MaskAnd, MaskOr,
                          MaskNot, CountTrue
runs                      RunStartsMask, RunStartPositions, RunEndPositions,
                          RunLengths, RunValues, RunIds, SegmentIds
bitpack                   PackBits, UnpackBits, ZigZagEncode, ZigZagDecode
reduction                 Sum, Min, Max, Count, CountDistinct, Last, First, Mean
========================  =====================================================
"""

from .registry import DEFAULT_REGISTRY, OperatorRegistry, OperatorSpec, register_operator
from .generate import constant, zeros, ones, iota, sequence
from .scan import prefix_sum, exclusive_prefix_sum, prefix_max, segmented_prefix_sum
from .movement import (
    gather,
    scatter,
    pop_back,
    push_front,
    head,
    tail,
    reverse,
    repeat,
    concat,
    take,
)
from .elementwise import (
    elementwise,
    elementwise_unary,
    add,
    subtract,
    multiply,
    floor_divide,
    modulo,
    adjacent_difference,
    compare,
    BINARY_OPERATIONS,
    UNARY_OPERATIONS,
)
from .selection import (
    compact,
    positions_of,
    between,
    is_in,
    mask_and,
    mask_or,
    mask_not,
    count_true,
)
from .runs import (
    run_starts_mask,
    run_start_positions,
    run_end_positions,
    run_lengths,
    run_values,
    run_ids,
    segment_ids,
    count_runs,
    runs_of,
)
from .bitpack import pack_bits, unpack_bits, zigzag_encode, zigzag_decode
from .reduction import (
    sum_,
    min_,
    max_,
    count,
    count_distinct,
    last,
    first,
    mean,
    scalar_sum,
    scalar_min,
    scalar_max,
    scalar_count_distinct,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "OperatorRegistry",
    "OperatorSpec",
    "register_operator",
    # generate
    "constant",
    "zeros",
    "ones",
    "iota",
    "sequence",
    # scan
    "prefix_sum",
    "exclusive_prefix_sum",
    "prefix_max",
    "segmented_prefix_sum",
    # movement
    "gather",
    "scatter",
    "pop_back",
    "push_front",
    "head",
    "tail",
    "reverse",
    "repeat",
    "concat",
    "take",
    # elementwise
    "elementwise",
    "elementwise_unary",
    "add",
    "subtract",
    "multiply",
    "floor_divide",
    "modulo",
    "adjacent_difference",
    "compare",
    "BINARY_OPERATIONS",
    "UNARY_OPERATIONS",
    # selection
    "compact",
    "positions_of",
    "between",
    "is_in",
    "mask_and",
    "mask_or",
    "mask_not",
    "count_true",
    # runs
    "run_starts_mask",
    "run_start_positions",
    "run_end_positions",
    "run_lengths",
    "run_values",
    "run_ids",
    "segment_ids",
    "count_runs",
    "runs_of",
    # bitpack
    "pack_bits",
    "unpack_bits",
    "zigzag_encode",
    "zigzag_decode",
    # reduction
    "sum_",
    "min_",
    "max_",
    "count",
    "count_distinct",
    "last",
    "first",
    "mean",
    "scalar_sum",
    "scalar_min",
    "scalar_max",
    "scalar_count_distinct",
]

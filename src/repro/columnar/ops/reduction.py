"""Reduction operators (aggregates).

Reductions return a length-1 column rather than a bare scalar, so they can
participate in plans uniformly.  The module also exposes scalar convenience
wrappers for direct library use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


def _require_nonempty(col: Column, op: str) -> None:
    if len(col) == 0:
        raise OperatorError(f"{op}() of an empty column")


@register_operator("Sum", 1, "sum of all elements", category="reduction")
def sum_(col: Column, name: Optional[str] = None) -> Column:
    """Sum of all elements (0 for an empty column), as a length-1 column."""
    dtype = np.int64 if np.issubdtype(col.dtype, np.integer) else np.float64
    return Column(np.asarray([col.values.sum(dtype=dtype)]), name=name)


@register_operator("Min", 1, "minimum element", category="reduction")
def min_(col: Column, name: Optional[str] = None) -> Column:
    """Minimum element, as a length-1 column."""
    _require_nonempty(col, "Min")
    return Column(np.asarray([col.values.min()]), name=name)


@register_operator("Max", 1, "maximum element", category="reduction")
def max_(col: Column, name: Optional[str] = None) -> Column:
    """Maximum element, as a length-1 column."""
    _require_nonempty(col, "Max")
    return Column(np.asarray([col.values.max()]), name=name)


@register_operator("Count", 1, "number of elements", category="reduction")
def count(col: Column, name: Optional[str] = None) -> Column:
    """Number of elements, as a length-1 column."""
    return Column(np.asarray([len(col)], dtype=np.int64), name=name)


@register_operator("CountDistinct", 1, "number of distinct elements", category="reduction")
def count_distinct(col: Column, name: Optional[str] = None) -> Column:
    """Number of distinct elements, as a length-1 column."""
    return Column(np.asarray([len(np.unique(col.values))], dtype=np.int64), name=name)


@register_operator("Last", 1, "the last element of a column", category="reduction")
def last(col: Column, name: Optional[str] = None) -> Column:
    """The last element of the column, as a length-1 column.

    Algorithm 1 reads the total uncompressed length ``n`` off the last
    element of the prefix-summed lengths column; this operator is that read.
    """
    _require_nonempty(col, "Last")
    return Column(col.values[-1:], name=name)


@register_operator("First", 1, "the first element of a column", category="reduction")
def first(col: Column, name: Optional[str] = None) -> Column:
    """The first element of the column, as a length-1 column."""
    _require_nonempty(col, "First")
    return Column(col.values[:1], name=name)


@register_operator("Mean", 1, "arithmetic mean of all elements", category="reduction")
def mean(col: Column, name: Optional[str] = None) -> Column:
    """Arithmetic mean of all elements, as a length-1 float column."""
    _require_nonempty(col, "Mean")
    return Column(np.asarray([col.values.mean()], dtype=np.float64), name=name)


# --------------------------------------------------------------------------- #
# Scalar convenience wrappers (not registered; for direct library use)
# --------------------------------------------------------------------------- #

def scalar_sum(col: Column):
    """Sum of all elements as a Python scalar."""
    return sum_(col)[0]


def scalar_min(col: Column):
    """Minimum element as a Python scalar."""
    return min_(col)[0]


def scalar_max(col: Column):
    """Maximum element as a Python scalar."""
    return max_(col)[0]


def scalar_count_distinct(col: Column) -> int:
    """Number of distinct elements as a Python int."""
    return int(count_distinct(col)[0])

"""Bit-packing operators: the physical half of null suppression (NS).

Null suppression stores each value in ``w`` bits rather than its full
physical width.  To keep size accounting honest (a compression-scheme
library that counts a 3-bit value as one byte flatters nobody), the NS
scheme really does pack values at bit granularity into a ``uint8`` buffer,
and these operators are the pack/unpack kernels — and they are registered
columnar operators, so unpacking appears in decompression plans like any
other step.

The packing layout is little-endian within the buffer: value ``i`` occupies
bits ``[i*w, (i+1)*w)`` of the bit stream, least-significant bit first.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator

_LITTLE_ENDIAN = sys.byteorder == "little"


def _require_width(width: int) -> None:
    if not 1 <= width <= 64:
        raise OperatorError(f"bit width must be in [1, 64], got {width}")


def _unpack_bits_values(buf: np.ndarray, width: int, count: int) -> np.ndarray:
    """Raw-array unpack kernel: *count* ``width``-bit values from *buf* (uint64).

    On little-endian machines this works at 64-bit word granularity: value
    ``i`` starts at bit ``i*width``, so its bits live in the word at
    ``bitpos >> 6`` and (when straddling) the following word.  Two gathers,
    three shifts and a mask replace the per-bit matrix of the generic path —
    about an order of magnitude less memory traffic.
    """
    if _LITTLE_ENDIAN:
        needed_bits = count * width
        num_words = (needed_bits + 63) // 64 + 1
        padded = np.zeros(num_words * 8, dtype=np.uint8)
        padded[:min(buf.size, padded.size)] = buf[:min(buf.size, padded.size)]
        words = padded.view("<u8")
        bitpos = np.arange(count, dtype=np.uint64) * np.uint64(width)
        word_idx = (bitpos >> np.uint64(6)).astype(np.intp)
        bit = bitpos & np.uint64(63)
        low = words[word_idx] >> bit
        # Bits from the next word: shift left by (64 - bit) in two steps of
        # <= 63 so that bit == 0 cleanly contributes nothing (a single shift
        # by 64 would be undefined).
        high = (words[word_idx + 1] << (np.uint64(63) - bit)) << np.uint64(1)
        values = low | high
        if width < 64:
            values &= np.uint64((1 << width) - 1)
        return values
    bits = np.unpackbits(buf, count=count * width, bitorder="little").reshape(count, width)
    weights = (np.uint64(1) << np.arange(width, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)


@register_operator("PackBits", 1, "bit-pack non-negative integers at a fixed width",
                   cost_weight=1.5, category="bitpack")
def pack_bits(col: Column, width: int, name: Optional[str] = None) -> Column:
    """Pack the non-negative integers of *col* at *width* bits per value.

    Returns a ``uint8`` column holding the packed bit stream (padded with
    zero bits up to a whole number of bytes).

    >>> from repro.columnar.ops.generate import sequence
    >>> packed = pack_bits(sequence([1, 2, 3]), width=2)
    >>> unpack_bits(packed, width=2, count=3).to_pylist()
    [1, 2, 3]
    """
    _require_width(width)
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=np.uint8), name=name)
    if not np.issubdtype(values.dtype, np.integer):
        raise OperatorError(f"PackBits() requires integer data, got dtype {values.dtype}")
    if int(values.min()) < 0:
        raise OperatorError("PackBits() requires non-negative values "
                            "(apply zig-zag encoding first for signed data)")
    if width < 64 and int(values.max()) >= (1 << width):
        raise OperatorError(
            f"PackBits() width {width} cannot hold maximum value {int(values.max())}"
        )
    as_u64 = values.astype(np.uint64, copy=False)
    # Expand every value into its `width` bits (LSB first), then let NumPy
    # pack the flat bit array into bytes.
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((as_u64[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    packed = np.packbits(bits.ravel(), bitorder="little")
    return Column(packed, name=name or col.name)


@register_operator("UnpackBits", 1, "unpack a fixed-width bit-packed buffer",
                   cost_weight=1.5, category="bitpack")
def unpack_bits(packed: Column, width: int, count: int,
                dtype=np.uint64, name: Optional[str] = None) -> Column:
    """Unpack *count* values of *width* bits each from a packed ``uint8`` column.

    The inverse of :func:`pack_bits`.
    """
    _require_width(width)
    if count < 0:
        raise OperatorError(f"UnpackBits() count must be non-negative, got {count}")
    if count == 0:
        return Column(np.empty(0, dtype=dtype), name=name)
    buf = packed.values
    if buf.dtype != np.uint8:
        raise OperatorError(f"UnpackBits() requires a uint8 buffer, got dtype {buf.dtype}")
    needed_bits = count * width
    if buf.size * 8 < needed_bits:
        raise OperatorError(
            f"UnpackBits() buffer holds {buf.size * 8} bits, needs {needed_bits}"
        )
    values = _unpack_bits_values(buf, width, count)
    return Column(values.astype(dtype), name=name or packed.name)


@register_operator("ZigZagEncode", 1, "map signed integers to non-negative integers",
                   category="bitpack")
def zigzag_encode(col: Column, name: Optional[str] = None) -> Column:
    """Zig-zag encode signed integers: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...

    Small-magnitude values (of either sign) map to small non-negative values,
    so DELTA residuals become NS-packable.
    """
    values = col.values
    if not np.issubdtype(values.dtype, np.integer):
        raise OperatorError(f"ZigZagEncode() requires integer data, got dtype {values.dtype}")
    as_i64 = values.astype(np.int64, copy=False)
    encoded = (as_i64 << 1) ^ (as_i64 >> 63)
    return Column(encoded.astype(np.uint64), name=name or col.name)


def _zigzag_decode_values(values: np.ndarray) -> np.ndarray:
    """Raw-array zig-zag decode kernel (shared with the fused-kernel path)."""
    unsigned = values.astype(np.uint64, copy=False)
    return ((unsigned >> np.uint64(1)).astype(np.int64)
            ^ -(unsigned & np.uint64(1)).astype(np.int64))


@register_operator("ZigZagDecode", 1, "inverse of zig-zag encoding", category="bitpack")
def zigzag_decode(col: Column, name: Optional[str] = None) -> Column:
    """Invert :func:`zigzag_encode`."""
    return Column(_zigzag_decode_values(col.values), name=name or col.name)

"""Bit-packing operators: the physical half of null suppression (NS).

Null suppression stores each value in ``w`` bits rather than its full
physical width.  To keep size accounting honest (a compression-scheme
library that counts a 3-bit value as one byte flatters nobody), the NS
scheme really does pack values at bit granularity into a ``uint8`` buffer,
and these operators are the pack/unpack kernels — and they are registered
columnar operators, so unpacking appears in decompression plans like any
other step.

The packing layout is little-endian within the buffer: value ``i`` occupies
bits ``[i*w, (i+1)*w)`` of the bit stream, least-significant bit first.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator

_LITTLE_ENDIAN = sys.byteorder == "little"


def _require_width(width: int) -> None:
    if not 1 <= width <= 64:
        raise OperatorError(f"bit width must be in [1, 64], got {width}")


def _unpack_bits_values(buf: np.ndarray, width: int, count: int) -> np.ndarray:
    """Raw-array unpack kernel: *count* ``width``-bit values from *buf* (uint64).

    On little-endian machines this works at 64-bit word granularity: value
    ``i`` starts at bit ``i*width``, so its bits live in the word at
    ``bitpos >> 6`` and (when straddling) the following word.  Two gathers,
    three shifts and a mask replace the per-bit matrix of the generic path —
    about an order of magnitude less memory traffic.
    """
    if _LITTLE_ENDIAN:
        needed_bits = count * width
        num_words = (needed_bits + 63) // 64 + 1
        padded = np.zeros(num_words * 8, dtype=np.uint8)
        padded[:min(buf.size, padded.size)] = buf[:min(buf.size, padded.size)]
        words = padded.view("<u8")
        bitpos = np.arange(count, dtype=np.uint64) * np.uint64(width)
        word_idx = (bitpos >> np.uint64(6)).astype(np.intp)
        bit = bitpos & np.uint64(63)
        low = words[word_idx] >> bit
        # Bits from the next word: shift left by (64 - bit) in two steps of
        # <= 63 so that bit == 0 cleanly contributes nothing (a single shift
        # by 64 would be undefined).
        high = (words[word_idx + 1] << (np.uint64(63) - bit)) << np.uint64(1)
        values = low | high
        if width < 64:
            values &= np.uint64((1 << width) - 1)
        return values
    bits = np.unpackbits(buf, count=count * width, bitorder="little").reshape(count, width)
    weights = (np.uint64(1) << np.arange(width, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)


@register_operator("PackBits", 1, "bit-pack non-negative integers at a fixed width",
                   cost_weight=1.5, category="bitpack")
def pack_bits(col: Column, width: int, name: Optional[str] = None) -> Column:
    """Pack the non-negative integers of *col* at *width* bits per value.

    Returns a ``uint8`` column holding the packed bit stream (padded with
    zero bits up to a whole number of bytes).

    >>> from repro.columnar.ops.generate import sequence
    >>> packed = pack_bits(sequence([1, 2, 3]), width=2)
    >>> unpack_bits(packed, width=2, count=3).to_pylist()
    [1, 2, 3]
    """
    _require_width(width)
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=np.uint8), name=name)
    if not np.issubdtype(values.dtype, np.integer):
        raise OperatorError(f"PackBits() requires integer data, got dtype {values.dtype}")
    if int(values.min()) < 0:
        raise OperatorError("PackBits() requires non-negative values "
                            "(apply zig-zag encoding first for signed data)")
    if width < 64 and int(values.max()) >= (1 << width):
        raise OperatorError(
            f"PackBits() width {width} cannot hold maximum value {int(values.max())}"
        )
    as_u64 = values.astype(np.uint64, copy=False)
    # Expand every value into its `width` bits (LSB first), then let NumPy
    # pack the flat bit array into bytes.
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((as_u64[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    packed = np.packbits(bits.ravel(), bitorder="little")
    return Column(packed, name=name or col.name)


@register_operator("UnpackBits", 1, "unpack a fixed-width bit-packed buffer",
                   cost_weight=1.5, category="bitpack")
def unpack_bits(packed: Column, width: int, count: int,
                dtype=np.uint64, name: Optional[str] = None) -> Column:
    """Unpack *count* values of *width* bits each from a packed ``uint8`` column.

    The inverse of :func:`pack_bits`.
    """
    _require_width(width)
    if count < 0:
        raise OperatorError(f"UnpackBits() count must be non-negative, got {count}")
    if count == 0:
        return Column(np.empty(0, dtype=dtype), name=name)
    buf = packed.values
    if buf.dtype != np.uint8:
        raise OperatorError(f"UnpackBits() requires a uint8 buffer, got dtype {buf.dtype}")
    needed_bits = count * width
    if buf.size * 8 < needed_bits:
        raise OperatorError(
            f"UnpackBits() buffer holds {buf.size * 8} bits, needs {needed_bits}"
        )
    values = _unpack_bits_values(buf, width, count)
    return Column(values.astype(dtype), name=name or packed.name)


def _split_words(buf: np.ndarray, num_words: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """View *buf* (uint8) as little-endian uint64 words without copying it.

    Returns ``(body, tail)``: *body* is a zero-copy ``<u8`` view of the
    whole words of *buf*, *tail* is a small zero-padded copy holding the
    remaining bytes plus guard words, together covering at least
    *num_words* words.  Only the (at most ``num_words - len(body)``) tail
    words are ever copied, so callers stay O(words actually read) instead
    of O(buffer).
    """
    body_words = min(buf.size // 8, num_words)
    body = buf[:body_words * 8].view("<u8")
    tail_words = max(num_words - body_words, 0)
    tail = np.zeros(tail_words * 8, dtype=np.uint8)
    remainder = buf[body_words * 8:]
    tail[:min(remainder.size, tail.size)] = remainder[:tail.size]
    return body, tail.view("<u8")


def _swar_ge(slots: np.ndarray, guard: np.uint64, unit: np.uint64,
             constant: int) -> np.ndarray:
    """Per-field ``x >= constant`` over SWAR *slots*, verdicts at guard bits.

    Each 64-bit element of *slots* holds fields of width ``w`` in the low
    half of ``2w``-bit slots (high half zero).  Setting the guard bit (bit
    ``w`` of every slot) before subtracting ``constant`` from every field
    makes the guard survive exactly when the field is ``>= constant`` —
    Lamport's comparison gate, the word-parallel primitive BitWeaving builds
    on.  ``constant`` may be up to ``2**w`` (one past the field maximum),
    for which the verdict is correctly never set.
    """
    return ((slots | guard) - np.uint64(constant) * unit) & guard


def _swar_verdict_rows(words: np.ndarray, width: int, lo: int,
                       hi: int) -> np.ndarray:
    """Per-field ``lo <= x <= hi`` verdicts of *words*, as a (words, fields)
    boolean matrix (the word-parallel core of the packed comparison)."""
    per_word = 64 // width
    half = per_word // 2
    slot_width = 2 * width

    unit = np.uint64(sum(1 << (k * slot_width) for k in range(half)))
    field_max = np.uint64((1 << width) - 1)
    slot_mask = field_max * unit
    guard = (np.uint64(1) << np.uint64(width)) * unit

    even = words & slot_mask
    odd = (words >> np.uint64(width)) & slot_mask

    verdicts = []
    for slots in (even, odd):
        in_range = _swar_ge(slots, guard, unit, lo)
        if hi < (1 << width) - 1:
            in_range &= ~_swar_ge(slots, guard, unit, hi + 1)
        verdicts.append(in_range)

    out = np.empty((words.size, per_word), dtype=bool)
    for k in range(half):
        bit = np.uint64(k * slot_width + width)
        out[:, 2 * k] = (verdicts[0] >> bit) & np.uint64(1)
        out[:, 2 * k + 1] = (verdicts[1] >> bit) & np.uint64(1)
    return out


def _packed_compare_range_swar(buf: np.ndarray, width: int, count: int,
                               lo: int, hi: int) -> np.ndarray:
    """Word-parallel ``lo <= x <= hi`` over the packed stream (64 % width == 0).

    With the field width dividing 64, no value straddles a word, so each
    word is compared as a whole: fields are split into even/odd passes
    (masking every other field buys each survivor ``width`` spare bits plus
    a guard bit), each pass costs a handful of 64-bit vector operations for
    ``64/width`` values, and only the final verdict extraction is per-field.
    The packed buffer is neither expanded to one integer per value nor
    copied: the whole-word body is compared through a zero-copy view, and
    only a sub-word tail (at most one word) goes through a padded copy.
    """
    num_words = (count + (64 // width) - 1) // (64 // width)
    body, tail = _split_words(buf, num_words)
    rows = _swar_verdict_rows(body, width, lo, hi)
    if tail.size:
        rows = np.concatenate([rows, _swar_verdict_rows(tail, width, lo, hi)])
    return rows.reshape(-1)[:count]


def packed_compare_range(packed: Column, width: int, count: int,
                         lo: int, hi: int) -> np.ndarray:
    """``lo <= x <= hi`` per packed value, without unpacking when possible.

    *lo*/*hi* are inclusive bounds in the stored unsigned domain; the caller
    clamps them into ``[0, 2**width - 1]`` (use an empty-range short-circuit
    for provably empty predicates).  Widths dividing 64 take the BitWeaving-
    style word-parallel path (:func:`_packed_compare_range_swar`); other
    widths fall back to unpack-and-compare.
    """
    _require_width(width)
    if count == 0:
        return np.empty(0, dtype=bool)
    if not 0 <= lo <= hi <= (1 << width) - 1:
        raise OperatorError(
            f"packed_compare_range bounds [{lo}, {hi}] do not fit width {width}"
        )
    buf = packed.values
    if buf.dtype != np.uint8:
        raise OperatorError(f"packed_compare_range requires a uint8 buffer, got {buf.dtype}")
    if buf.size * 8 < count * width:
        raise OperatorError(
            f"packed_compare_range buffer holds {buf.size * 8} bits, needs {count * width}"
        )
    if width < 64 and 64 % width == 0 and _LITTLE_ENDIAN:
        return _packed_compare_range_swar(buf, width, count, lo, hi)
    values = _unpack_bits_values(buf, width, count)
    return (values >= np.uint64(lo)) & (values <= np.uint64(hi))


def packed_gather(packed: Column, width: int, count: int,
                  positions: np.ndarray) -> np.ndarray:
    """Extract the packed values at *positions* (uint64), touching only them.

    The positional generalisation of :func:`unpack_bits`: each requested
    value is assembled from (at most) the two words its bits live in, so a
    sparse gather reads a handful of words instead of unpacking the whole
    buffer.  *positions* must lie in ``[0, count)``; order is preserved and
    duplicates are allowed.
    """
    _require_width(width)
    positions = np.asarray(positions)
    if positions.size == 0:
        return np.empty(0, dtype=np.uint64)
    if int(positions.min()) < 0 or int(positions.max()) >= count:
        raise OperatorError(
            f"packed_gather positions out of range [0, {count})"
        )
    buf = packed.values
    if buf.dtype != np.uint8:
        raise OperatorError(f"packed_gather requires a uint8 buffer, got {buf.dtype}")
    num_words = (count * width + 63) // 64 + 1
    body, tail = _split_words(buf, num_words)

    def fetch(word_idx: np.ndarray) -> np.ndarray:
        """words[word_idx] across the zero-copy body and the padded tail
        (only positions' words are touched — O(positions), not O(buffer))."""
        out = np.empty(word_idx.size, dtype=np.uint64)
        in_body = word_idx < body.size
        out[in_body] = body[word_idx[in_body]]
        out[~in_body] = tail[word_idx[~in_body] - body.size]
        return out

    bitpos = positions.astype(np.uint64) * np.uint64(width)
    word_idx = (bitpos >> np.uint64(6)).astype(np.intp)
    bit = bitpos & np.uint64(63)
    low = fetch(word_idx) >> bit
    high = (fetch(word_idx + 1) << (np.uint64(63) - bit)) << np.uint64(1)
    values = low | high
    if width < 64:
        values &= np.uint64((1 << width) - 1)
    return values


@register_operator("ZigZagEncode", 1, "map signed integers to non-negative integers",
                   category="bitpack")
def zigzag_encode(col: Column, name: Optional[str] = None) -> Column:
    """Zig-zag encode signed integers: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...

    Small-magnitude values (of either sign) map to small non-negative values,
    so DELTA residuals become NS-packable.
    """
    values = col.values
    if not np.issubdtype(values.dtype, np.integer):
        raise OperatorError(f"ZigZagEncode() requires integer data, got dtype {values.dtype}")
    as_i64 = values.astype(np.int64, copy=False)
    encoded = (as_i64 << 1) ^ (as_i64 >> 63)
    return Column(encoded.astype(np.uint64), name=name or col.name)


def _zigzag_decode_values(values: np.ndarray) -> np.ndarray:
    """Raw-array zig-zag decode kernel (shared with the fused-kernel path)."""
    unsigned = values.astype(np.uint64, copy=False)
    return ((unsigned >> np.uint64(1)).astype(np.int64)
            ^ -(unsigned & np.uint64(1)).astype(np.int64))


@register_operator("ZigZagDecode", 1, "inverse of zig-zag encoding", category="bitpack")
def zigzag_decode(col: Column, name: Optional[str] = None) -> Column:
    """Invert :func:`zigzag_encode`."""
    return Column(_zigzag_decode_values(col.values), name=name or col.name)

"""Run-structure operators: detecting runs, segment ids, run boundaries.

These operators are the *compression-side* counterparts of the paper's
Algorithm 1: where decompression expands ``(lengths, values)`` back into a
flat column, compression must first find where runs begin and how long they
are.  They are also reused by the query engine to aggregate directly over
the run domain without decompressing (experiment E10).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


@register_operator("RunStartsMask", 1, "boolean mask marking the first element of each run",
                   category="runs")
def run_starts_mask(col: Column, name: Optional[str] = None) -> Column:
    """Boolean mask which is true exactly at positions where a new run begins.

    >>> from repro.columnar.ops.generate import sequence
    >>> run_starts_mask(sequence([5, 5, 7, 7, 7, 5])).to_pylist()
    [True, False, True, False, False, True]
    """
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=bool), name=name)
    mask = np.empty(len(values), dtype=bool)
    mask[0] = True
    np.not_equal(values[1:], values[:-1], out=mask[1:])
    return Column(mask, name=name)


@register_operator("RunStartPositions", 1, "positions at which each run begins",
                   category="runs")
def run_start_positions(col: Column, name: Optional[str] = None) -> Column:
    """Positions of the first element of every run (sorted, starts with 0)."""
    mask = run_starts_mask(col)
    return Column(np.flatnonzero(mask.values).astype(np.int64), name=name)


@register_operator("RunEndPositions", 1, "exclusive end position of each run", category="runs")
def run_end_positions(col: Column, name: Optional[str] = None) -> Column:
    """Exclusive end position of every run; the last element equals ``len(col)``.

    This is exactly the ``run_positions`` column of the paper's RPE scheme
    (§II-A): the inclusive prefix sum of the run lengths.
    """
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=np.int64), name=name)
    starts = np.flatnonzero(run_starts_mask(col).values)
    ends = np.empty(len(starts), dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[-1] = len(values)
    return Column(ends, name=name)


@register_operator("RunLengths", 1, "length of each run", category="runs")
def run_lengths(col: Column, name: Optional[str] = None) -> Column:
    """Length of every maximal run of equal values.

    >>> from repro.columnar.ops.generate import sequence
    >>> run_lengths(sequence([5, 5, 7, 7, 7, 5])).to_pylist()
    [2, 3, 1]
    """
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=np.int64), name=name)
    starts = np.flatnonzero(run_starts_mask(col).values)
    lengths = np.empty(len(starts), dtype=np.int64)
    lengths[:-1] = np.diff(starts)
    lengths[-1] = len(values) - starts[-1]
    return Column(lengths, name=name)


@register_operator("RunValues", 1, "representative value of each run", category="runs")
def run_values(col: Column, name: Optional[str] = None) -> Column:
    """The value of every maximal run (one element per run).

    >>> from repro.columnar.ops.generate import sequence
    >>> run_values(sequence([5, 5, 7, 7, 7, 5])).to_pylist()
    [5, 7, 5]
    """
    values = col.values
    if len(values) == 0:
        return Column(np.empty(0, dtype=col.dtype), name=name)
    starts = np.flatnonzero(run_starts_mask(col).values)
    return Column(values[starts], name=name or col.name)


@register_operator("RunIds", 1, "per-element index of the run it belongs to", category="runs")
def run_ids(col: Column, name: Optional[str] = None) -> Column:
    """For every element, the index of the run containing it (0-based).

    >>> from repro.columnar.ops.generate import sequence
    >>> run_ids(sequence([5, 5, 7, 7, 7, 5])).to_pylist()
    [0, 0, 1, 1, 1, 2]
    """
    mask = run_starts_mask(col).values
    if len(mask) == 0:
        return Column(np.empty(0, dtype=np.int64), name=name)
    return Column(np.cumsum(mask, dtype=np.int64) - 1, name=name)


@register_operator("SegmentIds", 0, "position // segment_length for n positions",
                   category="runs")
def segment_ids(length: int, segment_length: int, name: Optional[str] = None) -> Column:
    """The segment index of every position for fixed-length segments.

    Equivalent to Algorithm 2's ``Elementwise(÷, id, ells)`` but provided as
    a named operator so plans and the cost model can treat it as a single
    streaming pass.
    """
    if segment_length <= 0:
        raise OperatorError(f"segment_length must be positive, got {segment_length}")
    if length < 0:
        raise OperatorError(f"length must be non-negative, got {length}")
    return Column(np.arange(length, dtype=np.int64) // segment_length, name=name)


def count_runs(col: Column) -> int:
    """Number of maximal runs in *col* (0 for an empty column)."""
    if len(col) == 0:
        return 0
    return int(run_starts_mask(col).values.sum(dtype=np.int64))


def runs_of(col: Column) -> Tuple[Column, Column]:
    """Convenience: return ``(values, lengths)`` — the RLE constituents of *col*."""
    return run_values(col), run_lengths(col)

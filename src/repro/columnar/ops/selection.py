"""Selection / stream-compaction operators.

These operators implement the "query side" of the paper's argument that
decompression and query execution are made of the same building blocks:
producing boolean selection masks, compacting columns under a mask, and
turning masks into position lists (the late-materialisation currency of
columnar engines).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


def _require_mask(mask: Column, op: str) -> np.ndarray:
    values = mask.values
    if values.dtype != np.bool_:
        raise OperatorError(f"{op}() requires a boolean mask column, got dtype {values.dtype}")
    return values


@register_operator("Compact", 2, "keep only elements where the mask is true",
                   category="selection")
def compact(col: Column, mask: Column, name: Optional[str] = None) -> Column:
    """Stream compaction: keep ``col[i]`` where ``mask[i]`` is true.

    >>> from repro.columnar.ops.generate import sequence
    >>> from repro.columnar.column import Column
    >>> compact(sequence([1, 2, 3, 4]), Column([True, False, True, False])).to_pylist()
    [1, 3]
    """
    values = _require_mask(mask, "Compact")
    if len(col) != len(mask):
        raise OperatorError(
            f"Compact() column and mask must have equal length, got {len(col)} and {len(mask)}"
        )
    return Column(col.values[values], name=name or col.name)


@register_operator("PositionsOf", 1, "positions at which a boolean mask is true",
                   category="selection")
def positions_of(mask: Column, name: Optional[str] = None) -> Column:
    """Return the (sorted) positions at which *mask* is true.

    >>> from repro.columnar.column import Column
    >>> positions_of(Column([False, True, True, False])).to_pylist()
    [1, 2]
    """
    values = _require_mask(mask, "PositionsOf")
    return Column(np.flatnonzero(values).astype(np.int64), name=name)


@register_operator("Between", 1, "boolean mask for lo <= col <= hi", category="selection")
def between(col: Column, lo, hi, name: Optional[str] = None) -> Column:
    """Return the boolean mask of elements within the inclusive range [*lo*, *hi*]."""
    values = col.values
    return Column((values >= lo) & (values <= hi), name=name)


@register_operator("IsIn", 1, "boolean mask for membership in a literal set",
                   category="selection")
def is_in(col: Column, candidates, name: Optional[str] = None) -> Column:
    """Return the boolean mask of elements contained in *candidates*."""
    cand = np.asarray(list(candidates) if not isinstance(candidates, np.ndarray) else candidates)
    return Column(np.isin(col.values, cand), name=name)


@register_operator("MaskAnd", 2, "logical AND of two boolean masks", category="selection")
def mask_and(left: Column, right: Column, name: Optional[str] = None) -> Column:
    """Logical AND of two boolean masks."""
    lvals = _require_mask(left, "MaskAnd")
    rvals = _require_mask(right, "MaskAnd")
    if len(left) != len(right):
        raise OperatorError("MaskAnd() masks must have equal length")
    return Column(lvals & rvals, name=name)


@register_operator("MaskOr", 2, "logical OR of two boolean masks", category="selection")
def mask_or(left: Column, right: Column, name: Optional[str] = None) -> Column:
    """Logical OR of two boolean masks."""
    lvals = _require_mask(left, "MaskOr")
    rvals = _require_mask(right, "MaskOr")
    if len(left) != len(right):
        raise OperatorError("MaskOr() masks must have equal length")
    return Column(lvals | rvals, name=name)


@register_operator("MaskNot", 1, "logical negation of a boolean mask", category="selection")
def mask_not(mask: Column, name: Optional[str] = None) -> Column:
    """Logical NOT of a boolean mask."""
    values = _require_mask(mask, "MaskNot")
    return Column(~values, name=name)


@register_operator("CountTrue", 1, "number of true elements in a boolean mask",
                   category="selection")
def count_true(mask: Column, name: Optional[str] = None) -> Column:
    """Return a length-1 column holding the number of true elements of *mask*."""
    values = _require_mask(mask, "CountTrue")
    return Column(np.asarray([int(values.sum(dtype=np.int64))], dtype=np.int64), name=name)

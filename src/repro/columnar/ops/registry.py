"""Operator registry for the columnar algebra.

The paper's central observation is that decompression can be written with
*the same columnar operators that appear in analytic query plans*.  To make
that observation executable, every operator in :mod:`repro.columnar.ops` is
registered here under a stable name ("PrefixSum", "Gather", "Scatter", ...)
together with a small amount of metadata.  Plans (:mod:`repro.columnar.plan`)
refer to operators purely by name, so a decompression plan is a data
structure, not code — which is what lets us truncate, rewrite and re-compose
plans, mirroring the paper's decomposition arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ...errors import OperatorError, UnknownOperatorError


@dataclass(frozen=True)
class OperatorSpec:
    """Metadata describing a registered columnar operator.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"PrefixSum"``.  Plans refer to this name.
    func:
        The Python callable implementing the operator.  It takes Columns as
        positional arguments, scalar keyword parameters, and returns a Column.
    arity:
        Number of column (positional) operands the operator expects, or
        ``None`` when variadic.
    description:
        One-line human description.
    cost_weight:
        Relative per-element cost weight used by the cost model.  Data
        movement by random access (gather/scatter) is costed higher than
        streaming arithmetic, matching their behaviour on real hardware.
    category:
        Loose grouping: ``"generate"``, ``"scan"``, ``"movement"``,
        ``"elementwise"``, ``"selection"``, ``"runs"``, ``"reduction"``.
    """

    name: str
    func: Callable
    arity: Optional[int]
    description: str
    cost_weight: float = 1.0
    category: str = "misc"


class OperatorRegistry:
    """A name → :class:`OperatorSpec` mapping with registration helpers."""

    def __init__(self) -> None:
        self._specs: Dict[str, OperatorSpec] = {}

    def register(
        self,
        name: str,
        func: Callable,
        arity: Optional[int],
        description: str,
        cost_weight: float = 1.0,
        category: str = "misc",
        overwrite: bool = False,
    ) -> OperatorSpec:
        """Register *func* under *name* and return its spec."""
        if name in self._specs and not overwrite:
            raise OperatorError(f"operator {name!r} is already registered")
        spec = OperatorSpec(
            name=name,
            func=func,
            arity=arity,
            description=description,
            cost_weight=cost_weight,
            category=category,
        )
        self._specs[name] = spec
        return spec

    def get(self, name: str) -> OperatorSpec:
        """Look up an operator spec; raise :class:`UnknownOperatorError` if absent."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise UnknownOperatorError(
                f"unknown columnar operator {name!r}; known operators: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> List[str]:
        """All registered operator names, sorted."""
        return sorted(self._specs)

    def by_category(self, category: str) -> List[OperatorSpec]:
        """All operators in the given category."""
        return [s for s in self._specs.values() if s.category == category]

    def items(self) -> Iterable[Tuple[str, OperatorSpec]]:
        return self._specs.items()


#: The process-wide default registry used by plans and schemes.
DEFAULT_REGISTRY = OperatorRegistry()


def register_operator(
    name: str,
    arity: Optional[int],
    description: str,
    cost_weight: float = 1.0,
    category: str = "misc",
):
    """Decorator registering a function in :data:`DEFAULT_REGISTRY`.

    Example
    -------
    >>> @register_operator("Twice", 1, "doubles every element")
    ... def twice(col):
    ...     ...
    """

    def decorator(func: Callable) -> Callable:
        DEFAULT_REGISTRY.register(
            name,
            func,
            arity=arity,
            description=description,
            cost_weight=cost_weight,
            category=category,
        )
        return func

    return decorator

"""Element-wise operators (the paper's ``Elementwise(op, a, b)``).

Algorithm 2 of the paper uses two of these: an integer division to map
positions to segment indices, and an addition to re-apply offsets to the
replicated references.  The general :func:`elementwise` entry point accepts
an operation name so plans can store the operation as data; the named
convenience wrappers (:func:`add`, :func:`subtract`, ...) are registered as
operators in their own right as well.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .bitpack import _zigzag_decode_values
from .registry import register_operator

Operand = Union[Column, int, float]

#: Binary operations available to ``Elementwise``.  Values are functions of
#: two NumPy arrays (or array and scalar).
BINARY_OPERATIONS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "//": np.floor_divide,
    "div": np.floor_divide,
    "%": np.mod,
    "min": np.minimum,
    "max": np.maximum,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<<": np.left_shift,
    ">>": np.right_shift,
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

#: Unary operations available to ``ElementwiseUnary``.
UNARY_OPERATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "neg": np.negative,
    "abs": np.abs,
    "not": np.logical_not,
    "sign": np.sign,
    # Round to the nearest integer and cast; used when re-applying integer
    # residuals to a real-valued model prediction (piecewise-linear /
    # polynomial decompression plans).
    "round": lambda a: np.rint(a).astype(np.int64),
    # Zig-zag decoding is element-wise, which lets the plan optimizer fuse a
    # ``ZigZagDecode`` step into an adjacent elementwise chain.
    "zigzag": _zigzag_decode_values,
}


def _operand_values(operand: Operand) -> Union[np.ndarray, int, float]:
    return operand.values if isinstance(operand, Column) else operand


def _check_lengths(left: Operand, right: Operand, op: str) -> None:
    if isinstance(left, Column) and isinstance(right, Column) and len(left) != len(right):
        raise OperatorError(
            f"Elementwise({op!r}) operands must have equal length, "
            f"got {len(left)} and {len(right)}"
        )


@register_operator("Elementwise", None, "apply a named binary operation element-wise",
                   category="elementwise")
def elementwise(op: str, left: Operand, right: Operand,
                name: Optional[str] = None) -> Column:
    """Apply binary operation *op* element-wise to *left* and *right*.

    Either operand may be a scalar, which broadcasts — the paper's plans use
    constant columns instead, and both spellings are equivalent (and tested
    to be).

    >>> from repro.columnar.ops.generate import sequence
    >>> elementwise("+", sequence([1, 2, 3]), sequence([10, 10, 10])).to_pylist()
    [11, 12, 13]
    """
    if op not in BINARY_OPERATIONS:
        raise OperatorError(
            f"unknown elementwise operation {op!r}; "
            f"known operations: {sorted(BINARY_OPERATIONS)}"
        )
    _check_lengths(left, right, op)
    result = BINARY_OPERATIONS[op](_operand_values(left), _operand_values(right))
    if name is None and isinstance(left, Column):
        name = left.name
    return Column(result, name=name)


@register_operator("ElementwiseUnary", 1, "apply a named unary operation element-wise",
                   category="elementwise")
def elementwise_unary(op: str, operand: Column, name: Optional[str] = None) -> Column:
    """Apply unary operation *op* element-wise."""
    if op not in UNARY_OPERATIONS:
        raise OperatorError(
            f"unknown unary operation {op!r}; known operations: {sorted(UNARY_OPERATIONS)}"
        )
    return Column(UNARY_OPERATIONS[op](operand.values), name=name or operand.name)


@register_operator("Cast", 1, "cast a column to a target dtype", category="elementwise")
def cast(col: Column, dtype: Any, name: Optional[str] = None) -> Column:
    """``astype`` to *dtype* — the in-plan form of a scheme's restore-cast.

    Cascade plans splice an inner scheme's decompression in front of the
    outer plan; the restore-cast that ``decompress()`` normally applies
    outside the plan must then happen *inside* it (e.g. packed DICT codes
    must reach the outer ``UnpackBits`` as uint8).
    """
    return Column(col.values.astype(np.dtype(dtype), copy=False),
                  name=name or col.name)


@register_operator("Add", 2, "element-wise addition", category="elementwise")
def add(left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise ``left + right``."""
    return elementwise("+", left, right, name=name)


@register_operator("Subtract", 2, "element-wise subtraction", category="elementwise")
def subtract(left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise ``left - right``."""
    return elementwise("-", left, right, name=name)


@register_operator("Multiply", 2, "element-wise multiplication", category="elementwise")
def multiply(left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise ``left * right``."""
    return elementwise("*", left, right, name=name)


@register_operator("FloorDivide", 2, "element-wise integer division", category="elementwise")
def floor_divide(left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise ``left // right`` (Algorithm 2's segment-index computation)."""
    return elementwise("//", left, right, name=name)


@register_operator("Modulo", 2, "element-wise modulo", category="elementwise")
def modulo(left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise ``left % right``."""
    return elementwise("%", left, right, name=name)


@register_operator("AdjacentDifference", 1,
                   "out[0]=col[0]; out[i]=col[i]-col[i-1] (inverse of PrefixSum)",
                   category="elementwise")
def adjacent_difference(col: Column, name: Optional[str] = None) -> Column:
    """The inverse of an inclusive prefix sum.

    This is the *compression-side* operator of DELTA, and the operator that
    recovers run lengths from run end positions — i.e. the operator whose
    omission turns RLE into RPE (§II-A of the paper).

    >>> from repro.columnar.ops.generate import sequence
    >>> adjacent_difference(sequence([3, 4, 6])).to_pylist()
    [3, 1, 2]
    """
    arr = col.values
    if not np.issubdtype(arr.dtype, np.integer):
        out_dtype = arr.dtype
    elif arr.dtype == np.uint64:
        # result_type(uint64, int64) is float64, which would silently turn
        # an integer column into floats; stay in uint64, where the wrapping
        # subtraction is exactly inverted by a uint64 prefix sum.
        out_dtype = np.uint64
    else:
        out_dtype = np.result_type(arr.dtype, np.int64)
    # Subtract in the output dtype: with a narrower input dtype NumPy would
    # otherwise compute the difference in the input's arithmetic (wrapping
    # e.g. uint8 2-5 to 253) and only then cast.
    arr = arr.astype(out_dtype, copy=False)
    out = np.empty(len(arr), dtype=out_dtype)
    if len(arr):
        out[0] = arr[0]
        np.subtract(arr[1:], arr[:-1], out=out[1:])
    return Column(out, name=name or col.name)


@register_operator("FusedElementwise", None,
                   "a fused region of element-wise / gather / unpack operations",
                   category="elementwise")
def fused_elementwise(chain, name: Optional[str] = None, **operands) -> Column:
    """Execute a pre-compiled region of fusable operations in one call.

    *chain* is a tuple of instructions produced by the plan optimizer
    (:func:`repro.columnar.compile.optimizer.fuse_elementwise_chains`).
    Instruction ``i`` writes virtual register ``i``; the last register is
    the result.  Instruction forms:

    * ``("binary", op, a, b)`` — a named binary elementwise operation;
    * ``("unary", op, a)`` — a named unary elementwise operation;
    * ``("gather", values, indices)`` — random-access read;
    * ``("unpack", packed, width, count, dtype)`` — fixed-width bit unpack.

    An operand reference is ``("reg", i)`` (an earlier register),
    ``("col", slot)`` (a column passed via *operands*), ``("param", key)``
    (a scalar passed via *operands*, typically a resolved ParamRef) or
    ``("lit", value)``.

    The region's intermediates live only as raw NumPy arrays inside this
    one call — nothing is wrapped in a :class:`Column` until the final
    result — which is what removes the per-step materialisation and
    validation cost of the interpreted plan.  The optimizer only emits
    regions for plans that are valid as written, so the redundant per-step
    checks (operand lengths, gather bounds) are elided here.
    """
    from .bitpack import _unpack_bits_values

    registers: list = []

    def resolve(ref):
        kind = ref[0]
        if kind == "reg":
            return registers[ref[1]]
        if kind == "col":
            return operands[ref[1]].values
        if kind == "param":
            return operands[ref[1]]
        return ref[1]  # ("lit", value)

    for instruction in chain:
        kind = instruction[0]
        if kind == "binary":
            op = instruction[1]
            if op not in BINARY_OPERATIONS:
                raise OperatorError(f"unknown fused binary operation {op!r}")
            result = BINARY_OPERATIONS[op](resolve(instruction[2]),
                                           resolve(instruction[3]))
        elif kind == "unary":
            op = instruction[1]
            if op not in UNARY_OPERATIONS:
                raise OperatorError(f"unknown fused unary operation {op!r}")
            result = UNARY_OPERATIONS[op](np.asarray(resolve(instruction[2])))
        elif kind == "gather":
            result = np.asarray(resolve(instruction[1]))[np.asarray(resolve(instruction[2]))]
        elif kind == "unpack":
            result = _unpack_bits_values(np.asarray(resolve(instruction[1])),
                                         int(resolve(instruction[2])),
                                         int(resolve(instruction[3])))
            result = result.astype(resolve(instruction[4]))
        else:
            raise OperatorError(f"unknown fused instruction kind {kind!r}")
        registers.append(result)
    if not registers:
        raise OperatorError("FusedElementwise() requires a non-empty chain")
    return Column(np.asarray(registers[-1]), name=name)


@register_operator("Compare", None, "element-wise comparison producing a boolean mask",
                   category="elementwise")
def compare(op: str, left: Operand, right: Operand, name: Optional[str] = None) -> Column:
    """Element-wise comparison (``==``, ``<``, ``<=`` ...) producing booleans."""
    if op not in ("==", "!=", "<", "<=", ">", ">="):
        raise OperatorError(f"Compare() does not support operation {op!r}")
    return elementwise(op, left, right, name=name)

"""Column-generating operators: ``Constant``, ``Iota``, ``Zeros``, ``Ones``.

These are the "leaves" of many decompression plans.  Algorithm 1 of the paper
(RLE decompression) starts by materialising a column of ones and a column of
zeros; Algorithm 2 (FOR decompression) materialises a constant column holding
the segment length.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ...errors import OperatorError
from ..column import Column
from .registry import register_operator


@register_operator("Constant", 0, "a column of n copies of a constant value", category="generate")
def constant(value: Any, length: int, dtype: Any = None, name: Optional[str] = None) -> Column:
    """Return a column of *length* copies of *value*.

    >>> constant(7, 4).to_pylist()
    [7, 7, 7, 7]
    """
    if length < 0:
        raise OperatorError(f"Constant() length must be non-negative, got {length}")
    if dtype is None:
        dtype = np.asarray(value).dtype
        if np.issubdtype(dtype, np.integer):
            dtype = np.int64
    return Column(np.full(length, value, dtype=dtype), name=name)


@register_operator("Zeros", 0, "a column of n zeros", category="generate")
def zeros(length: int, dtype: Any = np.int64, name: Optional[str] = None) -> Column:
    """Return a column of *length* zeros."""
    if length < 0:
        raise OperatorError(f"Zeros() length must be non-negative, got {length}")
    return Column(np.zeros(length, dtype=dtype), name=name)


@register_operator("Ones", 0, "a column of n ones", category="generate")
def ones(length: int, dtype: Any = np.int64, name: Optional[str] = None) -> Column:
    """Return a column of *length* ones."""
    if length < 0:
        raise OperatorError(f"Ones() length must be non-negative, got {length}")
    return Column(np.ones(length, dtype=dtype), name=name)


@register_operator("Iota", 0, "the identity column 0, 1, ..., n-1", category="generate")
def iota(length: int, start: int = 0, step: int = 1, dtype: Any = np.int64,
         name: Optional[str] = None) -> Column:
    """Return the arithmetic sequence ``start, start+step, ...`` of *length* elements.

    With the default arguments this is the *position* (a.k.a. ``id``) column
    used by Algorithm 2 to compute which FOR segment each element belongs to.

    >>> iota(5).to_pylist()
    [0, 1, 2, 3, 4]
    >>> iota(4, start=10, step=2).to_pylist()
    [10, 12, 14, 16]
    """
    if length < 0:
        raise OperatorError(f"Iota() length must be non-negative, got {length}")
    stop = start + step * length
    return Column(np.arange(start, stop, step, dtype=dtype)[:length], name=name)


@register_operator("Sequence", 0, "an explicit literal column", category="generate")
def sequence(values, dtype: Any = None, name: Optional[str] = None) -> Column:
    """Materialise an explicit list of values as a column (a literal)."""
    return Column(np.asarray(values, dtype=dtype), name=name)

"""Plan compilation: optimize once, cache, execute with buffer reuse.

The rest of the library treats a decompression plan as *data* — a linear
sequence of columnar operator applications (:mod:`repro.columnar.plan`).
This package turns that data into something closer to executable code:

* :mod:`~repro.columnar.compile.optimizer` — a rewrite-pass pipeline over
  plans: dead-step elimination, ParamRef constant folding, scalarisation of
  constant columns, scan strength reduction, common-subplan elimination, and
  fusion of element-wise chains into single fused kernels;
* :mod:`~repro.columnar.compile.executor` — a :class:`CompiledPlan` whose
  evaluation loop resolves operators once (at compile time), frees every
  intermediate binding as soon as its last consumer has run, and serves
  generated columns (``Zeros``/``Ones``/``Constant``/``Iota``) from a shared
  immutable-column cache instead of re-materialising them per evaluation;
* :mod:`~repro.columnar.compile.cache` — process-wide caches keyed by the
  plan's structural signature (and, one level up, by the compression
  scheme's structural signature), so the thousands of chunk decompressions a
  query triggers all share one compiled plan.

The contract of the whole pipeline is strict observational equivalence: for
any valid plan ``p`` and inputs ``b``, ``compile(p).run(b)`` produces the
same column as ``p.evaluate(b)``.  Property tests assert this for every
registered scheme, including after the prefix/suffix plan surgery of
:mod:`repro.schemes.decomposition`.
"""

from .optimizer import (
    OptimizationReport,
    eliminate_common_subplans,
    eliminate_dead_steps,
    fold_param_refs,
    freeze_value,
    fuse_elementwise_chains,
    optimize,
    optimize_with_report,
    reduce_scans_over_generators,
    scalarize_constant_operands,
)
from .executor import (
    CompiledPlan,
    compile_plan,
    generated_column_cache_info,
    clear_generated_column_cache,
)
from .cache import (
    PlanCompileCache,
    cache_info,
    clear_caches,
    compiled_plan,
    compiled_partial_plan,
    compiled_plan_for_scheme,
    plan_signature,
)

__all__ = [
    "OptimizationReport",
    "optimize",
    "optimize_with_report",
    "eliminate_dead_steps",
    "fold_param_refs",
    "scalarize_constant_operands",
    "reduce_scans_over_generators",
    "eliminate_common_subplans",
    "fuse_elementwise_chains",
    "freeze_value",
    "CompiledPlan",
    "compile_plan",
    "generated_column_cache_info",
    "clear_generated_column_cache",
    "PlanCompileCache",
    "compiled_plan",
    "compiled_partial_plan",
    "compiled_plan_for_scheme",
    "plan_signature",
    "cache_info",
    "clear_caches",
]

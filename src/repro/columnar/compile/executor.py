"""Compiled-plan executor: liveness-aware evaluation with buffer reuse.

The interpreted evaluator (:meth:`repro.columnar.plan.Plan.evaluate_detailed`)
re-resolves every operator per call, keeps every intermediate binding alive
until the evaluation ends, and re-materialises generated columns (the zeros,
ones and constants at the head of most decompression plans) on every call.

:class:`CompiledPlan` removes all three costs:

* operator specs are resolved once, at compile time;
* a binding-liveness analysis records, per step, which bindings have just
  seen their last consumer — those are dropped from the environment
  immediately, so their buffers can be reclaimed (or reused by NumPy's
  allocator) while the rest of the plan still runs;
* steps that generate content-determined columns (``Zeros``, ``Ones``,
  ``Constant``, ``Iota``) are served from a bounded, process-wide cache of
  immutable columns: every column in this library is read-only, so the same
  zeros column can safely back thousands of chunk decompressions.

Cost accounting and full-binding retention remain available behind explicit
flags, so the fast path pays for neither.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...errors import PlanError
from ..column import Column
from ..plan import EvaluationResult, ParamRef, Plan, PlanCost
from ..ops.registry import DEFAULT_REGISTRY, OperatorRegistry
from .optimizer import DEFAULT_PASSES, deterministic_steps, optimize


# --------------------------------------------------------------------------- #
# Generated-column cache (the executor's buffer-reuse mechanism)
# --------------------------------------------------------------------------- #

#: Operators whose output is fully determined by their (scalar) parameters.
_CACHEABLE_GENERATORS = frozenset(("Zeros", "Ones", "Constant", "Iota"))

#: Cost weights of fused-region instructions, mirroring the registered
#: weights of the operators they were fused from (movement stays expensive:
#: fusion removes materialisation, not random access).
_FUSED_INSTRUCTION_WEIGHTS = {"binary": 1.0, "unary": 1.0, "gather": 2.0,
                              "unpack": 1.5}


def _fused_cost_weight(params: Tuple[Tuple[str, Any], ...]) -> float:
    """Cost weight of a FusedElementwise step: its most expensive instruction."""
    chain = dict(params).get("chain", ())
    weights = [_FUSED_INSTRUCTION_WEIGHTS.get(instruction[0], 1.0)
               for instruction in chain]
    return max(weights, default=1.0)

_GENERATED_CACHE: "OrderedDict[Tuple, Column]" = OrderedDict()
_GENERATED_CACHE_MAX_ENTRIES = 128
_GENERATED_CACHE_MAX_BYTES = 128 * (1 << 20)
_generated_cache_bytes = 0
_generated_cache_hits = 0
_generated_cache_misses = 0
#: Guards the cache's recency order, byte accounting and eviction loop —
#: compiled plans execute concurrently under the chunk-parallel scanner.
_generated_cache_lock = threading.Lock()


def _generated_cache_key(op: str, kwargs: Mapping[str, Any]) -> Optional[Tuple]:
    parts: List[Tuple[str, Any]] = []
    for key, value in kwargs.items():
        if isinstance(value, np.dtype):
            value = value.str
        elif isinstance(value, type) and issubclass(value, np.generic):
            value = np.dtype(value).str
        elif isinstance(value, np.generic):
            value = value.item()
        try:
            hash(value)
        except TypeError:
            return None
        parts.append((key, value))
    return (op, tuple(sorted(parts)))


def _note_cache_hit(key: Tuple) -> None:
    global _generated_cache_hits
    with _generated_cache_lock:
        if key in _GENERATED_CACHE:
            _GENERATED_CACHE.move_to_end(key)
        _generated_cache_hits += 1


def _store_generated(key: Tuple, column: Column) -> None:
    global _generated_cache_bytes, _generated_cache_misses
    with _generated_cache_lock:
        _generated_cache_misses += 1
        previous = _GENERATED_CACHE.get(key)
        if previous is not None:
            _generated_cache_bytes -= previous.nbytes
        _GENERATED_CACHE[key] = column
        _generated_cache_bytes += column.nbytes
        while (_GENERATED_CACHE
               and (len(_GENERATED_CACHE) > _GENERATED_CACHE_MAX_ENTRIES
                    or _generated_cache_bytes > _GENERATED_CACHE_MAX_BYTES)):
            __, evicted = _GENERATED_CACHE.popitem(last=False)
            _generated_cache_bytes -= evicted.nbytes


def _generated_column(op: str, func, kwargs: Dict[str, Any]) -> Column:
    """Serve a generator step from the shared immutable-column cache."""
    key = _generated_cache_key(op, kwargs)
    if key is None:
        return func(**kwargs)
    cached = _GENERATED_CACHE.get(key)
    if cached is not None:
        _note_cache_hit(key)
        return cached
    column = func(**kwargs)
    _store_generated(key, column)
    return column


def generated_column_cache_info() -> Dict[str, int]:
    """Hit/miss/size statistics of the generated-column cache."""
    return {
        "hits": _generated_cache_hits,
        "misses": _generated_cache_misses,
        "entries": len(_GENERATED_CACHE),
        "bytes": _generated_cache_bytes,
    }


def clear_generated_column_cache() -> None:
    """Empty the generated-column cache and reset its statistics."""
    global _generated_cache_bytes, _generated_cache_hits, _generated_cache_misses
    with _generated_cache_lock:
        _GENERATED_CACHE.clear()
        _generated_cache_bytes = 0
        _generated_cache_hits = 0
        _generated_cache_misses = 0


# --------------------------------------------------------------------------- #
# Compiled steps and plans
# --------------------------------------------------------------------------- #

class _CompiledStep:
    """One step with its operator resolved and its liveness effects attached."""

    __slots__ = ("output", "op", "func", "cost_weight", "column_args",
                 "param_args", "base_kwargs", "ref_args", "release",
                 "is_generator", "det_key")

    def __init__(self, output: str, op: str, func, cost_weight: float,
                 column_args: Tuple[Tuple[str, str], ...],
                 param_args: Tuple[Tuple[str, Any], ...],
                 ref_args: Tuple[Tuple[str, ParamRef], ...],
                 release: Tuple[str, ...], is_generator: bool,
                 det_key: Optional[Tuple] = None):
        self.output = output
        self.op = op
        self.func = func
        self.cost_weight = cost_weight
        self.column_args = column_args
        self.param_args = param_args
        #: Literal parameters, pre-baked; the hot loop copies this dict once
        #: per step instead of re-inserting each literal.
        self.base_kwargs = dict(param_args)
        self.ref_args = ref_args
        self.release = release
        self.is_generator = is_generator
        #: Structural key of the deterministic (data-independent) subplan
        #: computing this step, or None; see ``optimizer.deterministic_steps``.
        self.det_key = det_key


class CompiledPlan:
    """An optimized, pre-resolved, liveness-annotated executable plan.

    Parameters
    ----------
    plan:
        The plan to compile.  It is optimized with the default rewrite
        pipeline unless ``optimize_plan`` is false.
    registry:
        Operator registry used to resolve step operators (once, here).
    source:
        The uncompiled plan this was derived from, kept for introspection.
    """

    def __init__(self, plan: Plan, registry: OperatorRegistry = DEFAULT_REGISTRY,
                 optimize_plan: bool = True, source: Optional[Plan] = None):
        self.source: Plan = source if source is not None else plan
        self.plan: Plan = optimize(plan, DEFAULT_PASSES) if optimize_plan else plan
        self.registry = registry

        # Liveness: the step index of every binding's last consumer.
        last_use: Dict[str, int] = {}
        for index, step in enumerate(self.plan.steps):
            for binding in step.dependencies():
                last_use[binding] = index
        output = self.plan.output

        det_keys = deterministic_steps(self.plan)
        steps: List[_CompiledStep] = []
        for index, step in enumerate(self.plan.steps):
            spec = registry.get(step.op)
            literal_args: List[Tuple[str, Any]] = []
            ref_args: List[Tuple[str, ParamRef]] = []
            for key, value in step.params.items():
                if isinstance(value, ParamRef):
                    ref_args.append((key, value))
                else:
                    literal_args.append((key, value))
            release = tuple(binding for binding, last in last_use.items()
                            if last == index and binding != output)
            det_key = det_keys.get(step.output)
            literal_tuple = tuple(literal_args)
            cost_weight = (_fused_cost_weight(literal_tuple)
                           if step.op == "FusedElementwise" else spec.cost_weight)
            steps.append(_CompiledStep(
                output=step.output,
                op=step.op,
                func=spec.func,
                cost_weight=cost_weight,
                column_args=tuple(step.column_inputs.items()),
                param_args=tuple(literal_args),
                ref_args=tuple(ref_args),
                release=release,
                is_generator=(det_key is None
                              and step.op in _CACHEABLE_GENERATORS
                              and not step.column_inputs),
                det_key=det_key,
            ))
        self._steps: Tuple[_CompiledStep, ...] = tuple(steps)
        #: Inputs that no step consumes and that are not the output; they are
        #: never even copied into the evaluation environment.
        self._unused_inputs = frozenset(
            name for name in self.plan.inputs
            if name not in last_use and name != output
        )

    # ------------------------------------------------------------------ #

    def bindings_defined(self) -> Tuple[str, ...]:
        """Bindings of the *optimized* plan (fused intermediates are gone)."""
        return self.plan.bindings_defined()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledPlan({self.plan.description or '<unnamed>'!r}, "
                f"{len(self.source.steps)} -> {len(self.plan.steps)} steps)")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, inputs: Mapping[str, Column]) -> Column:
        """Evaluate and return only the output column (the fast path)."""
        env: Dict[str, Column] = {}
        unused = self._unused_inputs
        for name in self.plan.inputs:
            if name in unused:
                continue
            try:
                env[name] = inputs[name]
            except KeyError:
                raise PlanError(f"missing plan input {name!r}") from None
        output = self.plan.output
        if output in env:
            return env[output]

        for step in self._steps:
            det_key = step.det_key
            if det_key is not None:
                cached = _GENERATED_CACHE.get(det_key)
                if cached is not None:
                    _note_cache_hit(det_key)
                    env[step.output] = cached
                    if step.release:
                        for dead in step.release:
                            env.pop(dead, None)
                    continue
            kwargs = step.base_kwargs.copy()
            for arg, binding in step.column_args:
                kwargs[arg] = env[binding]
            for arg, ref in step.ref_args:
                kwargs[arg] = ref.resolve(env)
            try:
                if step.is_generator:
                    result = _generated_column(step.op, step.func, kwargs)
                elif det_key is not None:
                    result = step.func(**kwargs)
                    _store_generated(det_key, result)
                else:
                    result = step.func(**kwargs)
            except TypeError as exc:
                raise PlanError(
                    f"step {step.output!r} ({step.op}) could not be invoked: {exc}"
                ) from exc
            env[step.output] = result
            if step.release:
                for dead in step.release:
                    env.pop(dead, None)
        try:
            return env[output]
        except KeyError:
            raise PlanError(f"binding {output!r} was never computed") from None

    def run_detailed(self, inputs: Mapping[str, Column],
                     collect_cost: bool = True,
                     keep_bindings: bool = False) -> EvaluationResult:
        """Evaluate with opt-in cost accounting and binding retention.

        Unlike the interpreter's :meth:`Plan.evaluate_detailed`, retaining
        every intermediate is *opt-in*: with ``keep_bindings=False`` (the
        default) the returned ``bindings`` contain only the bindings still
        live at the end of the plan.
        """
        env: Dict[str, Column] = {}
        for name in self.plan.inputs:
            if name not in inputs:
                raise PlanError(f"missing plan input {name!r}")
            value = inputs[name]
            if not isinstance(value, Column):
                raise PlanError(
                    f"plan input {name!r} must be a Column, got {type(value)!r}")
            env[name] = value
        cost = PlanCost()
        output = self.plan.output
        if output in env:
            return EvaluationResult(output=env[output], bindings=dict(env), cost=cost)

        for step in self._steps:
            kwargs: Dict[str, Any] = {}
            elements_in = 0
            for arg, binding in step.column_args:
                column = env[binding]
                kwargs[arg] = column
                elements_in += len(column)
            for arg, value in step.param_args:
                kwargs[arg] = value
            for arg, ref in step.ref_args:
                kwargs[arg] = ref.resolve(env)
            try:
                result = step.func(**kwargs)
            except TypeError as exc:
                raise PlanError(
                    f"step {step.output!r} ({step.op}) could not be invoked: {exc}"
                ) from exc
            if not isinstance(result, Column):
                raise PlanError(
                    f"operator {step.op!r} returned {type(result)!r}, expected Column")
            env[step.output] = result
            if collect_cost:
                cost.add(step.op, elements_in, len(result), result.nbytes,
                         step.cost_weight)
            if not keep_bindings:
                for dead in step.release:
                    env.pop(dead, None)
        if output not in env:
            raise PlanError(f"binding {output!r} was never computed")
        return EvaluationResult(output=env[output], bindings=env, cost=cost)


def compile_plan(plan: Plan, registry: OperatorRegistry = DEFAULT_REGISTRY,
                 optimize_plan: bool = True) -> CompiledPlan:
    """Compile (optimize + resolve + liveness-annotate) *plan*."""
    return CompiledPlan(plan, registry=registry, optimize_plan=optimize_plan,
                        source=plan)

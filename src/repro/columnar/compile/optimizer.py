"""Plan optimizer: a pipeline of semantics-preserving rewrite passes.

Each pass maps a :class:`~repro.columnar.plan.Plan` to an equivalent plan —
equivalent in the observational sense: evaluating the optimized plan with
the same inputs yields the same output column (column *names* are metadata
and may differ).  The default pipeline, in order:

1. **dead-step elimination** — drop steps (and inputs) that do not
   contribute to the plan output;
2. **ParamRef constant folding** — statically infer column lengths, constant
   contents and dtypes where the plan's generator steps pin them, and
   replace :class:`LengthOf`/:class:`ScalarAt`/:class:`DTypeOf` references
   with literals;
3. **constant-column scalarisation** — an ``Elementwise`` operand that is a
   statically-constant column (``Constant``/``Zeros``/``Ones``) is replaced
   by the scalar itself, which usually renders the generator step dead;
4. **scan strength reduction** — ``PrefixSum``/``ExclusivePrefixSum`` over a
   generated constant column is an arithmetic sequence, i.e. a single
   ``Iota``; this mechanically turns Algorithm 2's faithful
   ``Constant``/``PrefixSum`` position computation into the cheap ``Iota``
   variant the paper acknowledges as equivalent;
5. **common-subplan elimination** — structurally identical steps (same
   operator, same inputs, same parameters) are computed once; this is what
   deduplicates work when :class:`~repro.schemes.composite.Cascade` splices
   the same inner decompression in front of several consumers;
6. **element-wise chain fusion** — a linear chain of element-wise steps
   whose intermediates have a single consumer is collapsed into one
   ``FusedElementwise`` step, removing the intermediate materialisations.

The optimizer assumes the input plan is *valid* (it would evaluate without
errors); rewrites may turn a run-time length-mismatch error into a silently
broadcast result, but never change the result of a plan that evaluates
successfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..plan import DTypeOf, LengthOf, ParamRef, Plan, PlanStep, ScalarAt
from ..ops.elementwise import BINARY_OPERATIONS, UNARY_OPERATIONS


# --------------------------------------------------------------------------- #
# Structural freezing (shared with the plan cache)
# --------------------------------------------------------------------------- #

def freeze_value(value: Any) -> Any:
    """Convert *value* into a hashable, structurally-comparable form.

    Used to build structural keys for common-subplan elimination and for the
    plan/scheme caches.  ParamRefs are frozen dataclasses and hash already;
    NumPy arrays, dtypes and containers are converted to stable tuples.
    """
    if isinstance(value, ParamRef):
        return value
    if isinstance(value, np.ndarray):
        return ("__ndarray__", value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, np.dtype):
        return ("__dtype__", value.str)
    if isinstance(value, type) and issubclass(value, np.generic):
        return ("__dtype__", np.dtype(value).str)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return ("__dict__", tuple(sorted((str(k), freeze_value(v))
                                         for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("__seq__", tuple(freeze_value(v) for v in value))
    try:
        hash(value)
    except TypeError:
        return ("__repr__", repr(value))
    return value


def _rename_param(value: Any, mapping: Mapping[str, str]) -> Any:
    """Rewrite the binding a ParamRef points at (mirrors Plan.rename_bindings)."""
    if isinstance(value, LengthOf):
        return LengthOf(mapping.get(value.binding, value.binding), value.delta)
    if isinstance(value, ScalarAt):
        return ScalarAt(mapping.get(value.binding, value.binding), value.index)
    if isinstance(value, DTypeOf):
        return DTypeOf(mapping.get(value.binding, value.binding))
    return value


def _rewrite_step(step: PlanStep, mapping: Mapping[str, str]) -> PlanStep:
    """Rewrite every binding reference of *step* through *mapping*."""
    return PlanStep(
        output=step.output,
        op=step.op,
        column_inputs={k: mapping.get(v, v) for k, v in step.column_inputs.items()},
        params={k: _rename_param(v, mapping) for k, v in step.params.items()},
    )


# --------------------------------------------------------------------------- #
# Static inference: lengths, constant contents, dtypes
# --------------------------------------------------------------------------- #

#: Operators whose output has the same length as their (sole) column input.
_LENGTH_PRESERVING = {
    "PrefixSum": "col", "ExclusivePrefixSum": "col", "PrefixMax": "col",
    "SegmentedPrefixSum": "col", "ZigZagDecode": "col", "ZigZagEncode": "col",
    "AdjacentDifference": "col", "ElementwiseUnary": "operand",
}

#: Generator operators whose whole content is determined by their parameters.
_GENERATORS = ("Constant", "Zeros", "Ones", "Iota", "Sequence")


@dataclass
class _BindingFacts:
    """Statically-inferred facts about one binding."""

    length: Optional[int] = None
    #: ("const", value) | ("iota", start, step) — content known element-wise.
    content: Optional[Tuple[Any, ...]] = None
    dtype: Optional[np.dtype] = None


def _literal_int(value: Any) -> Optional[int]:
    if isinstance(value, bool):  # bool is an int subclass; reject it
        return None
    if isinstance(value, (int, np.integer)):
        return int(value)
    return None


def _generator_facts(step: PlanStep) -> _BindingFacts:
    """Facts derivable from a generator step with literal parameters."""
    facts = _BindingFacts()
    params = step.params
    if step.op == "Sequence":
        values = params.get("values")
        if isinstance(values, (list, tuple, np.ndarray)):
            arr = np.asarray(values)
            facts.length = int(arr.size)
            facts.dtype = arr.dtype
        return facts
    length = _literal_int(params.get("length"))
    if length is not None:
        facts.length = length
    if step.op == "Zeros":
        facts.content = ("const", 0)
    elif step.op == "Ones":
        facts.content = ("const", 1)
    elif step.op == "Constant":
        value = params.get("value")
        if not isinstance(value, ParamRef):
            facts.content = ("const", value)
    elif step.op == "Iota":
        start = params.get("start", 0)
        stride = params.get("step", 1)
        if not isinstance(start, ParamRef) and not isinstance(stride, ParamRef):
            facts.content = ("iota", start, stride)
    dtype = params.get("dtype")
    if dtype is not None and not isinstance(dtype, ParamRef):
        try:
            facts.dtype = np.dtype(dtype)
        except TypeError:
            pass
    elif step.op in ("Zeros", "Ones", "Iota"):
        facts.dtype = np.dtype(np.int64)
    elif step.op == "Constant":
        value = params.get("value")
        if not isinstance(value, ParamRef) and value is not None:
            inferred = np.asarray(value).dtype
            facts.dtype = np.dtype(np.int64) if np.issubdtype(inferred, np.integer) \
                else inferred
    return facts


def _infer_facts(plan: Plan) -> Dict[str, _BindingFacts]:
    """One forward pass of length/content/dtype inference over the plan."""
    facts: Dict[str, _BindingFacts] = {name: _BindingFacts() for name in plan.inputs}
    for step in plan.steps:
        if step.op in _GENERATORS:
            facts[step.output] = _generator_facts(step)
            continue
        out = _BindingFacts()
        source = _LENGTH_PRESERVING.get(step.op)
        if source is not None and source in step.column_inputs:
            out.length = facts[step.column_inputs[source]].length
        elif step.op in ("Elementwise", "Add", "Subtract", "Multiply",
                         "FloorDivide", "Modulo", "Compare", "FusedElementwise"):
            for binding in step.column_inputs.values():
                known = facts[binding].length
                if known is not None:
                    out.length = known
                    break
        elif step.op == "Gather" and "indices" in step.column_inputs:
            out.length = facts[step.column_inputs["indices"]].length
        elif step.op == "Scatter" and "base" in step.column_inputs:
            out.length = facts[step.column_inputs["base"]].length
        elif step.op == "PopBack" and "col" in step.column_inputs:
            known = facts[step.column_inputs["col"]].length
            out.length = known - 1 if known is not None else None
        elif step.op == "PushFront" and "col" in step.column_inputs:
            known = facts[step.column_inputs["col"]].length
            out.length = known + 1 if known is not None else None
        elif step.op == "UnpackBits":
            out.length = _literal_int(step.params.get("count"))
        facts[step.output] = out
    return facts


def _fold_ref(ref: ParamRef, facts: Mapping[str, _BindingFacts]) -> Any:
    """Fold one ParamRef to a literal when the facts pin it; else return it."""
    if isinstance(ref, LengthOf):
        known = facts[ref.binding].length
        if known is not None:
            return known + ref.delta
        return ref
    if isinstance(ref, ScalarAt):
        binding = facts[ref.binding]
        if binding.length is None or binding.content is None:
            return ref
        index = ref.index if ref.index >= 0 else binding.length + ref.index
        if not 0 <= index < binding.length:
            return ref  # leave the out-of-range error to evaluation time
        if binding.content[0] == "const":
            return binding.content[1]
        _, start, stride = binding.content
        return start + stride * index
    if isinstance(ref, DTypeOf):
        dtype = facts[ref.binding].dtype
        if dtype is not None:
            return dtype
        return ref
    return ref


# --------------------------------------------------------------------------- #
# Passes
# --------------------------------------------------------------------------- #

def eliminate_dead_steps(plan: Plan) -> Plan:
    """Drop steps and inputs that do not contribute to the plan output."""
    return plan.prune()


def fold_param_refs(plan: Plan) -> Plan:
    """Replace ParamRefs with literals wherever static inference pins them."""
    facts = _infer_facts(plan)
    steps: List[PlanStep] = []
    changed = False
    for step in plan.steps:
        params: Dict[str, Any] = {}
        for key, value in step.params.items():
            folded = _fold_ref(value, facts) if isinstance(value, ParamRef) else value
            changed = changed or folded is not value
            params[key] = folded
        steps.append(PlanStep(step.output, step.op, step.column_inputs, params))
    if not changed:
        return plan
    return Plan(plan.inputs, steps, plan.output, description=plan.description)


#: Elementwise operand slots eligible for scalarisation, per operator.
_SCALARIZABLE = {
    "Elementwise": ("left", "right"),
    "Add": ("left", "right"),
    "Subtract": ("left", "right"),
    "Multiply": ("left", "right"),
    "FloorDivide": ("left", "right"),
    "Modulo": ("left", "right"),
    "Compare": ("left", "right"),
}


def scalarize_constant_operands(plan: Plan) -> Plan:
    """Replace constant-column elementwise operands with the scalar itself.

    ``Elementwise(op, x, Constant(c, n))`` computes exactly ``op(x, c)``
    broadcast — so the constant column never needs materialising.  At least
    one column operand is always kept so the output length stays anchored.
    """
    facts = _infer_facts(plan)
    steps: List[PlanStep] = []
    changed = False
    for step in plan.steps:
        slots = _SCALARIZABLE.get(step.op)
        if not slots:
            steps.append(step)
            continue
        column_inputs = dict(step.column_inputs)
        params = dict(step.params)
        column_slots = [s for s in slots if s in column_inputs]
        for slot in slots:
            if len(column_slots) <= 1:
                break  # keep at least one column operand
            if slot not in column_inputs:
                continue
            content = facts[column_inputs[slot]].content
            if content is None or content[0] != "const":
                continue
            dtype = facts[column_inputs[slot]].dtype
            scalar = content[1]
            if dtype is not None:
                scalar = dtype.type(scalar)
            del column_inputs[slot]
            params[slot] = scalar
            column_slots.remove(slot)
            changed = True
        steps.append(PlanStep(step.output, step.op, column_inputs, params))
    if not changed:
        return plan
    return Plan(plan.inputs, steps, plan.output, description=plan.description)


def reduce_scans_over_generators(plan: Plan) -> Plan:
    """Rewrite prefix sums of generated constant columns into single ``Iota`` s.

    ``PrefixSum(Constant(c, n))`` is the arithmetic sequence ``c, 2c, ...``;
    ``ExclusivePrefixSum(Constant(c, n), initial=i)`` is ``i, i+c, ...``.
    The paper's Algorithm 2 obtains its position column as the scan of a ones
    column; this pass mechanically reduces that to the equivalent ``Iota``.
    """
    producers = {step.output: step for step in plan.steps}
    steps: List[PlanStep] = []
    changed = False
    for step in plan.steps:
        if step.op not in ("PrefixSum", "ExclusivePrefixSum") \
                or "col" not in step.column_inputs:
            steps.append(step)
            continue
        source = producers.get(step.column_inputs["col"])
        if source is None or source.op not in ("Constant", "Zeros", "Ones"):
            steps.append(step)
            continue
        if source.op == "Constant":
            value = source.params.get("value")
            if isinstance(value, ParamRef) or _literal_int(value) is None:
                steps.append(step)
                continue
            stride = int(value)
        else:
            stride = 0 if source.op == "Zeros" else 1
        length = source.params.get("length")  # literal or ParamRef — both fine
        if length is None:
            steps.append(step)
            continue
        if step.op == "PrefixSum":
            start: Any = stride
        else:
            initial = step.params.get("initial", 0)
            if isinstance(initial, ParamRef):
                steps.append(step)
                continue
            start = int(initial)
        if stride == 0:
            params: Dict[str, Any] = {"value": start, "length": length}
            if "dtype" in step.params:
                params["dtype"] = step.params["dtype"]
            steps.append(PlanStep(step.output, "Constant", {}, params))
        else:
            params = {"length": length, "start": start, "step": stride}
            if "dtype" in step.params:
                params["dtype"] = step.params["dtype"]
            steps.append(PlanStep(step.output, "Iota", {}, params))
        changed = True
    if not changed:
        return plan
    return Plan(plan.inputs, steps, plan.output, description=plan.description)


def eliminate_common_subplans(plan: Plan) -> Plan:
    """Compute structurally identical steps only once (CSE).

    Two steps are identical when they apply the same operator to the same
    bindings with the same parameters (the cosmetic ``name`` parameter is
    ignored).  Later occurrences are dropped and their consumers rewired to
    the first occurrence — the cross-constituent sharing this enables is
    what the issue calls common-subplan elimination for ``Cascade`` plans.
    """
    rename: Dict[str, str] = {}
    seen: Dict[Any, str] = {}
    steps: List[PlanStep] = []
    for step in plan.steps:
        if rename:
            step = _rewrite_step(step, rename)
        cols = tuple(sorted(step.column_inputs.items()))
        params = tuple(sorted((k, freeze_value(v)) for k, v in step.params.items()
                              if k != "name"))
        key = (step.op, cols, params)
        canonical = seen.get(key)
        if canonical is not None:
            rename[step.output] = canonical
            continue
        seen[key] = step.output
        steps.append(step)
    if not rename:
        return plan
    return Plan(plan.inputs, steps, rename.get(plan.output, plan.output),
                description=plan.description)


# --------------------------------------------------------------------------- #
# Deterministic (data-independent) subplan analysis
# --------------------------------------------------------------------------- #

def deterministic_steps(plan: Plan) -> Dict[str, Tuple]:
    """Bindings whose value is a pure function of literal parameters.

    A step is *deterministic* when every column input is itself
    deterministic and no parameter is a ParamRef — its output is identical
    on every evaluation, regardless of the bound input data.  (All
    registered operators are pure functions.)  Returns a mapping from each
    deterministic binding to a structural key identifying the subplan that
    computes it; the executor uses the key to serve such steps from the
    process-wide column cache — e.g. the segment-index column
    ``Iota(n) // l`` of Algorithm 2 is computed once, then shared by every
    chunk with the same shape.
    """
    keys: Dict[str, Tuple] = {}
    for step in plan.steps:
        if any(isinstance(value, ParamRef) for value in step.params.values()):
            continue
        child_keys = []
        for arg, binding in sorted(step.column_inputs.items()):
            child = keys.get(binding)
            if child is None:
                break
            child_keys.append((arg, child))
        else:
            keys[step.output] = (
                "det", step.op,
                tuple(sorted((k, freeze_value(v)) for k, v in step.params.items()
                             if k != "name")),
                tuple(child_keys),
            )
    return keys


# --------------------------------------------------------------------------- #
# Elementwise region fusion
# --------------------------------------------------------------------------- #

#: Binary elementwise operators and how to find their operation symbol.
_FUSABLE_BINARY = {
    "Elementwise": None,  # symbol in params["op"]
    "Add": "+", "Subtract": "-", "Multiply": "*",
    "FloorDivide": "//", "Modulo": "%",
    "Compare": None,
}

#: Unary elementwise operators and their operation symbol.
_FUSABLE_UNARY = {
    "ElementwiseUnary": None,  # symbol in params["op"]
    "ZigZagDecode": "zigzag",
}


def _fusable_kind(step: PlanStep) -> Optional[Tuple[str, Optional[str]]]:
    """("binary"|"unary"|"gather"|"unpack", symbol) when *step* is fusable."""
    if step.op in _FUSABLE_BINARY:
        symbol = _FUSABLE_BINARY[step.op] or step.params.get("op")
        if isinstance(symbol, str) and symbol in BINARY_OPERATIONS:
            return ("binary", symbol)
        return None
    if step.op in _FUSABLE_UNARY:
        symbol = _FUSABLE_UNARY[step.op] or step.params.get("op")
        if isinstance(symbol, str) and symbol in UNARY_OPERATIONS:
            return ("unary", symbol)
        return None
    if step.op == "Gather" and set(step.column_inputs) >= {"values", "indices"}:
        return ("gather", None)
    if step.op == "UnpackBits" and "packed" in step.column_inputs:
        return ("unpack", None)
    return None


def _fusable_operands(step: PlanStep, kind: str) -> List[Tuple[Any, bool]]:
    """The (value, is_column) operands of a fusable step, in kernel order."""
    if kind == "binary":
        slots = ("left", "right")
    elif kind == "unary":
        slots = ("operand",) if step.op == "ElementwiseUnary" else ("col",)
    elif kind == "gather":
        slots = ("values", "indices")
    else:  # unpack
        slots = ("packed", "width", "count", "dtype")
    operands: List[Tuple[Any, bool]] = []
    for slot in slots:
        if slot in step.column_inputs:
            operands.append((step.column_inputs[slot], True))
        elif slot == "dtype":
            operands.append((np.dtype(step.params.get("dtype", np.uint64)), False))
        else:
            operands.append((step.params.get(slot), False))
    return operands


def fuse_elementwise_chains(plan: Plan) -> Plan:
    """Collapse fusable regions into single ``FusedElementwise`` kernels.

    A *region* is a connected set of fusable steps (element-wise operations,
    ``Gather``, ``UnpackBits``) in which every internal binding is consumed
    only inside the region (and is neither the plan output nor referenced by
    any ParamRef).  The whole region becomes one ``FusedElementwise`` step —
    a small register program — so chain intermediates like
    ``b ← f(a); c ← g(b, d)`` and DAG shapes like ``c ← g(f(a), f(a))`` are
    computed without materialising or validating the intermediates.
    Deterministic steps (see :func:`deterministic_steps`) are left outside
    regions: the executor serves those from its column cache, which beats
    recomputing them inside a kernel.
    """
    steps = plan.steps
    det = deterministic_steps(plan)
    index_of = {step.output: i for i, step in enumerate(steps)}
    consumers: Dict[str, set] = {}
    ref_used: set = set()
    for index, step in enumerate(steps):
        for binding in step.column_inputs.values():
            consumers.setdefault(binding, set()).add(index)
        for value in step.params.values():
            if isinstance(value, ParamRef):
                ref_used.update(value.references())

    def eligible(index: int) -> bool:
        step = steps[index]
        return _fusable_kind(step) is not None and step.output not in det

    claimed: set = set()
    regions: List[List[int]] = []
    for sink in reversed(range(len(steps))):
        if sink in claimed or not eligible(sink):
            continue
        region = {sink}
        changed = True
        while changed:
            changed = False
            for member in list(region):
                for binding in steps[member].column_inputs.values():
                    producer = index_of.get(binding)
                    if producer is None or producer in region or producer in claimed:
                        continue
                    if not eligible(producer):
                        continue
                    output = steps[producer].output
                    if output == plan.output or output in ref_used:
                        continue
                    if not consumers.get(output, set()) <= region:
                        continue
                    region.add(producer)
                    changed = True
        if len(region) >= 2:
            ordered = sorted(region)
            regions.append(ordered)
            claimed |= region

    if not regions:
        return plan

    fused_steps: Dict[int, PlanStep] = {}  # sink index -> fused step
    dropped: set = set()
    for ordered in regions:
        instructions: List[Tuple[Any, ...]] = []
        column_inputs: Dict[str, str] = {}
        params: Dict[str, Any] = {}
        slot_of_binding: Dict[str, str] = {}
        register_of: Dict[str, int] = {}
        name: Optional[str] = None

        def operand_ref(value: Any, is_column: bool) -> Tuple[Any, ...]:
            if is_column:
                register = register_of.get(value)
                if register is not None:
                    return ("reg", register)
                slot = slot_of_binding.get(value)
                if slot is None:
                    slot = f"c{len(slot_of_binding)}"
                    slot_of_binding[value] = slot
                    column_inputs[slot] = value
                return ("col", slot)
            if isinstance(value, ParamRef):
                key = f"p{len(params)}"
                params[key] = value
                return ("param", key)
            return ("lit", value)

        for register, member in enumerate(ordered):
            step = steps[member]
            kind, symbol = _fusable_kind(step)
            refs = tuple(operand_ref(value, is_column)
                         for value, is_column in _fusable_operands(step, kind))
            if kind in ("binary", "unary"):
                instructions.append((kind, symbol) + refs)
            else:
                instructions.append((kind,) + refs)
            register_of[step.output] = register
            literal_name = step.params.get("name")
            if isinstance(literal_name, str):
                name = literal_name

        params["chain"] = tuple(instructions)
        if name is not None:
            params["name"] = name
        sink = ordered[-1]
        fused_steps[sink] = PlanStep(steps[sink].output, "FusedElementwise",
                                     column_inputs, params)
        dropped.update(ordered[:-1])

    new_steps: List[PlanStep] = []
    for index, step in enumerate(steps):
        if index in fused_steps:
            new_steps.append(fused_steps[index])
        elif index not in dropped:
            new_steps.append(step)
    return Plan(plan.inputs, new_steps, plan.output, description=plan.description)


# --------------------------------------------------------------------------- #
# The pipeline
# --------------------------------------------------------------------------- #

#: The default pass pipeline, in application order.
DEFAULT_PASSES: Tuple[Any, ...] = (
    eliminate_dead_steps,
    fold_param_refs,
    scalarize_constant_operands,
    reduce_scans_over_generators,
    eliminate_common_subplans,
    fuse_elementwise_chains,
    eliminate_dead_steps,
)


@dataclass
class OptimizationReport:
    """What the optimizer did to one plan (for benchmarks and debugging)."""

    original_steps: int
    optimized_steps: int
    passes: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def steps_removed(self) -> int:
        return self.original_steps - self.optimized_steps


def optimize(plan: Plan, passes: Sequence[Any] = DEFAULT_PASSES) -> Plan:
    """Run the rewrite-pass pipeline over *plan* and return the result."""
    for rewrite in passes:
        plan = rewrite(plan)
    return plan


def optimize_with_report(plan: Plan,
                         passes: Sequence[Any] = DEFAULT_PASSES
                         ) -> Tuple[Plan, OptimizationReport]:
    """Like :func:`optimize`, also reporting each pass's step-count effect."""
    report = OptimizationReport(original_steps=len(plan.steps),
                                optimized_steps=len(plan.steps))
    for rewrite in passes:
        before = len(plan.steps)
        plan = rewrite(plan)
        report.passes.append((rewrite.__name__, before, len(plan.steps)))
    report.optimized_steps = len(plan.steps)
    return plan, report

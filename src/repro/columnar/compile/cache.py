"""Compiled-plan caches keyed by structural signatures.

Two levels of caching make "optimize once, execute everywhere" hold across
the whole stack:

* the **plan cache** maps a plan's *structural signature* — inputs, output,
  and every step's (operator, bindings, parameters) — to its
  :class:`~repro.columnar.compile.executor.CompiledPlan`.  Rebuilding the
  same plan object (as ``CompressionScheme.decompression_plan`` does per
  call) therefore costs one signature computation, not a re-optimization;
* the **scheme cache** sits above it and maps a *scheme structural
  signature* (scheme class + configuration + the form parameters its plan
  depends on) straight to the compiled plan, skipping plan construction
  entirely.  All chunks of a stored column encoded with the same scheme
  share one compiled plan through this cache.

Both caches are process-wide, bounded (FIFO eviction), thread-safe (the
chunk-parallel scan scheduler compiles and reads through them from worker
threads), and assume the default operator registry; callers using a custom
registry should compile explicitly via
:func:`~repro.columnar.compile.executor.compile_plan`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from ..plan import Plan
from ..ops.registry import DEFAULT_REGISTRY, OperatorRegistry
from .executor import CompiledPlan, compile_plan
from .optimizer import freeze_value


def plan_signature(plan: Plan) -> Tuple:
    """A hashable key identifying the plan's structure (not its description)."""
    return (
        plan.inputs,
        plan.output,
        tuple(
            (step.output, step.op,
             tuple(sorted(step.column_inputs.items())),
             tuple(sorted((key, freeze_value(value))
                          for key, value in step.params.items())))
            for step in plan.steps
        ),
    )


class PlanCompileCache:
    """A bounded structural-signature → :class:`CompiledPlan` cache."""

    def __init__(self, registry: OperatorRegistry = DEFAULT_REGISTRY,
                 max_entries: int = 512):
        self.registry = registry
        self.max_entries = max_entries
        self._plans: "OrderedDict[Tuple, CompiledPlan]" = OrderedDict()
        self._schemes: "OrderedDict[Tuple, CompiledPlan]" = OrderedDict()
        self.plan_hits = 0
        self.plan_misses = 0
        self.scheme_hits = 0
        self.scheme_misses = 0
        #: Reentrant: ``compiled_for_scheme`` takes it and then calls
        #: ``compiled`` which takes it again.  Compilation happens inside the
        #: lock, so two threads racing on a cold key compile once.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    def _store(self, cache: "OrderedDict[Tuple, CompiledPlan]", key: Tuple,
               compiled: CompiledPlan) -> None:
        cache[key] = compiled
        while len(cache) > self.max_entries:
            cache.popitem(last=False)

    def compiled(self, plan: Plan) -> CompiledPlan:
        """The compiled form of *plan*, compiling on first sight."""
        key = plan_signature(plan)
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self.plan_hits += 1
                return cached
            self.plan_misses += 1
            compiled = compile_plan(plan, registry=self.registry)
            self._store(self._plans, key, compiled)
            return compiled

    def compiled_partial(self, plan: Plan, stop_after: str) -> CompiledPlan:
        """The compiled form of *plan* truncated at binding *stop_after*.

        This is how partial evaluation goes through the executor: the
        truncated plan is itself optimized, compiled and cached, so e.g.
        "Algorithm 1 up to the prefix sum" (RLE → RPE) is a first-class
        compiled artifact rather than an interpreter early-exit.
        """
        return self.compiled(plan.truncate_at(stop_after))

    def compiled_for_scheme(self, scheme, form) -> CompiledPlan:
        """The compiled decompression plan for *form* under *scheme*.

        Uses ``scheme.plan_cache_key(form)`` as the first-level key; schemes
        whose plans depend on more than that return ``None`` there and fall
        back to plan-signature caching (the plan is rebuilt, compilation is
        still shared).
        """
        key = scheme.plan_cache_key(form)
        if key is None:
            return self.compiled(scheme.decompression_plan(form))
        with self._lock:
            cached = self._schemes.get(key)
            if cached is not None:
                self.scheme_hits += 1
                return cached
            self.scheme_misses += 1
            compiled = self.compiled(scheme.decompression_plan(form))
            self._store(self._schemes, key, compiled)
            return compiled

    # ------------------------------------------------------------------ #

    def info(self) -> Dict[str, int]:
        """Hit/miss/size statistics of both cache levels."""
        with self._lock:
            return {
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "plan_entries": len(self._plans),
                "scheme_hits": self.scheme_hits,
                "scheme_misses": self.scheme_misses,
                "scheme_entries": len(self._schemes),
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._schemes.clear()
            self.plan_hits = self.plan_misses = 0
            self.scheme_hits = self.scheme_misses = 0


#: The process-wide cache used by the scheme, storage and engine layers.
GLOBAL_CACHE = PlanCompileCache()


def compiled_plan(plan: Plan) -> CompiledPlan:
    """Compile *plan* through the process-wide cache."""
    return GLOBAL_CACHE.compiled(plan)


def compiled_partial_plan(plan: Plan, stop_after: str) -> CompiledPlan:
    """Compile the truncation of *plan* at *stop_after* through the cache."""
    return GLOBAL_CACHE.compiled_partial(plan, stop_after)


def compiled_plan_for_scheme(scheme, form) -> CompiledPlan:
    """Compiled decompression plan for (scheme, form), through both cache levels."""
    return GLOBAL_CACHE.compiled_for_scheme(scheme, form)


def cache_info() -> Dict[str, int]:
    """Statistics of the process-wide compile cache."""
    return GLOBAL_CACHE.info()


def clear_caches() -> None:
    """Empty the process-wide compile cache (used by tests and benchmarks)."""
    GLOBAL_CACHE.clear()

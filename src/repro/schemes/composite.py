"""Scheme composition: the ∘ operator of the paper.

Two flavours of composition appear in the paper:

* the **motivating example** of §I — apply RLE to a date column, then apply
  DELTA *to the run values* — i.e. re-compress one or more constituent
  columns of a compressed form with further schemes;
* the **decomposition identities** of §II — e.g.
  ``RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE`` — which read an
  existing scheme as exactly such a composition.

:class:`Cascade` implements the general form: an *outer* scheme plus a
mapping from constituent names to *inner* schemes.  Compression applies the
outer scheme and then compresses the selected constituents; decompression
either reconstructs the constituents first (the fused path) or splices the
inner decompression plans in front of the outer plan (the plan path), so the
whole composite still decompresses as one flat sequence of columnar
operators — which is the paper's point.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.plan import Plan, PlanStep
from ..errors import DecompressionError, SchemeParameterError
from .base import CompressedForm, CompressionScheme
from .identity import Identity


def _is_identity(scheme: CompressionScheme) -> bool:
    return isinstance(scheme, Identity) or scheme.name == Identity.name


class Cascade(CompressionScheme):
    """Compose an outer scheme with inner schemes applied to its constituents.

    Parameters
    ----------
    outer:
        The scheme applied to the original column.
    inner:
        Mapping from constituent name (of the outer scheme's compressed form)
        to the scheme used to re-compress that constituent.  Constituents not
        mentioned — or mapped to :class:`Identity` — are stored as-is.

    Example
    -------
    The paper's shipping-dates example ("applying an RLE scheme to the dates,
    then applying DELTA to the run values")::

        Cascade(RunLengthEncoding(), {"values": Delta()})
    """

    def __init__(self, outer: CompressionScheme, inner: Mapping[str, CompressionScheme]):
        if not isinstance(outer, CompressionScheme):
            raise SchemeParameterError("Cascade outer must be a CompressionScheme")
        expected = set(outer.expected_constituents())
        for constituent in inner:
            if expected and constituent not in expected:
                raise SchemeParameterError(
                    f"Cascade inner scheme given for unknown constituent {constituent!r} "
                    f"of {outer.name}; expected one of {sorted(expected)}"
                )
        self.outer = outer
        self.inner: Dict[str, CompressionScheme] = {
            name: scheme for name, scheme in inner.items() if not _is_identity(scheme)
        }
        self.is_lossless = outer.is_lossless and all(
            scheme.is_lossless for scheme in self.inner.values()
        )

    # ------------------------------------------------------------------ #
    # Naming / description
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:  # type: ignore[override]
        inner = ",".join(f"{cons}={scheme.name}" for cons, scheme in sorted(self.inner.items()))
        return f"{self.outer.name}∘[{inner}]" if inner else self.outer.name

    def describe(self) -> str:
        inner = ", ".join(
            f"{cons}: {scheme.describe()}" for cons, scheme in sorted(self.inner.items())
        )
        return f"{self.outer.describe()} ∘ [{inner}]" if inner else self.outer.describe()

    def parameters(self) -> Dict[str, Any]:
        return {
            "outer": self.outer.describe(),
            "inner": {name: scheme.describe() for name, scheme in self.inner.items()},
        }

    def expected_constituents(self) -> Tuple[str, ...]:
        return self.outer.expected_constituents()

    def validate(self, column: Column) -> None:
        self.outer.validate(column)

    # ------------------------------------------------------------------ #
    # Compression
    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Apply the outer scheme, then re-compress the selected constituents."""
        outer_form = self.outer.compress(column)
        columns = dict(outer_form.columns)
        nested: Dict[str, CompressedForm] = dict(outer_form.nested)
        for constituent, scheme in self.inner.items():
            if constituent not in columns:
                raise DecompressionError(
                    f"outer scheme {self.outer.name} produced no constituent "
                    f"{constituent!r} to re-compress"
                )
            nested[constituent] = scheme.compress(columns.pop(constituent))
        return CompressedForm(
            scheme=self.name,
            columns=columns,
            parameters=dict(outer_form.parameters),
            original_length=outer_form.original_length,
            original_dtype=outer_form.original_dtype,
            nested=nested,
        )

    # ------------------------------------------------------------------ #
    # Decompression
    # ------------------------------------------------------------------ #

    def _outer_form(self, form: CompressedForm) -> CompressedForm:
        """Reconstruct the outer scheme's compressed form (decompressing nested parts)."""
        columns = dict(form.columns)
        for constituent, scheme in self.inner.items():
            nested_form = form.nested.get(constituent)
            if nested_form is None:
                raise DecompressionError(
                    f"composite form is missing nested constituent {constituent!r}"
                )
            columns[constituent] = scheme.decompress(nested_form).rename(constituent)
        return CompressedForm(
            scheme=self.outer.name,
            columns=columns,
            parameters=dict(form.parameters),
            original_length=form.original_length,
            original_dtype=form.original_dtype,
        )

    def decompress(self, form: CompressedForm) -> Column:
        """Decompress through the flat composed plan (compose, then optimize).

        The spliced plan of :meth:`decompression_plan` is compiled through
        :mod:`repro.columnar.compile`, so common subplans shared between
        constituents are eliminated and the whole cascade executes as one
        optimized operator sequence.  Empty columns take the constituent-wise
        path, which tolerates empty nested forms.
        """
        self._check_form(form)
        if form.original_length == 0:
            return self.outer.decompress(self._outer_form(form))
        return super().decompress(form)

    def decompress_constituentwise(self, form: CompressedForm) -> Column:
        """Reconstruct the constituents, then decompress with the outer scheme.

        The pre-compiler path, kept as a cross-check for the flat compiled
        plan (both must agree bit for bit).
        """
        self._check_form(form)
        return self.outer.decompress(self._outer_form(form))

    def plan_key_parameters(self) -> Dict[str, Any]:
        return {
            "outer": (type(self.outer).__qualname__, self.outer.plan_key_parameters()),
            "inner": {name: (type(scheme).__qualname__, scheme.plan_key_parameters())
                      for name, scheme in self.inner.items()},
        }

    def plan_cache_key(self, form: CompressedForm):
        """Key the flat plan on the outer scheme *and* every nested form.

        The spliced plan embeds each inner scheme's decompression plan, so
        the key must recurse into the nested forms' own cache keys; if any
        constituent declines caching, the cascade declines too.
        """
        from ..columnar.compile import freeze_value
        inner_keys = []
        for name, scheme in sorted(self.inner.items()):
            nested_form = form.nested.get(name)
            if nested_form is None:
                return None
            nested_key = scheme.plan_cache_key(nested_form)
            if nested_key is None:
                return None
            # The spliced restore-cast makes the flat plan depend on the
            # constituent's stored dtype (chunks of one column can narrow
            # positions to different widths), so the dtype joins the key.
            inner_keys.append((name, str(nested_form.original_dtype), nested_key))
        try:
            prefix = self.__dict__.get("_plan_key_prefix")
            if prefix is None:
                prefix = ("Cascade", type(self.outer).__qualname__,
                          freeze_value(self.outer.plan_key_parameters()))
                self.__dict__["_plan_key_prefix"] = prefix
            frozen = (form.frozen_parameters()
                      if self.outer.plan_depends_on_form else ())
            return prefix + (frozen, tuple(inner_keys))
        except TypeError:  # unhashable configuration -> plan-signature caching
            return None

    def decompress_fused(self, form: CompressedForm) -> Column:
        self._check_form(form)
        return self.outer.decompress_fused(self._outer_form(form))

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """A cascade executes compressed exactly when its *outer* scheme can.

        The engine's translation layer (:mod:`repro.engine.translate`)
        reconstructs the outer form on demand — decompressing only the
        (short) nested constituents, memoised on the form — and then runs
        the outer scheme's kernels, so composite columns inherit the outer
        scheme's whole capability set.  Capabilities depend only on scalar
        parameters (never constituent data), so the probe form here carries
        *no* columns at all: consulting capabilities must not materialise a
        single lazy (e.g. mmap-backed) constituent.
        """
        probe = CompressedForm(
            scheme=self.outer.name,
            columns={},
            parameters=dict(form.parameters),
            original_length=form.original_length,
            original_dtype=form.original_dtype,
        )
        return self.outer.kernel_capabilities(probe)

    def resolved_outer_form(self, form: CompressedForm) -> CompressedForm:
        """The outer scheme's form with nested constituents materialised.

        This is :meth:`_outer_form` memoised on *form* (the nested
        constituents — run values, lengths, references — are short by
        construction, which is why peeling a cascade layer is cheap relative
        to decompressing the column).  Used by the compressed-execution
        translation layer so multi-conjunct scans reconstruct each chunk's
        outer form at most once.
        """
        return form.cached(("resolved_outer_form",),
                           lambda: self._outer_form(form))

    def _outer_form_stub(self, form: CompressedForm) -> CompressedForm:
        """The outer form's *shape* — parameters and constituent names — only.

        Decompression plans depend on a form's scalar parameters, never on
        its constituent data, so plan construction does not need the nested
        constituents decompressed; they are stood in by empty placeholder
        columns.  (:meth:`_outer_form`, which does decompress, remains for
        the constituent-wise execution path.)
        """
        columns = dict(form.columns)
        for constituent in self.inner:
            if constituent not in form.nested:
                raise DecompressionError(
                    f"composite form is missing nested constituent {constituent!r}"
                )
            columns[constituent] = Column.empty(name=constituent)
        return CompressedForm(
            scheme=self.outer.name,
            columns=columns,
            parameters=dict(form.parameters),
            original_length=form.original_length,
            original_dtype=form.original_dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """One flat plan: inner decompressions spliced in front of the outer plan.

        The inner plans' inputs are namespaced ``"<constituent>.<input>"`` so
        two inner schemes with identically-named constituents cannot collide.
        """
        plan = self.outer.decompression_plan(self._outer_form_stub(form))
        for constituent, scheme in self.inner.items():
            nested_form = form.nested[constituent]
            inner_plan = scheme.decompression_plan(nested_form)
            inner_plan = self._with_restore_cast(scheme, nested_form, inner_plan)
            inner_plan = inner_plan.rename_bindings(
                {name: f"{constituent}.{name}" for name in inner_plan.bindings_defined()}
            )
            plan = plan.compose_after(inner_plan, constituent,
                                      description=f"{self.describe()} decompression")
        return plan

    @staticmethod
    def _with_restore_cast(scheme: CompressionScheme, nested_form: CompressedForm,
                           inner_plan: Plan) -> Plan:
        """Append the restore-cast ``decompress()`` applies outside the plan.

        A standalone ``decompress`` casts its plan's output back to the
        form's original dtype as a final Python-side step; a spliced inner
        plan feeds the outer plan directly, so the cast must become a plan
        step — e.g. packed DICT codes are stored uint8 and the outer
        ``UnpackBits`` rejects the int64 the inner scheme's plan produces.
        The step is added only when the statically-inferred output dtype
        provably differs (unknown dtypes splice unchanged, as before).
        """
        stored = nested_form.original_dtype
        if stored is None:
            return inner_plan
        input_dtypes = {name: column.dtype
                        for name, column in scheme.plan_inputs(nested_form).items()}
        inferred = inner_plan.output_dtype(input_dtypes)
        if inferred is None or inferred == np.dtype(stored):
            return inner_plan
        restored = f"{inner_plan.output}__restored"
        return Plan(
            list(inner_plan.inputs),
            list(inner_plan.steps) + [
                PlanStep(output=restored, op="Cast",
                         column_inputs={"col": inner_plan.output},
                         params={"dtype": np.dtype(stored)}),
            ],
            restored,
            description=inner_plan.description,
        )

    def plan_inputs(self, form: CompressedForm) -> Dict[str, Column]:
        inputs: Dict[str, Column] = dict(form.columns)
        for constituent, scheme in self.inner.items():
            nested_form = form.nested[constituent]
            for input_name, column in scheme.plan_inputs(nested_form).items():
                inputs[f"{constituent}.{input_name}"] = column
        return inputs

    # ------------------------------------------------------------------ #
    # Convenience constructors for the paper's named compositions
    # ------------------------------------------------------------------ #

    @staticmethod
    def rle_then_delta_on_values() -> "Cascade":
        """The §I example: RLE on the column, DELTA on the run values."""
        from .delta import Delta
        from .rle import RunLengthEncoding

        return Cascade(RunLengthEncoding(), {"values": Delta()})

    @staticmethod
    def rpe_with_delta_positions() -> "Cascade":
        """The §II-A identity's right-hand side: (ID values, DELTA positions) ∘ RPE."""
        from .delta import Delta
        from .rpe import RunPositionEncoding

        return Cascade(RunPositionEncoding(narrow_positions=False),
                       {"values": Identity(), "run_positions": Delta()})

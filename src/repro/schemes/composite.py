"""Scheme composition: the ∘ operator of the paper.

Two flavours of composition appear in the paper:

* the **motivating example** of §I — apply RLE to a date column, then apply
  DELTA *to the run values* — i.e. re-compress one or more constituent
  columns of a compressed form with further schemes;
* the **decomposition identities** of §II — e.g.
  ``RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE`` — which read an
  existing scheme as exactly such a composition.

:class:`Cascade` implements the general form: an *outer* scheme plus a
mapping from constituent names to *inner* schemes.  Compression applies the
outer scheme and then compresses the selected constituents; decompression
either reconstructs the constituents first (the fused path) or splices the
inner decompression plans in front of the outer plan (the plan path), so the
whole composite still decompresses as one flat sequence of columnar
operators — which is the paper's point.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..columnar.column import Column
from ..columnar.plan import Plan
from ..errors import DecompressionError, SchemeParameterError
from .base import CompressedForm, CompressionScheme
from .identity import Identity


def _is_identity(scheme: CompressionScheme) -> bool:
    return isinstance(scheme, Identity) or scheme.name == Identity.name


class Cascade(CompressionScheme):
    """Compose an outer scheme with inner schemes applied to its constituents.

    Parameters
    ----------
    outer:
        The scheme applied to the original column.
    inner:
        Mapping from constituent name (of the outer scheme's compressed form)
        to the scheme used to re-compress that constituent.  Constituents not
        mentioned — or mapped to :class:`Identity` — are stored as-is.

    Example
    -------
    The paper's shipping-dates example ("applying an RLE scheme to the dates,
    then applying DELTA to the run values")::

        Cascade(RunLengthEncoding(), {"values": Delta()})
    """

    def __init__(self, outer: CompressionScheme, inner: Mapping[str, CompressionScheme]):
        if not isinstance(outer, CompressionScheme):
            raise SchemeParameterError("Cascade outer must be a CompressionScheme")
        expected = set(outer.expected_constituents())
        for constituent in inner:
            if expected and constituent not in expected:
                raise SchemeParameterError(
                    f"Cascade inner scheme given for unknown constituent {constituent!r} "
                    f"of {outer.name}; expected one of {sorted(expected)}"
                )
        self.outer = outer
        self.inner: Dict[str, CompressionScheme] = {
            name: scheme for name, scheme in inner.items() if not _is_identity(scheme)
        }
        self.is_lossless = outer.is_lossless and all(
            scheme.is_lossless for scheme in self.inner.values()
        )

    # ------------------------------------------------------------------ #
    # Naming / description
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:  # type: ignore[override]
        inner = ",".join(f"{cons}={scheme.name}" for cons, scheme in sorted(self.inner.items()))
        return f"{self.outer.name}∘[{inner}]" if inner else self.outer.name

    def describe(self) -> str:
        inner = ", ".join(
            f"{cons}: {scheme.describe()}" for cons, scheme in sorted(self.inner.items())
        )
        return f"{self.outer.describe()} ∘ [{inner}]" if inner else self.outer.describe()

    def parameters(self) -> Dict[str, Any]:
        return {
            "outer": self.outer.describe(),
            "inner": {name: scheme.describe() for name, scheme in self.inner.items()},
        }

    def expected_constituents(self) -> Tuple[str, ...]:
        return self.outer.expected_constituents()

    def validate(self, column: Column) -> None:
        self.outer.validate(column)

    # ------------------------------------------------------------------ #
    # Compression
    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Apply the outer scheme, then re-compress the selected constituents."""
        outer_form = self.outer.compress(column)
        columns = dict(outer_form.columns)
        nested: Dict[str, CompressedForm] = dict(outer_form.nested)
        for constituent, scheme in self.inner.items():
            if constituent not in columns:
                raise DecompressionError(
                    f"outer scheme {self.outer.name} produced no constituent "
                    f"{constituent!r} to re-compress"
                )
            nested[constituent] = scheme.compress(columns.pop(constituent))
        return CompressedForm(
            scheme=self.name,
            columns=columns,
            parameters=dict(outer_form.parameters),
            original_length=outer_form.original_length,
            original_dtype=outer_form.original_dtype,
            nested=nested,
        )

    # ------------------------------------------------------------------ #
    # Decompression
    # ------------------------------------------------------------------ #

    def _outer_form(self, form: CompressedForm) -> CompressedForm:
        """Reconstruct the outer scheme's compressed form (decompressing nested parts)."""
        columns = dict(form.columns)
        for constituent, scheme in self.inner.items():
            nested_form = form.nested.get(constituent)
            if nested_form is None:
                raise DecompressionError(
                    f"composite form is missing nested constituent {constituent!r}"
                )
            columns[constituent] = scheme.decompress(nested_form).rename(constituent)
        return CompressedForm(
            scheme=self.outer.name,
            columns=columns,
            parameters=dict(form.parameters),
            original_length=form.original_length,
            original_dtype=form.original_dtype,
        )

    def decompress(self, form: CompressedForm) -> Column:
        """Reconstruct the constituents, then decompress with the outer scheme."""
        self._check_form(form)
        return self.outer.decompress(self._outer_form(form))

    def decompress_fused(self, form: CompressedForm) -> Column:
        self._check_form(form)
        return self.outer.decompress_fused(self._outer_form(form))

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """One flat plan: inner decompressions spliced in front of the outer plan.

        The inner plans' inputs are namespaced ``"<constituent>.<input>"`` so
        two inner schemes with identically-named constituents cannot collide.
        """
        outer_form = self._outer_form(form)
        plan = self.outer.decompression_plan(outer_form)
        for constituent, scheme in self.inner.items():
            nested_form = form.nested[constituent]
            inner_plan = scheme.decompression_plan(nested_form)
            inner_plan = inner_plan.rename_bindings(
                {name: f"{constituent}.{name}" for name in inner_plan.bindings_defined()}
            )
            plan = plan.compose_after(inner_plan, constituent,
                                      description=f"{self.describe()} decompression")
        return plan

    def plan_inputs(self, form: CompressedForm) -> Dict[str, Column]:
        inputs: Dict[str, Column] = dict(form.columns)
        for constituent, scheme in self.inner.items():
            nested_form = form.nested[constituent]
            for input_name, column in scheme.plan_inputs(nested_form).items():
                inputs[f"{constituent}.{input_name}"] = column
        return inputs

    # ------------------------------------------------------------------ #
    # Convenience constructors for the paper's named compositions
    # ------------------------------------------------------------------ #

    @staticmethod
    def rle_then_delta_on_values() -> "Cascade":
        """The §I example: RLE on the column, DELTA on the run values."""
        from .delta import Delta
        from .rle import RunLengthEncoding

        return Cascade(RunLengthEncoding(), {"values": Delta()})

    @staticmethod
    def rpe_with_delta_positions() -> "Cascade":
        """The §II-A identity's right-hand side: (ID values, DELTA positions) ∘ RPE."""
        from .delta import Delta
        from .rpe import RunPositionEncoding

        return Cascade(RunPositionEncoding(narrow_positions=False),
                       {"values": Identity(), "run_positions": Delta()})

"""Base classes of the compression-scheme layer.

The paper's "columnar view" of compression is that a compressed column *is
just a bundle of plainer columns plus a few scalar parameters* — no block
headers, no padding, no storage adornments (those belong to the storage
layer, :mod:`repro.storage`).  :class:`CompressedForm` is that bundle, and
:class:`CompressionScheme` is the interface every scheme implements:

* ``compress(column) -> CompressedForm``
* ``decompression_plan(form) -> Plan`` — decompression *as data*, expressed
  in the columnar operator algebra;
* ``decompress(form) -> Column`` — by definition, evaluating that plan.  The
  default implementation executes the plan's *compiled* form (optimized and
  cached by scheme signature, see :mod:`repro.columnar.compile`);
  ``decompress_interpreted`` keeps the plain interpreted evaluation as a
  baseline, and a scheme may also provide a hand-fused kernel via
  ``decompress_fused`` as a cross-check and a performance ceiling.

Lossy "model" schemes (the step-function model of §II-B, the piecewise
linear/polynomial enrichments) set ``is_lossless = False`` and additionally
report the reconstruction error of their approximation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.compile import compiled_plan_for_scheme, freeze_value
from ..columnar.compile.executor import CompiledPlan
from ..columnar.plan import Plan
from ..errors import CompressionError, DecompressionError

#: Compressed-domain kernel names a scheme may advertise for its forms (see
#: :meth:`CompressionScheme.kernel_capabilities` and
#: :mod:`repro.engine.kernels`, which implements the dispatch).
KERNEL_FILTER_RANGE = "filter_range"   #: range/point predicate without decompression
KERNEL_GATHER = "gather"               #: positional gather without full decompression
KERNEL_AGGREGATE = "aggregate"         #: count/sum/min/max over a selection
KERNEL_GROUP_CODES = "group_codes"     #: group-by on (dictionary) codes


@dataclass
class CompressedForm:
    """A compressed column: named constituent columns plus scalar parameters.

    Attributes
    ----------
    scheme:
        The ``name`` of the scheme that produced this form.
    columns:
        The constituent columns, keyed by their role (e.g. ``"lengths"`` and
        ``"values"`` for RLE).  These are *pure* columns, in the paper's
        sense.
    parameters:
        Scalar parameters needed for decompression (segment length, bit
        width, element count, ...).
    original_length:
        Length of the uncompressed column.
    original_dtype:
        Dtype of the uncompressed column (decompression restores it).
    nested:
        For composite schemes: the compressed forms of constituents that were
        themselves compressed, keyed by constituent name.  A constituent
        appears either in ``columns`` or in ``nested``, never both.
    """

    scheme: str
    columns: Dict[str, Column]
    parameters: Dict[str, Any] = field(default_factory=dict)
    original_length: int = 0
    original_dtype: Any = np.int64
    nested: Dict[str, "CompressedForm"] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived-artifact memoisation
    # ------------------------------------------------------------------ #

    def cached(self, key: Any, factory) -> Any:
        """Return the memoised derived artifact *key*, computing it on demand.

        Compressed-domain execution derives small artifacts from a form —
        run end positions (a prefix sum over RLE lengths), per-segment value
        bounds, the resolved outer form of a cascade — and a multi-conjunct
        scan would otherwise recompute them once per predicate.  They are
        cached on the form itself, which is treated as immutable after
        construction (like its parameters).

        The benign race under the scan scheduler's thread pool is resolved
        by ``setdefault``: two threads may compute the same artifact, but
        every caller observes a single winning value.
        """
        derived = self.__dict__.get("_derived")
        if derived is None:
            derived = self.__dict__.setdefault("_derived", {})
        try:
            return derived[key]
        except KeyError:
            return derived.setdefault(key, factory())

    # ------------------------------------------------------------------ #
    # Access helpers
    # ------------------------------------------------------------------ #

    def constituent(self, name: str) -> Column:
        """Return the constituent column *name* (raises if absent)."""
        try:
            return self.columns[name]
        except KeyError:
            raise DecompressionError(
                f"compressed form of {self.scheme!r} has no constituent {name!r}; "
                f"present: {sorted(self.columns)}"
            ) from None

    def parameter(self, name: str, default: Any = None) -> Any:
        """Return scalar parameter *name* (or *default*)."""
        return self.parameters.get(name, default)

    def constituent_names(self) -> Tuple[str, ...]:
        """Names of all constituents (plain and nested), sorted."""
        return tuple(sorted(set(self.columns) | set(self.nested)))

    def frozen_parameters(self) -> Any:
        """The scalar parameters as a hashable structure (memoised).

        Used as half of the compiled-plan cache key; parameters are treated
        as immutable once the form is built.
        """
        frozen = self.__dict__.get("_frozen_parameters")
        if frozen is None:
            frozen = freeze_value(self.parameters)
            self.__dict__["_frozen_parameters"] = frozen
        return frozen

    def with_constituent(self, name: str, column: Column) -> "CompressedForm":
        """Return a copy of the form with constituent *name* replaced."""
        columns = dict(self.columns)
        columns[name] = column
        return CompressedForm(
            scheme=self.scheme,
            columns=columns,
            parameters=dict(self.parameters),
            original_length=self.original_length,
            original_dtype=self.original_dtype,
            nested=dict(self.nested),
        )

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #

    def compressed_size_bytes(self) -> int:
        """Total physical size of all constituent columns, in bytes.

        Nested (re-compressed) constituents contribute the size of *their*
        compressed form.  Scalar parameters are not counted: the paper's
        "pure columns" view places them with the schema, and they are O(1)
        per column anyway.
        """
        size = sum(col.nbytes for col in self.columns.values())
        size += sum(sub.compressed_size_bytes() for sub in self.nested.values())
        return int(size)

    def uncompressed_size_bytes(self) -> int:
        """Size the column occupies uncompressed (original dtype × length)."""
        return int(self.original_length * np.dtype(self.original_dtype).itemsize)

    def compression_ratio(self) -> float:
        """Uncompressed size divided by compressed size (higher is better)."""
        compressed = self.compressed_size_bytes()
        if compressed == 0:
            return float("inf") if self.original_length else 1.0
        return self.uncompressed_size_bytes() / compressed

    def bits_per_value(self) -> float:
        """Average compressed bits spent per uncompressed value."""
        if self.original_length == 0:
            return 0.0
        return 8.0 * self.compressed_size_bytes() / self.original_length

    def summary(self) -> str:
        """One-line human-readable summary (scheme, sizes, ratio)."""
        return (
            f"{self.scheme}: {self.uncompressed_size_bytes()} B -> "
            f"{self.compressed_size_bytes()} B "
            f"(ratio {self.compression_ratio():.2f}x, "
            f"{self.bits_per_value():.2f} bits/value)"
        )


class CompressionScheme(abc.ABC):
    """Interface implemented by every compression scheme.

    Subclasses set :attr:`name` and implement :meth:`compress` and
    :meth:`decompression_plan`; everything else has sensible defaults.
    """

    #: Registry name of the scheme (e.g. ``"RLE"``); subclasses override.
    name: str = "ABSTRACT"

    #: Whether decompression reproduces the input exactly.  Model schemes
    #: (step function, piecewise linear, ...) are lossy by themselves; they
    #: only become lossless when composed with a residual scheme.
    is_lossless: bool = True

    #: Whether :meth:`decompression_plan` varies with the compressed form's
    #: parameters.  Schemes whose plan is one fixed operator sequence (RLE,
    #: RPE, DELTA, ID) set this False, so every form — e.g. every chunk of a
    #: stored column — shares a single compiled plan regardless of
    #: data-statistics parameters like ``num_runs``.
    plan_depends_on_form: bool = True

    # ------------------------------------------------------------------ #
    # Mandatory interface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def compress(self, column: Column) -> CompressedForm:
        """Compress *column* into a :class:`CompressedForm`."""

    @abc.abstractmethod
    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Return the columnar-operator plan that decompresses *form*.

        The plan's inputs are (a subset of) the form's constituent names;
        evaluating it with those columns yields the decompressed data.
        """

    # ------------------------------------------------------------------ #
    # Defaults
    # ------------------------------------------------------------------ #

    def decompress(self, form: CompressedForm) -> Column:
        """Decompress by executing the *compiled* decompression plan.

        :meth:`decompression_plan` remains the uncompiled specification;
        this default routes it through :mod:`repro.columnar.compile`, so the
        plan is optimized once and the compiled artifact is shared by every
        form with the same scheme signature (e.g. all chunks of a stored
        column).  The output is cast back to the original dtype.
        """
        self._check_form(form)
        compiled = self.compiled_decompression_plan(form)
        result = compiled.run(self.plan_inputs(form))
        return self._restore(result, form)

    def decompress_interpreted(self, form: CompressedForm) -> Column:
        """Decompress by rebuilding and interpreting the plan (no compilation).

        This is the pre-compiler execution path, kept as the baseline the
        benchmarks compare the compiled path against and as a correctness
        cross-check: it must always agree with :meth:`decompress`.
        """
        self._check_form(form)
        plan = self.decompression_plan(form)
        result = plan.evaluate_detailed(self.plan_inputs(form)).output
        return self._restore(result, form)

    def compiled_decompression_plan(self, form: CompressedForm) -> CompiledPlan:
        """The cached compiled plan that :meth:`decompress` executes."""
        return compiled_plan_for_scheme(self, form)

    def plan_key_parameters(self) -> Dict[str, Any]:
        """The scheme configuration its decompression plan depends on.

        Defaults to :meth:`parameters`; schemes with plan-shaping knobs not
        reported there (e.g. FOR's ``faithful_plan``) override this so the
        compiled-plan cache keys on them too.
        """
        return self.parameters()

    def plan_cache_key(self, form: CompressedForm) -> Optional[Tuple[Any, ...]]:
        """Structural cache key for the compiled decompression plan, or ``None``.

        The default captures everything the plans in this library depend on:
        the scheme class, its plan-relevant configuration, and the form's
        scalar parameters.  A scheme whose plan depends on anything else
        (e.g. the constituent data itself) must override this — returning
        ``None`` disables scheme-level caching and falls back to caching by
        plan structural signature.

        Both frozen halves are memoised (scheme configuration on the scheme
        instance, form parameters on the form) so the per-decompression key
        cost is one tuple construction; schemes and form parameters are
        treated as immutable after construction, as everywhere else in the
        library.
        """
        try:
            prefix = self.__dict__.get("_plan_key_prefix")
            if prefix is None:
                prefix = (type(self).__qualname__,
                          freeze_value(self.plan_key_parameters()))
                self.__dict__["_plan_key_prefix"] = prefix
            frozen = form.frozen_parameters() if self.plan_depends_on_form else ()
            return prefix + (form.scheme, frozen)
        except TypeError:  # unhashable configuration -> fall back to
            return None    # plan-signature caching; real bugs propagate

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """The compressed-domain kernels this scheme supports for *form*.

        A subset of the ``KERNEL_*`` constants of this module.  The engine's
        capability dispatch (:mod:`repro.engine.kernels`) consults this
        before scheduling decompression: a form advertising
        ``KERNEL_FILTER_RANGE`` can evaluate range predicates without
        decompressing, ``KERNEL_GATHER`` can materialise individual
        positions, ``KERNEL_AGGREGATE`` can count/sum/min/max over a
        selection, and ``KERNEL_GROUP_CODES`` exposes pre-factorised group
        codes (dictionary encoding).  Capabilities may depend on the form's
        parameters (e.g. zig-zag-transformed NS forms are not
        order-preserving, so they drop ``KERNEL_FILTER_RANGE``); they must
        never depend on constituent data.  The default advertises nothing.
        """
        return frozenset()

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Decompress with a hand-fused kernel, when the scheme provides one.

        The default simply falls back to the plan-based path; schemes that
        override this are used as the "direct kernel" baseline in the
        plan-vs-kernel experiments (E2/E3).
        """
        return self.decompress(form)

    def plan_inputs(self, form: CompressedForm) -> Dict[str, Column]:
        """The columns to bind when evaluating the decompression plan.

        By default every plain constituent is bound under its own name.
        Composite schemes override this to splice nested forms.
        """
        return dict(form.columns)

    def validate(self, column: Column) -> None:
        """Raise :class:`CompressionError` when *column* cannot be compressed.

        The default accepts any integer column; schemes with further
        requirements (non-negative data, sortedness, ...) override.
        """
        if not np.issubdtype(column.dtype, np.integer):
            raise CompressionError(
                f"{self.name} compresses integer columns; got dtype {column.dtype}"
            )

    def expected_constituents(self) -> Tuple[str, ...]:
        """Names of the constituent columns :meth:`compress` produces."""
        return ()

    def parameters(self) -> Dict[str, Any]:
        """The scheme's own configuration parameters (for reporting/registry)."""
        return {}

    def describe(self) -> str:
        """Human-readable one-liner, including configuration."""
        params = ", ".join(f"{k}={v}" for k, v in self.parameters().items())
        return f"{self.name}({params})" if params else self.name

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses
    # ------------------------------------------------------------------ #

    def _check_form(self, form: CompressedForm) -> None:
        if form.scheme != self.name:
            raise DecompressionError(
                f"form was produced by scheme {form.scheme!r}, "
                f"but {self.name!r} was asked to decompress it"
            )

    def _restore(self, column: Column, form: CompressedForm) -> Column:
        """Cast the decompressed values back to the original dtype and length-check."""
        if len(column) != form.original_length:
            raise DecompressionError(
                f"{self.name}: decompression produced {len(column)} values, "
                f"expected {form.original_length}"
            )
        if column.dtype != np.dtype(form.original_dtype):
            column = column.astype(form.original_dtype)
        return column

    def _empty_form(self, column: Column, **parameters: Any) -> CompressedForm:
        """A form for an empty input column (all schemes share this shape)."""
        return CompressedForm(
            scheme=self.name,
            columns={name: Column.empty(np.int64, name=name)
                     for name in self.expected_constituents()},
            parameters=dict(parameters),
            original_length=0,
            original_dtype=column.dtype,
        )

    # ------------------------------------------------------------------ #
    # Round-trip convenience
    # ------------------------------------------------------------------ #

    def roundtrip(self, column: Column) -> Column:
        """Compress then decompress (used heavily by tests)."""
        return self.decompress(self.compress(column))

    def compression_ratio(self, column: Column) -> float:
        """Compression ratio achieved on *column*."""
        return self.compress(column).compression_ratio()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


def ensure_lossless_roundtrip(scheme: CompressionScheme, column: Column) -> CompressedForm:
    """Compress *column* and verify the round trip, returning the form.

    A convenience for callers (storage layer, advisor) that must never
    silently corrupt data: the cost of the extra decompression is accepted
    in exchange for the guarantee.
    """
    form = scheme.compress(column)
    if scheme.is_lossless:
        restored = scheme.decompress(form)
        if not restored.equals(column):
            raise CompressionError(
                f"{scheme.describe()} failed to round-trip a column of length {len(column)}"
            )
    return form

"""RPE: run-position encoding — what is left of RLE after dropping a step.

Section II-A of the paper observes that if, instead of the run *lengths*,
we store the (inclusive-prefix-summed) run *end positions*, Algorithm 1 can
be applied "sans its first operation" and still reproduce the column —
and that storing positions instead of lengths is itself a compression
scheme, Run Position Encoding (RPE, after Plattner §7.2).

The relationship the paper writes as

    ``RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE``

is made executable in :mod:`repro.schemes.decomposition`; here we implement
RPE in its own right.  Its decompression plan is, literally, the RLE plan
with its first step dropped (see :func:`build_rpe_decompression_plan`),
which is the cheaper-decompression / weaker-compression trade the paper
describes: positions occupy a (slightly) wider dtype than lengths, but
decompression — and, importantly, *random access and selections* — skip the
prefix sum over the runs.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.ops import runs as _runs
from ..columnar.plan import LengthOf, Plan, PlanBuilder, ScalarAt
from ..errors import DecompressionError
from .base import (
    KERNEL_AGGREGATE,
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)
from .rle import build_rle_decompression_plan


def build_rpe_decompression_plan(derive_from_rle: bool = True) -> Plan:
    """The RPE decompression plan.

    With ``derive_from_rle=True`` (default) the plan is obtained exactly the
    way the paper derives it: take Algorithm 1 and drop its first operation,
    promoting ``run_positions`` to an input.  With ``False`` an equivalent
    plan is built directly; the two are checked to coincide in the test
    suite (structural equality of steps).
    """
    if derive_from_rle:
        return build_rle_decompression_plan().drop_prefix(
            ["run_positions"], description="RPE decompression (Algorithm 1 sans PrefixSum)"
        )
    builder = PlanBuilder(["run_positions", "values"],
                          description="RPE decompression (direct)")
    builder.step("run_positions_trimmed", "PopBack", col="run_positions")
    builder.step("ones", "Ones", length=LengthOf("run_positions_trimmed"))
    builder.step("zeros", "Zeros", length=ScalarAt("run_positions", -1))
    builder.step("pos_delta", "Scatter", values="ones",
                 indices="run_positions_trimmed", base="zeros")
    builder.step("positions", "PrefixSum", col="pos_delta")
    builder.step("decompressed", "Gather", values="values", indices="positions")
    return builder.build("decompressed")


class RunPositionEncoding(CompressionScheme):
    """RPE: per-run values plus exclusive-of-the-run *end* positions.

    The ``run_positions`` constituent holds, for every run, the position one
    past its last element; its final entry is therefore the uncompressed
    column length (the ``n`` Algorithm 1 reads off it).
    """

    name = "RPE"
    #: The derived plan is one fixed operator sequence for every form.
    plan_depends_on_form = False

    def __init__(self, narrow_positions: bool = True):
        self.narrow_positions = narrow_positions

    def parameters(self) -> Dict[str, Any]:
        return {"narrow_positions": self.narrow_positions}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("values", "run_positions")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Run-domain execution; RPE's stored positions make the gather a
        single binary search with no prefix sum at all."""
        return frozenset((KERNEL_FILTER_RANGE, KERNEL_GATHER, KERNEL_AGGREGATE))

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Split *column* into per-run ``values`` and ``run_positions``."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column)
        values = _runs.run_values(column, name="values")
        positions = _runs.run_end_positions(column, name="run_positions")
        if self.narrow_positions:
            positions = positions.astype(positions.narrowest_dtype())
        return CompressedForm(
            scheme=self.name,
            columns={"values": values, "run_positions": positions},
            parameters={"num_runs": len(values)},
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Algorithm 1 with its first operation dropped."""
        return build_rpe_decompression_plan(derive_from_rle=True)

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: derive lengths by adjacent difference, then repeat."""
        self._check_form(form)
        values = form.constituent("values").values
        positions = form.constituent("run_positions").values.astype(np.int64)
        if len(values) != len(positions):
            raise DecompressionError(
                f"RPE values and run_positions disagree in length: "
                f"{len(values)} vs {len(positions)}"
            )
        lengths = np.empty(len(positions), dtype=np.int64)
        if len(positions):
            lengths[0] = positions[0]
            np.subtract(positions[1:], positions[:-1], out=lengths[1:])
        return self._restore(Column(np.repeat(values, lengths)), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

    # ------------------------------------------------------------------ #
    # RPE's "why it matters": cheap positional access without decompression
    # ------------------------------------------------------------------ #

    @staticmethod
    def value_at(form: CompressedForm, position: int) -> Any:
        """Random access into the compressed form via binary search.

        Because RPE stores positions (already prefix-summed), locating the
        run containing an arbitrary row is a single ``searchsorted`` — no
        scan over the runs is needed, unlike RLE where the lengths must
        first be prefix-summed.  This is the concrete payoff of trading away
        some compression ratio for ease of (partial) decompression.
        """
        positions = form.constituent("run_positions").values
        values = form.constituent("values").values
        if position < 0 or position >= form.original_length:
            raise DecompressionError(
                f"position {position} out of range [0, {form.original_length})"
            )
        run = int(np.searchsorted(positions, position, side="right"))
        return values[run].item()

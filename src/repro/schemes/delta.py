"""DELTA: store differences between consecutive elements.

DELTA is the scheme the paper singles out in its decomposition of RLE:
the run-*position* column of RPE is nothing but the prefix sum of the run
*lengths* — i.e. the lengths column is the DELTA-compressed form of the
positions column.  Decompression is therefore a single ``PrefixSum``.

The constituent layout is deliberately minimal: one ``deltas`` column of the
same length as the input, whose first element is the first value itself
(equivalently, the delta from an implicit reference of 0).  The deltas of a
generic column are small but signed; on their own they occupy the same
physical width as the input, so DELTA pays off only when composed with a
narrowing scheme (NS with zig-zag) — exactly the paper's point that
composition is where the leverage is.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.ops.elementwise import adjacent_difference
from ..columnar.plan import Plan, PlanBuilder
from .base import CompressedForm, CompressionScheme


class Delta(CompressionScheme):
    """Adjacent-difference encoding; decompression is one prefix sum.

    Parameters
    ----------
    narrow:
        When true (default), store the deltas in the narrowest physical
        signed dtype that fits them, so that DELTA alone already shrinks
        well-behaved columns; when false keep 64-bit deltas (the "pure"
        columnar form, useful when a further scheme will narrow them anyway).
    """

    name = "DELTA"
    #: Decompression is always exactly one prefix sum.
    plan_depends_on_form = False

    def __init__(self, narrow: bool = True):
        self.narrow = narrow

    def parameters(self) -> Dict[str, Any]:
        return {"narrow": self.narrow}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("deltas",)

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Store ``deltas[0] = col[0]``, ``deltas[i] = col[i] - col[i-1]``."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column)
        deltas = adjacent_difference(column, name="deltas")
        if self.narrow:
            deltas = deltas.astype(deltas.narrowest_dtype())
        return CompressedForm(
            scheme=self.name,
            columns={"deltas": deltas},
            parameters={},
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Decompression is exactly one inclusive prefix sum."""
        builder = PlanBuilder(["deltas"], description="DELTA decompression")
        builder.step("values", "PrefixSum", col="deltas")
        return builder.build("values")

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct ``numpy.cumsum`` over the deltas."""
        self._check_form(form)
        deltas = form.constituent("deltas").values
        return self._restore(Column(np.cumsum(deltas, dtype=np.int64)), form)

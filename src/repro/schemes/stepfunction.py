"""STEPFUNCTION: the coarse model hiding inside FOR.

Section II-B of the paper observes that if one keeps the initial steps of
FOR decompression (Algorithm 2) and *ignores the final addition of offsets*,
what remains evaluates a fixed-segment-length step function: the constant
``refs[i]`` over the whole *i*-th segment.  As a stand-alone scheme this
captures only a tiny fragment of possible columns — it is lossy for
everything else — "but it is quite useful conceptually", because it lets the
paper write

    ``FOR ≡ (STEPFUNCTION + NS)``

with NS encoding the residual offsets.  This module implements STEPFUNCTION
as a real (lossy, model) scheme so that identity can be stated, tested and
benchmarked (experiment E5), and so the query engine can evaluate range
predicates against the coarse model alone (experiment E9).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.plan import LengthOf, Plan, PlanBuilder
from ..errors import SchemeParameterError
from ..model.fitting import fit_step_function, segment_index
from ..model.residuals import ResidualProfile, profile_residuals
from .base import CompressedForm, CompressionScheme


def build_stepfunction_evaluation_plan(segment_length: int) -> Plan:
    """The model-evaluation plan: Algorithm 2 without its final addition.

    Note the plan still needs to know how many elements to produce; in FOR
    that length is carried by the offsets column, so the step-function plan
    takes a ``positions_template`` input whose only role is its length (the
    storage layer supplies any column of the right length, typically the
    selection vector being processed).
    """
    builder = PlanBuilder(["refs", "positions_template"],
                          description=f"STEPFUNCTION evaluation (l={segment_length})")
    builder.step("id", "Iota", length=LengthOf("positions_template"))
    builder.step("ref_indices", "Elementwise", op="//", left="id", right=segment_length)
    builder.step("evaluated", "Gather", values="refs", indices="ref_indices")
    return builder.build("evaluated")


class StepFunctionModel(CompressionScheme):
    """A lossy, fixed-segment-length step-function model of a column.

    ``decompress`` returns the *model evaluation*, not the original data —
    ``is_lossless`` is ``False``.  The residuals (what a composed scheme
    would need to store to become lossless) are available via
    :meth:`residuals`.
    """

    name = "STEPFUNCTION"
    is_lossless = False

    def __init__(self, segment_length: int = 128, reference: str = "min"):
        if segment_length <= 0:
            raise SchemeParameterError(
                f"STEPFUNCTION segment_length must be positive, got {segment_length}"
            )
        self.segment_length = segment_length
        self.reference = reference

    def parameters(self) -> Dict[str, Any]:
        return {"segment_length": self.segment_length, "reference": self.reference}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("refs",)

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Fit the step function and keep only the per-segment references."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column, segment_length=self.segment_length)
        model = fit_step_function(column, self.segment_length, policy=self.reference)
        refs = np.rint(model.coefficients[:, 0]).astype(np.int64)
        return CompressedForm(
            scheme=self.name,
            columns={"refs": Column(refs, name="refs")},
            parameters={
                "segment_length": self.segment_length,
                "reference": self.reference,
                "num_segments": len(refs),
            },
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Evaluate the step function at every original position."""
        return build_stepfunction_evaluation_plan(
            form.parameter("segment_length", self.segment_length)
        )

    def plan_inputs(self, form: CompressedForm) -> Dict[str, Column]:
        refs = form.constituent("refs")
        # Any column of the original length works as the positions template.
        template = Column(np.empty(form.original_length, dtype=np.int8),
                          name="positions_template")
        return {"refs": refs, "positions_template": template}

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: index the refs by ``position // segment_length``."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        refs = form.constituent("refs").values
        seg = segment_index(form.original_length,
                            form.parameter("segment_length", self.segment_length))
        return self._restore(Column(refs[seg]), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

    # ------------------------------------------------------------------ #
    # Model-scheme extras
    # ------------------------------------------------------------------ #

    def residuals(self, form: CompressedForm, original: Column) -> Column:
        """The offsets a residual scheme would need to store: ``original - model``."""
        evaluated = self.decompress_fused(form)
        return Column(original.values.astype(np.int64) - evaluated.values.astype(np.int64),
                      name="residuals")

    def residual_profile(self, form: CompressedForm, original: Column) -> ResidualProfile:
        """Residual statistics (drives the choice of residual encoding)."""
        return profile_residuals(self.residuals(form, original))

    def approximation_error(self, form: CompressedForm, original: Column) -> float:
        """L∞ reconstruction error of the model alone."""
        residuals = self.residuals(form, original).values
        return float(np.abs(residuals).max()) if len(residuals) else 0.0

"""FOR: frame-of-reference encoding, with decompression as Algorithm 2.

FOR exploits *limited local variation despite potentially large global
variation*: the column is cut into fixed-length segments, each segment gets
a reference value, and only the (narrow) offsets from that reference are
stored per element.  In the paper's pure-columns view the compressed form is
the scalar segment length ``ℓ``, a ``refs`` column of length ``ceil(n/ℓ)``,
and an ``offsets`` column of length ``n``.

Decompression, expressed in columnar operators, is Algorithm 2:

1. ``ones         ← Constant(1, |offsets|)``
2. ``id           ← PrefixSum(ones)``           (position of every element)
3. ``ells         ← Constant(ℓ, |offsets|)``
4. ``ref_indices  ← Elementwise(÷, id, ells)``
5. ``replicated   ← Gather(refs, ref_indices)``
6. ``return Elementwise(+, replicated, offsets)``

As printed in the paper, step 2 produces a *1-based* position, which would
misassign the last element of every segment; the intended 0-based position
column is obtained here with ``Iota`` (equivalently, an exclusive prefix sum
of the ones column).  The deviation is recorded in EXPERIMENTS.md.

Keeping only steps 1–5 — dropping the final addition — leaves the *step
function* evaluation the paper builds its §II-B decomposition on; that
truncation is performed mechanically in :mod:`repro.schemes.decomposition`
and exercised by experiment E5.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.plan import LengthOf, Plan, PlanBuilder
from ..errors import CompressionError, SchemeParameterError
from ..model.fitting import fit_step_function, segment_index
from . import _residuals
from .base import (
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)


def build_for_decompression_plan(segment_length: int,
                                 offsets_params: Optional[Dict[str, Any]] = None,
                                 faithful_to_paper: bool = True) -> Plan:
    """Algorithm 2 as a plan, optionally preceded by residual decoding.

    With ``faithful_to_paper=True`` the position column is produced by the
    paper's ``Constant``/``PrefixSum`` pair (corrected to 0-based by an
    exclusive scan); otherwise a single ``Iota`` is used.  Both variants are
    kept so the structural-equivalence tests can show they evaluate
    identically while the cost model sees their different operator counts.
    """
    builder = PlanBuilder(["refs", "offsets"],
                          description=f"FOR decompression (Algorithm 2, l={segment_length})")
    if offsets_params is not None:
        offsets_binding = _residuals.add_decode_steps(builder, offsets_params,
                                                      input_name="offsets")
    else:
        offsets_binding = "offsets"

    if faithful_to_paper:
        builder.step("ones", "Ones", length=LengthOf(offsets_binding))
        builder.step("id", "ExclusivePrefixSum", col="ones")
        builder.step("ells", "Constant", value=segment_length, length=LengthOf(offsets_binding))
        builder.step("ref_indices", "Elementwise", op="//", left="id", right="ells")
    else:
        builder.step("id", "Iota", length=LengthOf(offsets_binding))
        builder.step("ref_indices", "Elementwise", op="//", left="id", right=segment_length)

    builder.step("replicated", "Gather", values="refs", indices="ref_indices")
    builder.step("decompressed", "Elementwise", op="+", left="replicated",
                 right=offsets_binding)
    return builder.build("decompressed")


def saturating_segment_bounds(refs: np.ndarray, width: int,
                              zigzag: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``[low, high]`` value bounds for offsets of *width* bits.

    The bound *arithmetic* saturates at the int64 limits instead of clamping
    the offset span: a ``width >= 63`` segment genuinely admits (almost) any
    int64 value, so its bounds must widen to the domain limits rather than
    silently understate the span (which made wide-offset segments eligible
    for wrongful rejection — or wholesale acceptance — during pushdown).
    Saturation also keeps ``refs ± span`` from overflowing for references
    near the int64 limits.
    """
    top = np.iinfo(np.int64).max
    bottom = np.iinfo(np.int64).min
    if zigzag:
        if width >= 63:
            # Signed offsets cover the whole int64 range: refs bound nothing.
            return (np.full(refs.shape, bottom, dtype=np.int64),
                    np.full(refs.shape, top, dtype=np.int64))
        half = 1 << (width - 1) if width else 0
        low = np.clip(refs, bottom + half, None) - half
        high = np.clip(refs, None, top - half) + half
        return low, high
    span = min((1 << width) - 1, top)
    high = np.clip(refs, None, top - span) + span
    return refs, high


class FrameOfReference(CompressionScheme):
    """Segmented frame-of-reference encoding.

    Parameters
    ----------
    segment_length:
        Number of elements per segment (the paper's ``ℓ``).
    reference:
        Per-segment reference policy: ``"min"`` (offsets are non-negative,
        the classic choice), ``"mid"`` (offsets signed, half the magnitude),
        or ``"first"`` (reference is the segment's first element; note the
        paper's remark that the reference *need not* be the first element).
    offsets_layout:
        ``"packed"`` (bit-packed at exact width — the explicit "+ NS" of the
        paper's identity) or ``"aligned"`` (narrowest power-of-two dtype).
    faithful_plan:
        Build the decompression plan with the paper's Constant/PrefixSum
        position computation rather than a single Iota.
    """

    name = "FOR"

    def __init__(self, segment_length: int = 128, reference: str = "min",
                 offsets_layout: str = "packed", faithful_plan: bool = True):
        if segment_length <= 0:
            raise SchemeParameterError(
                f"FOR segment_length must be positive, got {segment_length}"
            )
        if reference not in ("min", "mid", "first"):
            raise SchemeParameterError(
                f"FOR reference must be 'min', 'mid' or 'first', got {reference!r}"
            )
        self.segment_length = segment_length
        self.reference = reference
        self.offsets_layout = offsets_layout
        self.faithful_plan = faithful_plan

    def parameters(self) -> Dict[str, Any]:
        return {
            "segment_length": self.segment_length,
            "reference": self.reference,
            "offsets_layout": self.offsets_layout,
        }

    def plan_key_parameters(self) -> Dict[str, Any]:
        # ``faithful_plan`` changes the shape of the decompression plan but is
        # not part of the reported configuration; the compiled-plan cache must
        # key on it.
        return {**self.parameters(), "faithful_plan": self.faithful_plan}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("refs", "offsets")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Segment-domain execution: references bound (and translate range
        constants for) every segment; gathers decode only the touched
        positions' offsets."""
        return frozenset((KERNEL_FILTER_RANGE, KERNEL_GATHER))

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Fit per-segment references and store narrow offsets."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column, segment_length=self.segment_length)

        model = fit_step_function(column, self.segment_length, policy=self.reference)
        refs = np.rint(model.coefficients[:, 0]).astype(np.int64)
        seg = segment_index(len(column), self.segment_length)
        offsets = column.values.astype(np.int64) - refs[seg]
        if self.reference == "min" and offsets.min(initial=0) < 0:
            raise CompressionError("internal error: min-referenced FOR produced negative offsets")

        offsets_column, offsets_params = _residuals.encode_residuals(
            offsets, layout=self.offsets_layout, name="offsets"
        )
        parameters: Dict[str, Any] = {
            "segment_length": self.segment_length,
            "reference": self.reference,
            "num_segments": len(refs),
        }
        parameters.update(offsets_params)
        return CompressedForm(
            scheme=self.name,
            columns={"refs": Column(refs, name="refs"), "offsets": offsets_column},
            parameters=parameters,
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Algorithm 2, preceded by offset decoding when offsets are packed."""
        offsets_params = {
            "offsets_layout": form.parameter("offsets_layout", "aligned"),
            "offsets_width": form.parameter("offsets_width", 64),
            "offsets_count": form.parameter("offsets_count", form.original_length),
            "offsets_zigzag": form.parameter("offsets_zigzag", False),
        }
        needs_decode = (offsets_params["offsets_layout"] == "packed"
                        or offsets_params["offsets_zigzag"])
        return build_for_decompression_plan(
            form.parameter("segment_length", self.segment_length),
            offsets_params if needs_decode else None,
            faithful_to_paper=self.faithful_plan,
        )

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: decode offsets, replicate refs with ``np.repeat``-style indexing."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        refs = form.constituent("refs").values
        offsets = _residuals.decode_residuals(form.constituent("offsets"), form.parameters)
        segment_length = form.parameter("segment_length", self.segment_length)
        seg = segment_index(form.original_length, segment_length)
        return self._restore(Column(refs[seg] + offsets), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

    # ------------------------------------------------------------------ #
    # Model-view helpers (used by pushdown and the decomposition module)
    # ------------------------------------------------------------------ #

    @staticmethod
    def segment_bounds(form: CompressedForm) -> Tuple[np.ndarray, np.ndarray]:
        """Per-segment value bounds implied by the compressed form alone.

        For a min-referenced FOR the reference is a lower bound and
        ``ref + 2**width - 1`` an upper bound; a range selection can accept
        or reject whole segments from these bounds without touching the
        offsets — the paper's "speed up selections" argument (experiment E9).
        """
        refs = form.constituent("refs").values.astype(np.int64)
        width = int(form.parameter("offsets_width", 64))
        zigzag = bool(form.parameter("offsets_zigzag", False))
        return saturating_segment_bounds(refs, width, zigzag)

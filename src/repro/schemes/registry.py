"""Scheme registry: construct schemes by name.

The storage layer and the compression advisor refer to schemes by name (and
keyword parameters), so that per-column encoding decisions are plain data —
a name plus a parameter dict — rather than live Python objects.  This module
maps those names back to scheme factories.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..errors import SchemeParameterError
from .base import CompressionScheme
from .composite import Cascade
from .delta import Delta
from .dict_ import DictionaryEncoding
from .for_ import FrameOfReference
from .identity import Identity
from .model_based import PiecewiseLinear, PiecewisePolynomial
from .ns import NullSuppression
from .patched import PatchedFrameOfReference
from .rle import RunLengthEncoding
from .rpe import RunPositionEncoding
from .stepfunction import StepFunctionModel
from .varwidth import VariableWidth

#: Factories for every registered stand-alone scheme.
SCHEME_FACTORIES: Dict[str, Callable[..., CompressionScheme]] = {
    Identity.name: Identity,
    NullSuppression.name: NullSuppression,
    Delta.name: Delta,
    RunLengthEncoding.name: RunLengthEncoding,
    RunPositionEncoding.name: RunPositionEncoding,
    FrameOfReference.name: FrameOfReference,
    StepFunctionModel.name: StepFunctionModel,
    DictionaryEncoding.name: DictionaryEncoding,
    PatchedFrameOfReference.name: PatchedFrameOfReference,
    VariableWidth.name: VariableWidth,
    PiecewiseLinear.name: PiecewiseLinear,
    PiecewisePolynomial.name: PiecewisePolynomial,
}


def available_schemes() -> List[str]:
    """Names of all registered stand-alone schemes, sorted."""
    return sorted(SCHEME_FACTORIES)


def make_scheme(name: str, **parameters: Any) -> CompressionScheme:
    """Instantiate the scheme registered under *name* with *parameters*.

    >>> make_scheme("FOR", segment_length=64).describe()
    "FOR(segment_length=64, reference='min', offsets_layout='packed')"
    """
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise SchemeParameterError(
            f"unknown compression scheme {name!r}; available: {available_schemes()}"
        ) from None
    return factory(**parameters)


def make_cascade(outer: str, inner: Dict[str, str],
                 outer_parameters: Dict[str, Any] = None,
                 inner_parameters: Dict[str, Dict[str, Any]] = None) -> Cascade:
    """Instantiate a :class:`Cascade` from scheme names.

    >>> make_cascade("RLE", {"values": "DELTA"}).name
    'RLE∘[values=DELTA]'
    """
    outer_scheme = make_scheme(outer, **(outer_parameters or {}))
    inner_schemes = {
        constituent: make_scheme(name, **((inner_parameters or {}).get(constituent, {})))
        for constituent, name in inner.items()
    }
    return Cascade(outer_scheme, inner_schemes)

"""The paper's decomposition identities, made executable and checkable.

Section II states two identities:

* **§II-A**  ``RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE``
  — storing run lengths is the same as storing DELTA-compressed run
  positions; equivalently, RPE is what remains of RLE when the first step of
  its decompression plan (the prefix sum over lengths) is dropped.

* **§II-B**  ``FOR ≡ STEPFUNCTION + NS``
  — the per-segment references are a (lossy) step-function model and the
  offsets are its NS-encoded residuals; equivalently, the step-function
  model is what remains of FOR when the last step of its decompression plan
  (the addition of offsets) is dropped.

This module provides three things for each identity:

1. **form converters** — functions mapping a compressed form of one side to
   a compressed form of the other (e.g. :func:`rle_form_to_rpe_form`);
2. **plan derivations** — the mechanical plan surgery (drop-prefix /
   truncate) that the paper describes in prose;
3. **equivalence checks** — :class:`DecompositionIdentity` instances whose
   ``verify(column)`` method confirms, on actual data, that both sides
   decompress to the same column and that the converted constituents match
   element for element.

The equivalence checks are exercised by unit tests, property-based tests and
experiment E4/E5 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..columnar.column import Column
from ..columnar.compile import optimize
from ..columnar.ops import scan as _scan
from ..columnar.ops.elementwise import adjacent_difference
from ..columnar.plan import Plan
from ..errors import DecompressionError
from .base import CompressedForm
from .composite import Cascade
from .delta import Delta
from .for_ import FrameOfReference, build_for_decompression_plan
from .identity import Identity
from .ns import NullSuppression
from .rle import RunLengthEncoding, build_rle_decompression_plan
from .rpe import RunPositionEncoding, build_rpe_decompression_plan
from .stepfunction import StepFunctionModel
from . import _residuals


# --------------------------------------------------------------------------- #
# §II-A: RLE ≡ (ID, DELTA) ∘ RPE
# --------------------------------------------------------------------------- #

def rle_form_to_rpe_form(form: CompressedForm) -> CompressedForm:
    """Convert an RLE compressed form into the equivalent RPE form.

    The conversion *is* the first step of Algorithm 1: prefix-sum the run
    lengths into run end positions.  (This is "partial decompression":
    executing only a prefix of the decompression plan transforms the
    compressed form of one scheme into that of another.)
    """
    if form.scheme != RunLengthEncoding.name:
        raise DecompressionError(f"expected an RLE form, got {form.scheme!r}")
    positions = _scan.prefix_sum(form.constituent("lengths"), name="run_positions")
    return CompressedForm(
        scheme=RunPositionEncoding.name,
        columns={"values": form.constituent("values"), "run_positions": positions},
        parameters=dict(form.parameters),
        original_length=form.original_length,
        original_dtype=form.original_dtype,
    )


def rpe_form_to_rle_form(form: CompressedForm) -> CompressedForm:
    """Convert an RPE compressed form into the equivalent RLE form.

    The inverse direction applies DELTA *compression* (adjacent differences)
    to the run positions, recovering the run lengths — which is exactly why
    the paper writes the identity with a DELTA on the ``run_positions``
    constituent.
    """
    if form.scheme != RunPositionEncoding.name:
        raise DecompressionError(f"expected an RPE form, got {form.scheme!r}")
    lengths = adjacent_difference(form.constituent("run_positions"), name="lengths")
    return CompressedForm(
        scheme=RunLengthEncoding.name,
        columns={"values": form.constituent("values"), "lengths": lengths},
        parameters=dict(form.parameters),
        original_length=form.original_length,
        original_dtype=form.original_dtype,
    )


def derive_rpe_plan_from_rle() -> Plan:
    """The mechanical derivation: Algorithm 1 with its first step dropped."""
    return build_rle_decompression_plan().drop_prefix(
        ["run_positions"], description="RPE decompression (derived from Algorithm 1)"
    )


def rle_as_cascade_over_rpe() -> Cascade:
    """The identity's right-hand side as an actual scheme object.

    ``Cascade(RPE, {values: ID, run_positions: DELTA})`` compresses any
    column into constituents bit-identical to RLE's (the DELTA of the run
    end positions *is* the lengths column), and decompresses through RPE.
    """
    return Cascade(RunPositionEncoding(narrow_positions=False),
                   {"values": Identity(), "run_positions": Delta(narrow=False)})


# --------------------------------------------------------------------------- #
# §II-B: FOR ≡ STEPFUNCTION + NS
# --------------------------------------------------------------------------- #

def for_form_to_model_and_residuals(form: CompressedForm) -> Dict[str, CompressedForm]:
    """Split a FOR form into a STEPFUNCTION form and an NS form of the offsets."""
    if form.scheme != FrameOfReference.name:
        raise DecompressionError(f"expected a FOR form, got {form.scheme!r}")
    step_form = CompressedForm(
        scheme=StepFunctionModel.name,
        columns={"refs": form.constituent("refs")},
        parameters={
            "segment_length": form.parameter("segment_length"),
            "reference": form.parameter("reference", "min"),
            "num_segments": form.parameter("num_segments"),
        },
        original_length=form.original_length,
        original_dtype=form.original_dtype,
    )
    offsets = _residuals.decode_residuals(form.constituent("offsets"), form.parameters)
    ns = NullSuppression(signed="zigzag" if form.parameter("offsets_zigzag", False) else "reject")
    ns_form = ns.compress(Column(offsets, name="offsets"))
    return {"model": step_form, "residuals": ns_form}


def reassemble_for_from_model_and_residuals(model_form: CompressedForm,
                                            residual_form: CompressedForm,
                                            offsets_layout: str = "packed") -> CompressedForm:
    """Rebuild a FOR form from its STEPFUNCTION model and NS residuals."""
    ns = NullSuppression(signed="zigzag")
    offsets = ns.decompress(residual_form).values.astype(np.int64)
    offsets_column, offsets_params = _residuals.encode_residuals(
        offsets, layout=offsets_layout, name="offsets"
    )
    parameters = {
        "segment_length": model_form.parameter("segment_length"),
        "reference": model_form.parameter("reference", "min"),
        "num_segments": model_form.parameter("num_segments"),
    }
    parameters.update(offsets_params)
    return CompressedForm(
        scheme=FrameOfReference.name,
        columns={"refs": model_form.constituent("refs"), "offsets": offsets_column},
        parameters=parameters,
        original_length=model_form.original_length,
        original_dtype=model_form.original_dtype,
    )


def derive_stepfunction_plan_from_for(segment_length: int) -> Plan:
    """The mechanical derivation: Algorithm 2 truncated before the final addition."""
    full = build_for_decompression_plan(segment_length, offsets_params=None,
                                        faithful_to_paper=True)
    return full.truncate_at(
        "replicated",
        description=f"STEPFUNCTION evaluation (Algorithm 2 truncated, l={segment_length})",
    )


# --------------------------------------------------------------------------- #
# Surgery / optimizer commutation
# --------------------------------------------------------------------------- #

def surgery_commutes_with_optimization(plan: Plan, inputs, *,
                                       truncate_at: Optional[str] = None,
                                       drop_prefix: Optional[List[str]] = None) -> bool:
    """Check that plan surgery and the optimizer commute observationally.

    The paper's decomposition arguments are *surgery on uncompiled plans*
    (drop the first steps, keep only the initial steps); the plan compiler
    rewrites plans aggressively.  The two must not interfere: optimizing a
    surgered plan has to evaluate to exactly what the surgered plan
    evaluates to.  (The stronger syntactic property — surgering an
    *optimized* plan — is not required, since optimization may remove the
    very binding the surgery names; surgery is therefore always performed
    on the uncompiled specification.)
    """
    surgered = plan
    if truncate_at is not None:
        surgered = surgered.truncate_at(truncate_at)
    if drop_prefix is not None:
        surgered = surgered.drop_prefix(drop_prefix)
    reference = surgered.evaluate(inputs)
    optimized = optimize(surgered).evaluate(inputs)
    return optimized.equals(reference, check_dtype=True)


# --------------------------------------------------------------------------- #
# Machine-checkable identities
# --------------------------------------------------------------------------- #

@dataclass
class IdentityCheckResult:
    """Outcome of verifying a decomposition identity on one column."""

    identity: str
    holds: bool
    details: Dict[str, bool]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


@dataclass
class DecompositionIdentity:
    """A named, executable decomposition identity.

    ``verify(column)`` runs the identity's individual checks on real data
    and reports which held.  The two paper identities are provided as module
    attributes :data:`RLE_VIA_RPE` and :data:`FOR_VIA_STEPFUNCTION`.
    """

    name: str
    checks: List[Callable[[Column], bool]]

    def verify(self, column: Column) -> IdentityCheckResult:
        details = {}
        for check in self.checks:
            details[check.__name__] = bool(check(column))
        return IdentityCheckResult(self.name, all(details.values()), details)


# -- RLE ≡ (ID, DELTA) ∘ RPE checks ----------------------------------------- #

def _check_rle_rpe_roundtrip_agreement(column: Column) -> bool:
    """Both sides decompress back to the original column."""
    rle = RunLengthEncoding()
    cascade = rle_as_cascade_over_rpe()
    return (rle.roundtrip(column).equals(column)
            and cascade.decompress(cascade.compress(column)).equals(column))


def _check_lengths_equal_delta_of_positions(column: Column) -> bool:
    """RLE's lengths column equals the DELTA compression of RPE's positions."""
    rle_form = RunLengthEncoding(narrow_lengths=False).compress(column)
    rpe_form = RunPositionEncoding(narrow_positions=False).compress(column)
    delta_of_positions = Delta(narrow=False).compress(rpe_form.constituent("run_positions"))
    return rle_form.constituent("lengths").equals(delta_of_positions.constituent("deltas"))


def _check_rpe_plan_is_truncated_rle_plan(column: Column) -> bool:
    """The derived RPE plan and the direct RPE plan compute the same result."""
    rpe_form = RunPositionEncoding(narrow_positions=False).compress(column)
    derived = derive_rpe_plan_from_rle()
    direct = build_rpe_decompression_plan(derive_from_rle=False)
    inputs = {"run_positions": rpe_form.constituent("run_positions"),
              "values": rpe_form.constituent("values")}
    if len(column) == 0:
        return True
    return derived.evaluate(inputs).equals(direct.evaluate(inputs)) and \
        derived.evaluate(inputs).equals(Column(column.values.astype(np.int64)))


def _check_rpe_derivation_commutes_with_optimizer(column: Column) -> bool:
    """Optimizing the prefix-dropped Algorithm 1 preserves its result."""
    if len(column) == 0:
        return True
    rpe_form = RunPositionEncoding(narrow_positions=False).compress(column)
    inputs = {"run_positions": rpe_form.constituent("run_positions"),
              "values": rpe_form.constituent("values")}
    return surgery_commutes_with_optimization(
        build_rle_decompression_plan(), inputs, drop_prefix=["run_positions"]
    )


RLE_VIA_RPE = DecompositionIdentity(
    name="RLE ≡ (ID values, DELTA run_positions) ∘ RPE",
    checks=[
        _check_rle_rpe_roundtrip_agreement,
        _check_lengths_equal_delta_of_positions,
        _check_rpe_plan_is_truncated_rle_plan,
        _check_rpe_derivation_commutes_with_optimizer,
    ],
)


# -- FOR ≡ STEPFUNCTION + NS checks ----------------------------------------- #

_IDENTITY_SEGMENT_LENGTH = 64


def _check_for_splits_into_model_plus_residuals(column: Column) -> bool:
    """model(x) + NS-decoded residuals == original, element for element."""
    if len(column) == 0:
        return True
    for_scheme = FrameOfReference(segment_length=_IDENTITY_SEGMENT_LENGTH, reference="min")
    form = for_scheme.compress(column)
    parts = for_form_to_model_and_residuals(form)
    model_eval = StepFunctionModel(
        segment_length=_IDENTITY_SEGMENT_LENGTH).decompress_fused(parts["model"])
    residuals = NullSuppression(signed="reject").decompress(parts["residuals"]) \
        if not parts["residuals"].parameter("transform") == "zigzag" \
        else NullSuppression(signed="zigzag").decompress(parts["residuals"])
    reconstructed = model_eval.values.astype(np.int64) + residuals.values.astype(np.int64)
    return bool(np.array_equal(reconstructed, column.values.astype(np.int64)))


def _check_for_reassembles(column: Column) -> bool:
    """Splitting a FOR form and reassembling it round-trips losslessly."""
    if len(column) == 0:
        return True
    for_scheme = FrameOfReference(segment_length=_IDENTITY_SEGMENT_LENGTH, reference="min")
    form = for_scheme.compress(column)
    parts = for_form_to_model_and_residuals(form)
    rebuilt = reassemble_for_from_model_and_residuals(parts["model"], parts["residuals"])
    return for_scheme.decompress(rebuilt).equals(column)


def _check_stepfunction_plan_is_truncated_for_plan(column: Column) -> bool:
    """Algorithm 2 truncated before its addition evaluates the step-function model."""
    if len(column) == 0:
        return True
    for_scheme = FrameOfReference(segment_length=_IDENTITY_SEGMENT_LENGTH, reference="min",
                                  offsets_layout="aligned")
    form = for_scheme.compress(column)
    truncated = derive_stepfunction_plan_from_for(_IDENTITY_SEGMENT_LENGTH)
    evaluated = truncated.evaluate({
        "refs": form.constituent("refs"),
        "offsets": form.constituent("offsets"),
    })
    model = StepFunctionModel(segment_length=_IDENTITY_SEGMENT_LENGTH)
    expected = model.decompress_fused(model.compress(column))
    return Column(evaluated.values.astype(np.int64)).equals(
        Column(expected.values.astype(np.int64)))


def _check_stepfunction_derivation_commutes_with_optimizer(column: Column) -> bool:
    """Optimizing the truncated Algorithm 2 preserves the model evaluation."""
    if len(column) == 0:
        return True
    for_scheme = FrameOfReference(segment_length=_IDENTITY_SEGMENT_LENGTH, reference="min",
                                  offsets_layout="aligned")
    form = for_scheme.compress(column)
    inputs = {"refs": form.constituent("refs"),
              "offsets": form.constituent("offsets")}
    full = build_for_decompression_plan(_IDENTITY_SEGMENT_LENGTH, offsets_params=None,
                                        faithful_to_paper=True)
    return surgery_commutes_with_optimization(full, inputs, truncate_at="replicated")


FOR_VIA_STEPFUNCTION = DecompositionIdentity(
    name="FOR ≡ STEPFUNCTION + NS",
    checks=[
        _check_for_splits_into_model_plus_residuals,
        _check_for_reassembles,
        _check_stepfunction_plan_is_truncated_for_plan,
        _check_stepfunction_derivation_commutes_with_optimizer,
    ],
)


ALL_IDENTITIES = (RLE_VIA_RPE, FOR_VIA_STEPFUNCTION)

"""Enriched-model schemes: piecewise-linear and piecewise-polynomial FOR.

Section II-B of the paper, having read FOR as "step-function model plus NS
residuals", immediately proposes enriching the model: *"keep an offset from
a diagonal line at some slope rather than the offset from a horizontal
'step'; more generally, we would replace step functions with stepwise
low-degree polynomials, or splines"* — noting that compression then requires
curve fitting "rather than taking the minimum or the middle of the range of
values".

These schemes are that proposal, made lossless the same way FOR is: store
the fitted per-segment coefficients plus the exact integer residuals.  The
decompression plans evaluate the model with ordinary columnar operators
(gathers of the coefficient columns, element-wise multiply/add in Horner
order, a final rounding) and then add the residuals — richer models, same
operator algebra, exactly the paper's "generalizing a compression scheme
means generalizing one of its subschemes".
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.plan import LengthOf, Plan, PlanBuilder
from ..errors import SchemeParameterError
from ..model.fitting import (
    fit_piecewise_polynomial,
    position_in_segment,
    segment_index,
)
from . import _residuals
from .base import KERNEL_GATHER, CompressedForm, CompressionScheme


class PiecewisePolynomial(CompressionScheme):
    """Lossless piecewise-polynomial model + residual scheme.

    Parameters
    ----------
    segment_length:
        Elements per segment.
    degree:
        Polynomial degree of the per-segment model (1 = the paper's
        "diagonal line at some slope").
    offsets_layout:
        Residual layout, ``"packed"`` or ``"aligned"`` (see FOR).
    """

    name = "POLY"

    def __init__(self, segment_length: int = 128, degree: int = 1,
                 offsets_layout: str = "packed"):
        if segment_length <= 0:
            raise SchemeParameterError(
                f"POLY segment_length must be positive, got {segment_length}"
            )
        if degree < 1:
            raise SchemeParameterError(
                f"POLY degree must be at least 1 (use FOR/STEPFUNCTION for degree 0), "
                f"got {degree}"
            )
        self.segment_length = segment_length
        self.degree = degree
        self.offsets_layout = offsets_layout

    def parameters(self) -> Dict[str, Any]:
        return {
            "segment_length": self.segment_length,
            "degree": self.degree,
            "offsets_layout": self.offsets_layout,
        }

    def expected_constituents(self) -> Tuple[str, ...]:
        return tuple(f"coeff_{k}" for k in range(self.degree + 1)) + ("offsets",)

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Positional gathers evaluate the model (Horner, per position) and
        decode only the touched residuals — model-backed columns answer
        point reads without decompressing."""
        return frozenset((KERNEL_GATHER,))

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Fit per-segment polynomials and store coefficients plus residuals."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column, segment_length=self.segment_length,
                                    degree=self.degree)
        model = fit_piecewise_polynomial(column, self.segment_length, self.degree)
        prediction = model.predict(round_to_int=True)
        residuals = column.values.astype(np.int64) - prediction

        offsets_column, offsets_params = _residuals.encode_residuals(
            residuals, layout=self.offsets_layout, name="offsets"
        )
        columns: Dict[str, Column] = {"offsets": offsets_column}
        for k in range(model.degree + 1):
            columns[f"coeff_{k}"] = Column(model.coefficients[:, k].copy(), name=f"coeff_{k}")

        parameters: Dict[str, Any] = {
            "segment_length": self.segment_length,
            "degree": model.degree,
            "num_segments": model.num_segments,
        }
        parameters.update(offsets_params)
        return CompressedForm(
            scheme=self.name,
            columns=columns,
            parameters=parameters,
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Horner-evaluate the model columnar-ly, round, add residuals."""
        degree = form.parameter("degree", self.degree)
        segment_length = form.parameter("segment_length", self.segment_length)
        coefficient_inputs = [f"coeff_{k}" for k in range(degree + 1)]
        offsets_params = {
            "offsets_layout": form.parameter("offsets_layout", self.offsets_layout),
            "offsets_width": form.parameter("offsets_width", 64),
            "offsets_count": form.parameter("offsets_count", form.original_length),
            "offsets_zigzag": form.parameter("offsets_zigzag", False),
        }
        builder = PlanBuilder(
            coefficient_inputs + ["offsets"],
            description=f"POLY decompression (degree {degree}, l={segment_length})",
        )
        needs_decode = (offsets_params["offsets_layout"] == "packed"
                        or offsets_params["offsets_zigzag"])
        offsets_binding = (_residuals.add_decode_steps(builder, offsets_params, "offsets")
                           if needs_decode else "offsets")

        builder.step("id", "Iota", length=LengthOf(offsets_binding))
        builder.step("segment_ids", "Elementwise", op="//", left="id", right=segment_length)
        builder.step("in_segment", "Elementwise", op="%", left="id", right=segment_length)

        # Horner: prediction = (((c_d) * x + c_{d-1}) * x + ...) + c_0
        builder.step("prediction_0", "Gather", values=f"coeff_{degree}",
                     indices="segment_ids")
        current = "prediction_0"
        for step_index, k in enumerate(range(degree - 1, -1, -1), start=1):
            builder.step(f"scaled_{step_index}", "Elementwise", op="*",
                         left=current, right="in_segment")
            builder.step(f"coeff_gathered_{step_index}", "Gather",
                         values=f"coeff_{k}", indices="segment_ids")
            builder.step(f"prediction_{step_index}", "Elementwise", op="+",
                         left=f"scaled_{step_index}", right=f"coeff_gathered_{step_index}")
            current = f"prediction_{step_index}"

        builder.step("prediction_rounded", "ElementwiseUnary", op="round", operand=current)
        builder.step("decompressed", "Elementwise", op="+",
                     left="prediction_rounded", right=offsets_binding)
        return builder.build("decompressed")

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: vectorised Horner evaluation plus residuals."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        degree = form.parameter("degree", self.degree)
        segment_length = form.parameter("segment_length", self.segment_length)
        n = form.original_length
        seg = segment_index(n, segment_length)
        pos = position_in_segment(n, segment_length).astype(np.float64)
        prediction = np.zeros(n, dtype=np.float64)
        for k in range(degree, -1, -1):
            prediction = prediction * pos + form.constituent(f"coeff_{k}").values[seg]
        offsets = _residuals.decode_residuals(form.constituent("offsets"), form.parameters)
        restored = np.rint(prediction).astype(np.int64) + offsets
        return self._restore(Column(restored), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)


class PiecewiseLinear(PiecewisePolynomial):
    """Degree-1 specialisation: "an offset from a diagonal line at some slope"."""

    name = "LINEAR"

    def __init__(self, segment_length: int = 128, offsets_layout: str = "packed"):
        super().__init__(segment_length=segment_length, degree=1,
                         offsets_layout=offsets_layout)

    def parameters(self) -> Dict[str, Any]:
        return {"segment_length": self.segment_length, "offsets_layout": self.offsets_layout}

"""DICT: dictionary encoding over a small value domain.

The paper lists DICT ("using small dictionaries") among the lightweight
schemes in frequent use.  The compressed form, viewed as pure columns, is a
``dictionary`` column of the distinct values (sorted, so order-preserving
predicates can be rewritten onto codes) and a ``codes`` column of per-element
indices into it.  Decompression is a single ``Gather`` — the clearest
possible instance of the paper's point that decompression is made of
query-plan operators (a dictionary decode *is* a join-ish gather).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar import dtypes as _dt
from ..columnar.column import Column
from ..columnar.ops import bitpack as _bitpack
from ..columnar.plan import Plan, PlanBuilder
from ..errors import SchemeParameterError
from .base import (
    KERNEL_AGGREGATE,
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    KERNEL_GROUP_CODES,
    CompressedForm,
    CompressionScheme,
)


class DictionaryEncoding(CompressionScheme):
    """Order-preserving dictionary encoding.

    Parameters
    ----------
    codes_layout:
        ``"packed"`` — bit-pack the codes at ``ceil(log2(|dictionary|))``
        bits (the honest-size layout); ``"aligned"`` — narrowest
        power-of-two dtype.
    max_dictionary_fraction:
        Refuse to "compress" (raise) when the dictionary would exceed this
        fraction of the column length; a dictionary nearly as big as the
        data compresses nothing and the advisor should fall back to another
        scheme.  Set to ``1.0`` to disable the check.
    """

    name = "DICT"

    def __init__(self, codes_layout: str = "packed",
                 max_dictionary_fraction: float = 1.0):
        if codes_layout not in ("packed", "aligned"):
            raise SchemeParameterError(
                f"DICT codes_layout must be 'packed' or 'aligned', got {codes_layout!r}"
            )
        if not 0.0 < max_dictionary_fraction <= 1.0:
            raise SchemeParameterError(
                "max_dictionary_fraction must be in (0, 1], got "
                f"{max_dictionary_fraction}"
            )
        self.codes_layout = codes_layout
        self.max_dictionary_fraction = max_dictionary_fraction

    def parameters(self) -> Dict[str, Any]:
        return {
            "codes_layout": self.codes_layout,
            "max_dictionary_fraction": self.max_dictionary_fraction,
        }

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("dictionary", "codes")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Code-domain execution: the sorted dictionary rewrites ranges onto
        codes, codes are gatherable in place, aggregates reduce over the
        dictionary, and the codes *are* pre-factorised group codes."""
        return frozenset((KERNEL_FILTER_RANGE, KERNEL_GATHER,
                          KERNEL_AGGREGATE, KERNEL_GROUP_CODES))

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Build the sorted dictionary and per-element codes."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column)
        dictionary, codes = np.unique(column.values, return_inverse=True)
        if len(dictionary) > self.max_dictionary_fraction * len(column):
            from ..errors import CompressionError

            raise CompressionError(
                f"DICT dictionary has {len(dictionary)} entries for a column of "
                f"{len(column)} values (limit fraction "
                f"{self.max_dictionary_fraction}); dictionary encoding is not worthwhile"
            )
        width = _dt.bits_for_unsigned(max(len(dictionary) - 1, 0))
        parameters: Dict[str, Any] = {
            "dictionary_size": int(len(dictionary)),
            "code_width": width,
            "codes_layout": self.codes_layout,
            "count": len(column),
        }
        if self.codes_layout == "packed":
            codes_column = _bitpack.pack_bits(Column(codes.astype(np.uint64)),
                                              width=width, name="codes")
        else:
            codes_column = Column(codes.astype(_dt.narrowest_unsigned_dtype(width)),
                                  name="codes")
        return CompressedForm(
            scheme=self.name,
            columns={
                "dictionary": Column(dictionary, name="dictionary"),
                "codes": codes_column,
            },
            parameters=parameters,
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Unpack the codes (if packed) and gather through the dictionary."""
        builder = PlanBuilder(["dictionary", "codes"], description="DICT decompression")
        codes_binding = "codes"
        if form.parameter("codes_layout", self.codes_layout) == "packed":
            builder.step("codes_unpacked", "UnpackBits", packed="codes",
                         width=form.parameter("code_width"),
                         count=form.parameter("count"),
                         dtype=np.int64)
            codes_binding = "codes_unpacked"
        builder.step("decompressed", "Gather", values="dictionary", indices=codes_binding)
        return builder.build("decompressed")

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: ``dictionary[codes]``."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        dictionary = form.constituent("dictionary").values
        if form.parameter("codes_layout", self.codes_layout) == "packed":
            codes = _bitpack.unpack_bits(form.constituent("codes"),
                                         width=form.parameter("code_width"),
                                         count=form.parameter("count"),
                                         dtype=np.int64).values
        else:
            codes = form.constituent("codes").values
        return self._restore(Column(dictionary[codes]), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

    # ------------------------------------------------------------------ #
    # Predicate rewriting onto codes (used by the pushdown engine)
    # ------------------------------------------------------------------ #

    @staticmethod
    def rewrite_range_to_codes(form: CompressedForm, lo, hi) -> Tuple[int, int]:
        """Translate a value-range predicate into a code-range predicate.

        Because the dictionary is sorted, ``lo <= value <= hi`` holds exactly
        when the code lies in ``[searchsorted(lo, 'left'),
        searchsorted(hi, 'right'))`` — so selections can run on the narrow
        codes without decoding (cf. §II-B's "speed up selections").  The
        returned pair is an inclusive-exclusive code range.
        """
        dictionary = form.constituent("dictionary").values
        lo_code = int(np.searchsorted(dictionary, lo, side="left"))
        hi_code = int(np.searchsorted(dictionary, hi, side="right"))
        return lo_code, hi_code

"""Lightweight compression schemes, their composition and decomposition.

The scheme zoo of the paper (and its proposed extensions), each implemented
as a :class:`~repro.schemes.base.CompressionScheme` whose decompression is a
plan of columnar operators:

============  ==============================================================
Name          Scheme
============  ==============================================================
ID            :class:`~repro.schemes.identity.Identity` — no compression
NS            :class:`~repro.schemes.ns.NullSuppression` — bit packing
DELTA         :class:`~repro.schemes.delta.Delta` — adjacent differences
RLE           :class:`~repro.schemes.rle.RunLengthEncoding`
RPE           :class:`~repro.schemes.rpe.RunPositionEncoding`
FOR           :class:`~repro.schemes.for_.FrameOfReference`
STEPFUNCTION  :class:`~repro.schemes.stepfunction.StepFunctionModel` (lossy)
DICT          :class:`~repro.schemes.dict_.DictionaryEncoding`
PFOR          :class:`~repro.schemes.patched.PatchedFrameOfReference`
VARWIDTH      :class:`~repro.schemes.varwidth.VariableWidth`
LINEAR        :class:`~repro.schemes.model_based.PiecewiseLinear`
POLY          :class:`~repro.schemes.model_based.PiecewisePolynomial`
(composite)   :class:`~repro.schemes.composite.Cascade`
============  ==============================================================

The paper's decomposition identities live in
:mod:`repro.schemes.decomposition`; scheme construction by name in
:mod:`repro.schemes.registry`.
"""

from .base import CompressedForm, CompressionScheme, ensure_lossless_roundtrip
from .composite import Cascade
from .delta import Delta
from .dict_ import DictionaryEncoding
from .for_ import FrameOfReference, build_for_decompression_plan
from .identity import Identity
from .model_based import PiecewiseLinear, PiecewisePolynomial
from .ns import NullSuppression
from .patched import PatchedFrameOfReference
from .registry import SCHEME_FACTORIES, available_schemes, make_cascade, make_scheme
from .rle import RunLengthEncoding, build_rle_decompression_plan
from .rpe import RunPositionEncoding, build_rpe_decompression_plan
from .stepfunction import StepFunctionModel, build_stepfunction_evaluation_plan
from .varwidth import VariableWidth
from . import decomposition

__all__ = [
    "CompressedForm",
    "CompressionScheme",
    "ensure_lossless_roundtrip",
    "Cascade",
    "Delta",
    "DictionaryEncoding",
    "FrameOfReference",
    "Identity",
    "NullSuppression",
    "PatchedFrameOfReference",
    "PiecewiseLinear",
    "PiecewisePolynomial",
    "RunLengthEncoding",
    "RunPositionEncoding",
    "StepFunctionModel",
    "VariableWidth",
    "SCHEME_FACTORIES",
    "available_schemes",
    "make_cascade",
    "make_scheme",
    "build_for_decompression_plan",
    "build_rle_decompression_plan",
    "build_rpe_decompression_plan",
    "build_stepfunction_evaluation_plan",
    "decomposition",
]

"""Patched frame-of-reference: the paper's L0-metric model extension.

Section II-B proposes enriching the model+residual view with *patches*: for
the L0 metric — "columns whose data is 'really' a step function, but with
the occasional divergent arbitrary-value element" — the few divergent
elements are stored verbatim (position + value) while everybody else keeps a
narrow offset.  This is the decomposed-scheme reading of PFOR-style patching
(the paper cites Zukowski et al. [1] and the author's own GPU library [8]).

The offset width is chosen from a quantile of the offset distribution rather
than its maximum, so a handful of outliers no longer dictates the width of
every element — that is precisely the effect experiment E6 measures against
plain FOR while sweeping the outlier fraction.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..columnar import dtypes as _dt
from ..columnar.column import Column
from ..columnar.plan import Plan, PlanBuilder
from ..errors import SchemeParameterError
from ..model.fitting import fit_step_function, segment_index
from . import _residuals
from .base import (
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)
from .for_ import build_for_decompression_plan


class PatchedFrameOfReference(CompressionScheme):
    """FOR with exception patches (PFOR-style), as a model + L0 residuals.

    Parameters
    ----------
    segment_length:
        Elements per segment (as in FOR).
    offset_width:
        Fixed offset width in bits.  ``None`` (default) chooses the width
        automatically: by total-cost minimisation (each patch is charged its
        full value plus position) unless *width_quantile* is given, in which
        case the width is the one that fits that fraction of the offsets.
    width_quantile:
        Optional quantile-based width rule (e.g. ``0.99`` → at most 1 % of
        elements become patches).  ``None`` (default) uses the cost-based
        choice.
    offsets_layout:
        ``"packed"`` or ``"aligned"``, as for FOR.
    """

    name = "PFOR"

    #: Bits charged per patch (a full 64-bit value plus a 32-bit position)
    #: when choosing the offset width by total-cost minimisation.
    PATCH_COST_BITS = 64 + 32

    def __init__(self, segment_length: int = 128, offset_width: Optional[int] = None,
                 width_quantile: Optional[float] = None, offsets_layout: str = "packed"):
        if segment_length <= 0:
            raise SchemeParameterError(
                f"PFOR segment_length must be positive, got {segment_length}"
            )
        if offset_width is not None and not 1 <= offset_width <= 64:
            raise SchemeParameterError(f"PFOR offset_width must be in [1, 64], got {offset_width}")
        if width_quantile is not None and not 0.0 < width_quantile <= 1.0:
            raise SchemeParameterError(
                f"PFOR width_quantile must be in (0, 1], got {width_quantile}"
            )
        self.segment_length = segment_length
        self.offset_width = offset_width
        self.width_quantile = width_quantile
        self.offsets_layout = offsets_layout

    def parameters(self) -> Dict[str, Any]:
        return {
            "segment_length": self.segment_length,
            "offset_width": self.offset_width,
            "width_quantile": self.width_quantile,
            "offsets_layout": self.offsets_layout,
        }

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("refs", "offsets", "patch_positions", "patch_values")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Segment-domain execution as for FOR; the (few) patches are
        decided exactly on top of the segment reasoning."""
        return frozenset((KERNEL_FILTER_RANGE, KERNEL_GATHER))

    # ------------------------------------------------------------------ #

    def _choose_width(self, offsets: np.ndarray) -> int:
        if self.offset_width is not None:
            return self.offset_width
        if offsets.size == 0:
            return 1
        if self.width_quantile is not None:
            threshold = int(np.quantile(offsets, self.width_quantile, method="lower"))
            return max(1, _dt.bits_for_unsigned(max(threshold, 0)))
        # Cost-based choice: for every candidate width w, the total cost is
        # w bits per element plus PATCH_COST_BITS per element whose offset
        # does not fit in w bits.  The exception counts for all widths come
        # from one histogram of the offsets' bit lengths.
        max_width = _dt.bits_for_unsigned(int(offsets.max()))
        nonzero = offsets[offsets > 0]
        if nonzero.size:
            bit_lengths = np.floor(np.log2(nonzero.astype(np.float64))).astype(np.int64) + 1
            width_histogram = np.bincount(bit_lengths, minlength=max_width + 1)
        else:
            width_histogram = np.zeros(max_width + 1, dtype=np.int64)
        exceeding = np.cumsum(width_histogram[::-1])[::-1]  # exceeding[w] = count needing > w-1 bits
        best_width, best_cost = max_width, None
        for width in range(1, max_width + 1):
            exceptions = int(exceeding[width + 1]) if width + 1 <= max_width else 0
            cost = offsets.size * width + exceptions * self.PATCH_COST_BITS
            if best_cost is None or cost < best_cost:
                best_width, best_cost = width, cost
        return best_width

    def compress(self, column: Column) -> CompressedForm:
        """Min-referenced FOR with out-of-width offsets stored as patches."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column, segment_length=self.segment_length)

        model = fit_step_function(column, self.segment_length, policy="min")
        refs = np.rint(model.coefficients[:, 0]).astype(np.int64)
        seg = segment_index(len(column), self.segment_length)
        offsets = column.values.astype(np.int64) - refs[seg]

        width = self._choose_width(offsets)
        limit = (1 << width) - 1 if width < 64 else np.iinfo(np.int64).max
        exceptional = offsets > limit
        patch_positions = np.flatnonzero(exceptional).astype(np.int64)
        patch_values = column.values[exceptional]
        clipped = np.where(exceptional, 0, offsets)

        offsets_column, offsets_params = _residuals.encode_residuals(
            clipped, layout=self.offsets_layout, name="offsets"
        )
        # The width actually used for storage is the configured width, not the
        # (possibly narrower) width of the clipped data: decompression and
        # size accounting must agree on it.
        offsets_params["offsets_width"] = min(offsets_params["offsets_width"], width) \
            if self.offsets_layout == "aligned" else offsets_params["offsets_width"]

        parameters: Dict[str, Any] = {
            "segment_length": self.segment_length,
            "num_segments": len(refs),
            "patch_count": int(patch_positions.size),
            "configured_width": width,
        }
        parameters.update(offsets_params)
        return CompressedForm(
            scheme=self.name,
            columns={
                "refs": Column(refs, name="refs"),
                "offsets": offsets_column,
                "patch_positions": Column(patch_positions, name="patch_positions"),
                "patch_values": Column(patch_values, name="patch_values"),
            },
            parameters=parameters,
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Algorithm 2, followed by scattering the patch values over the result."""
        offsets_params = {
            "offsets_layout": form.parameter("offsets_layout", self.offsets_layout),
            "offsets_width": form.parameter("offsets_width", 64),
            "offsets_count": form.parameter("offsets_count", form.original_length),
            "offsets_zigzag": form.parameter("offsets_zigzag", False),
        }
        needs_decode = (offsets_params["offsets_layout"] == "packed"
                        or offsets_params["offsets_zigzag"])
        for_plan = build_for_decompression_plan(
            form.parameter("segment_length", self.segment_length),
            offsets_params if needs_decode else None,
            faithful_to_paper=False,
        )
        builder = PlanBuilder(
            list(for_plan.inputs) + ["patch_positions", "patch_values"],
            description=f"PFOR decompression (FOR + patches, l={form.parameter('segment_length')})",
        )
        for_output = builder.splice(for_plan)
        builder.step("patched", "Scatter", values="patch_values",
                     indices="patch_positions", base=for_output)
        return builder.build("patched")

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel: FOR reconstruction plus an in-place patch scatter."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        refs = form.constituent("refs").values
        offsets = _residuals.decode_residuals(form.constituent("offsets"), form.parameters)
        seg = segment_index(form.original_length,
                            form.parameter("segment_length", self.segment_length))
        restored = refs[seg] + offsets
        positions = form.constituent("patch_positions").values
        if positions.size:
            restored[positions] = form.constituent("patch_values").values
        return self._restore(Column(restored), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

    def patch_fraction(self, form: CompressedForm) -> float:
        """Fraction of elements stored as patches (the achieved L0 distance)."""
        if form.original_length == 0:
            return 0.0
        return form.parameter("patch_count", 0) / form.original_length

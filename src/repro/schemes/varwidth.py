"""Variable-width null suppression: the paper's bit-cost-metric extension.

Section II-B's second metric proposal: measure the distance between a column
and a model by the *total number of bits* needed to write down each
deviation (``d(x, y) = Σ ceil(log2 |x_i - y_i| + 1)``), and encode the
residuals with a per-element variable-width encoding.  (The paper elides the
encoding of the per-element widths "for simplicity of presentation"; a real
scheme must store them, and this implementation does — one byte-width field
per value — so its sizes are honest and the fixed-vs-variable comparison of
experiment E7 is fair.)

The layout is byte-granular (each value occupies 1–8 bytes), which keeps
both compression and decompression fully vectorisable: the per-value byte
offsets are a prefix sum of the widths, and each of the at-most-8 byte lanes
is moved with one gather/scatter.

The decompression is still expressible as a columnar plan thanks to a
dedicated ``VarWidthUnpack`` operator registered by this module — schemes
are allowed to extend the operator algebra, mirroring how real engines grow
their kernel libraries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.ops import bitpack as _bitpack
from ..columnar.ops.registry import DEFAULT_REGISTRY
from ..columnar.plan import Plan, PlanBuilder
from ..errors import OperatorError
from .base import CompressedForm, CompressionScheme


def _bytes_needed(values: np.ndarray) -> np.ndarray:
    """Bytes (1–8) needed for every non-negative value of *values*."""
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    widths = np.ones(values.size, dtype=np.uint8)
    v = values.astype(np.uint64, copy=False)
    for extra_byte in range(1, 8):
        widths[v >= (np.uint64(1) << np.uint64(8 * extra_byte))] = extra_byte + 1
    return widths


def var_width_pack(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pack non-negative integers into (data_bytes, widths) arrays."""
    widths = _bytes_needed(values)
    total = int(widths.sum())
    data = np.zeros(total, dtype=np.uint8)
    if values.size == 0:
        return data, widths
    offsets = np.zeros(values.size, dtype=np.int64)
    np.cumsum(widths[:-1], out=offsets[1:])
    v = values.astype(np.uint64, copy=False)
    for byte_lane in range(8):
        lane_mask = widths > byte_lane
        if not lane_mask.any():
            break
        lane_positions = offsets[lane_mask] + byte_lane
        lane_bytes = (v[lane_mask] >> np.uint64(8 * byte_lane)) & np.uint64(0xFF)
        data[lane_positions] = lane_bytes.astype(np.uint8)
    return data, widths


def var_width_unpack_arrays(data: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`var_width_pack`; returns uint64 values."""
    count = widths.size
    values = np.zeros(count, dtype=np.uint64)
    if count == 0:
        return values
    offsets = np.zeros(count, dtype=np.int64)
    np.cumsum(widths[:-1].astype(np.int64), out=offsets[1:])
    for byte_lane in range(8):
        lane_mask = widths > byte_lane
        if not lane_mask.any():
            break
        lane_positions = offsets[lane_mask] + byte_lane
        values[lane_mask] |= data[lane_positions].astype(np.uint64) << np.uint64(8 * byte_lane)
    return values


def _var_width_unpack_operator(data: Column, widths: Column,
                               name: Optional[str] = None) -> Column:
    """Registered operator wrapper around :func:`var_width_unpack_arrays`."""
    if data.dtype != np.uint8 or widths.dtype != np.uint8:
        raise OperatorError("VarWidthUnpack() requires uint8 data and widths columns")
    return Column(var_width_unpack_arrays(data.values, widths.values), name=name)


if "VarWidthUnpack" not in DEFAULT_REGISTRY:
    DEFAULT_REGISTRY.register(
        "VarWidthUnpack",
        _var_width_unpack_operator,
        arity=2,
        description="unpack a byte-granular variable-width encoded buffer",
        cost_weight=2.0,
        category="bitpack",
    )


class VariableWidth(CompressionScheme):
    """Per-value variable-width (byte-granular) encoding.

    Negative values are handled by zig-zag encoding, so the scheme applies
    directly to DELTA deltas and model residuals — its intended role in the
    paper's re-composition story.
    """

    name = "VARWIDTH"

    def parameters(self) -> Dict[str, Any]:
        return {}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("data", "widths")

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Zig-zag (if needed) and pack every value at its own byte width."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column)
        values = column.values
        zigzag = bool(int(values.min()) < 0)
        transformed = (_bitpack.zigzag_encode(column).values if zigzag
                       else values.astype(np.uint64, copy=False))
        data, widths = var_width_pack(transformed)
        return CompressedForm(
            scheme=self.name,
            columns={
                "data": Column(data, name="data"),
                "widths": Column(widths, name="widths"),
            },
            parameters={"zigzag": zigzag, "count": len(column)},
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """One ``VarWidthUnpack`` step, plus zig-zag decoding when needed."""
        builder = PlanBuilder(["data", "widths"], description="VARWIDTH decompression")
        builder.step("unpacked", "VarWidthUnpack", data="data", widths="widths")
        current = "unpacked"
        if form.parameter("zigzag", False):
            builder.step("decoded", "ZigZagDecode", col=current)
            current = "decoded"
        return builder.build(current)

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct kernel path."""
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        values = var_width_unpack_arrays(form.constituent("data").values,
                                         form.constituent("widths").values)
        if form.parameter("zigzag", False):
            values = _bitpack.zigzag_decode(Column(values)).values
        else:
            values = values.astype(np.int64)
        return self._restore(Column(values), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        result = super().decompress(form)
        return result

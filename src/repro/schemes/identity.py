"""The identity "scheme" (ID).

The paper introduces ID — *"the 'compression scheme' of not applying any
compression"* — because it is the unit of scheme composition: the identity
``RLE ≡ (ID for values, DELTA for run_positions) ∘ RPE`` needs a name for
"leave this constituent alone".  Having ID be a real scheme (rather than a
special case) keeps the composition algebra uniform.
"""

from __future__ import annotations

from typing import Tuple

from ..columnar.column import Column
from ..columnar.plan import Plan, PlanBuilder
from .base import (
    KERNEL_AGGREGATE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)


class Identity(CompressionScheme):
    """Store the column as-is; decompression is a no-op (an empty plan)."""

    name = "ID"
    #: The trivial plan never varies.
    plan_depends_on_form = False

    def compress(self, column: Column) -> CompressedForm:
        """Wrap *column* unchanged as the single constituent ``"values"``."""
        return CompressedForm(
            scheme=self.name,
            columns={"values": column.rename("values")},
            parameters={},
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """A zero-step plan that returns the stored values."""
        builder = PlanBuilder(["values"], description="ID decompression (no-op)")
        return builder.build("values")

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Return the stored values directly."""
        self._check_form(form)
        return self._restore(form.constituent("values"), form)

    def validate(self, column: Column) -> None:
        """ID accepts any column, including floats."""

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("values",)

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """The stored values *are* the data: gathers and aggregates run on
        them directly (keeping the composition algebra's unit uniform).
        ``KERNEL_FILTER_RANGE`` is deliberately not advertised — "pushing
        down" onto uncompressed values is just the decompress-and-compare
        path, and claiming it would distort the pushdown statistics.
        """
        return frozenset((KERNEL_GATHER, KERNEL_AGGREGATE))

"""Null suppression (NS): discard redundant high-order bits.

NS is the paper's "discarding redundant bits" scheme: values that never need
more than ``w`` bits are stored in exactly ``w`` bits each.  Two physical
layouts are provided:

* ``mode="packed"`` (default) — true bit packing into a ``uint8`` buffer via
  the ``PackBits``/``UnpackBits`` operators; compressed size is honest to the
  bit (rounded up to whole bytes per column).
* ``mode="aligned"`` — round the width up to the next power-of-two physical
  dtype (8/16/32/64 bits); decompression is a cast, which is how many
  engines trade a little space for alignment.

Signed data is handled by zig-zag encoding before packing (``signed="zigzag"``)
or by biasing with the column minimum (``signed="bias"``, which is really a
degenerate single-segment FOR and is provided to make that relationship easy
to demonstrate).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..columnar import dtypes as _dt
from ..columnar.column import Column
from ..columnar.ops import bitpack as _bitpack
from ..columnar.plan import Plan, PlanBuilder
from ..errors import CompressionError, SchemeParameterError
from .base import (
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)


class NullSuppression(CompressionScheme):
    """Fixed-width null suppression (bit packing).

    Parameters
    ----------
    width:
        Bits per value.  ``None`` (default) chooses the narrowest width that
        fits the data being compressed.
    mode:
        ``"packed"`` for bit-level packing, ``"aligned"`` for narrowest
        power-of-two dtype.
    signed:
        How to handle negative values: ``"zigzag"`` (default), ``"bias"``
        (subtract the minimum), or ``"reject"`` (raise on negative data —
        the behaviour expected when NS is used as the residual encoder of a
        min-referenced FOR, whose offsets are non-negative by construction).
    """

    name = "NS"

    def __init__(self, width: Optional[int] = None, mode: str = "packed",
                 signed: str = "zigzag"):
        if mode not in ("packed", "aligned"):
            raise SchemeParameterError(f"NS mode must be 'packed' or 'aligned', got {mode!r}")
        if signed not in ("zigzag", "bias", "reject"):
            raise SchemeParameterError(
                f"NS signed handling must be 'zigzag', 'bias' or 'reject', got {signed!r}"
            )
        if width is not None and not 1 <= width <= 64:
            raise SchemeParameterError(f"NS width must be in [1, 64], got {width}")
        self.width = width
        self.mode = mode
        self.signed = signed

    # ------------------------------------------------------------------ #

    def parameters(self) -> Dict[str, Any]:
        return {"width": self.width, "mode": self.mode, "signed": self.signed}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("packed",) if self.mode == "packed" else ("values",)

    def validate(self, column: Column) -> None:
        super().validate(column)
        if self.signed == "reject" and len(column) and int(column.values.min()) < 0:
            raise CompressionError("NS(signed='reject') cannot compress negative values")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Stored-domain execution on the packed words.

        The ``none`` and ``bias`` transforms are order-preserving shifts, so
        range constants translate into the stored unsigned domain and the
        comparison runs word-parallel on the packed buffer
        (:func:`repro.columnar.ops.bitpack.packed_compare_range`).  Zig-zag
        interleaves signs and is *not* order-preserving: those forms keep
        only the positional gather.
        """
        capabilities = {KERNEL_GATHER}
        if form.parameter("transform", "none") != "zigzag":
            capabilities.add(KERNEL_FILTER_RANGE)
        return frozenset(capabilities)

    # ------------------------------------------------------------------ #
    # Compression
    # ------------------------------------------------------------------ #

    def _transform(self, column: Column) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Map the data to non-negative integers, returning (array, parameters)."""
        values = column.values
        params: Dict[str, Any] = {"transform": "none", "bias": 0}
        if len(values) == 0 or int(values.min()) >= 0:
            return values.astype(np.uint64, copy=False), params
        if self.signed == "reject":
            raise CompressionError("NS(signed='reject') cannot compress negative values")
        if self.signed == "zigzag":
            params["transform"] = "zigzag"
            return _bitpack.zigzag_encode(column).values, params
        bias = int(values.min())
        params["transform"] = "bias"
        params["bias"] = bias
        return (values.astype(np.int64) - bias).astype(np.uint64), params

    def compress(self, column: Column) -> CompressedForm:
        """Pack *column* at the configured (or inferred) width."""
        self.validate(column)
        transformed, transform_params = self._transform(column)
        count = len(column)
        if count == 0:
            width = self.width or 1
        else:
            needed = _dt.bits_needed_unsigned(transformed)
            width = self.width if self.width is not None else needed
            if needed > width:
                raise CompressionError(
                    f"NS width {width} is too narrow: data needs {needed} bits"
                )

        parameters = {"width": width, "count": count, "mode": self.mode}
        parameters.update(transform_params)

        if self.mode == "aligned":
            aligned = _dt.narrowest_unsigned_dtype(width)
            stored = Column(transformed.astype(aligned), name="values")
            return CompressedForm(
                scheme=self.name,
                columns={"values": stored},
                parameters=parameters,
                original_length=count,
                original_dtype=column.dtype,
            )

        packed = _bitpack.pack_bits(Column(transformed), width=width, name="packed") \
            if count else Column(np.empty(0, dtype=np.uint8), name="packed")
        return CompressedForm(
            scheme=self.name,
            columns={"packed": packed},
            parameters=parameters,
            original_length=count,
            original_dtype=column.dtype,
        )

    # ------------------------------------------------------------------ #
    # Decompression
    # ------------------------------------------------------------------ #

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """Unpack (or cast), then undo the signedness transform."""
        width = form.parameter("width")
        count = form.parameter("count")
        transform = form.parameter("transform", "none")

        if form.parameter("mode", self.mode) == "aligned":
            builder = PlanBuilder(["values"], description="NS decompression (aligned)")
            current = "values"
        else:
            builder = PlanBuilder(["packed"], description="NS decompression (bit-unpack)")
            # Unpack into int64 when the width allows, so subsequent signed
            # arithmetic (bias re-addition) stays in the integer domain.
            unpack_dtype = np.int64 if width < 64 else np.uint64
            builder.step("unpacked", "UnpackBits", packed="packed", width=width,
                         count=count, dtype=unpack_dtype)
            current = "unpacked"

        if transform == "zigzag":
            builder.step("decoded", "ZigZagDecode", col=current)
            current = "decoded"
        elif transform == "bias":
            builder.step("biased", "Elementwise", op="+", left=current,
                         right=int(form.parameter("bias", 0)))
            current = "biased"
        return builder.build(current)

    def decompress_fused(self, form: CompressedForm) -> Column:
        """Direct NumPy unpack without going through the plan machinery."""
        self._check_form(form)
        width = form.parameter("width")
        count = form.parameter("count")
        if form.parameter("mode", self.mode) == "aligned":
            values = form.constituent("values").values.astype(np.uint64)
        else:
            values = _bitpack.unpack_bits(
                form.constituent("packed"), width=width, count=count
            ).values
        transform = form.parameter("transform", "none")
        if transform == "zigzag":
            values = _bitpack.zigzag_decode(Column(values)).values
        elif transform == "bias":
            values = values.astype(np.int64) + int(form.parameter("bias", 0))
        return self._restore(Column(values), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        compiled = self.compiled_decompression_plan(form)
        result = compiled.run(self.plan_inputs(form))
        if len(result) == 0 and form.original_length == 0:
            result = Column.empty(form.original_dtype)
        # Unsigned intermediate values must be reinterpreted as signed before
        # the final cast when the original dtype is signed but no transform
        # was applied (non-negative signed data packs directly).
        if np.issubdtype(np.dtype(form.original_dtype), np.signedinteger) \
                and np.issubdtype(result.dtype, np.unsignedinteger):
            result = result.astype(np.int64)
        return self._restore(result, form)

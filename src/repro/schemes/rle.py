"""RLE: run-length encoding, with decompression as the paper's Algorithm 1.

A column with long runs of identical values is stored as two corresponding
columns — ``values`` (one entry per run) and ``lengths`` — whose common
length is the number of runs.  Decompression, expressed in columnar
operators, is Algorithm 1 of the paper:

1.  ``run_positions   ← PrefixSum(lengths)``
2.  ``n               ← run_positions[-1]``
3.  ``run_positions'  ← PopBack(run_positions)``
4.  ``ones            ← Constant(1, |run_positions'|)``
5.  ``zeros           ← Constant(0, n)``
6.  ``pos_delta       ← Scatter(ones, run_positions')``
7.  ``positions       ← PrefixSum(pos_delta)``
8.  ``return Gather(values, positions)``

(The paper's listing contains two obvious typos — it writes ``Constant(1, n)``
for the zero column and ``PrefixSum(|ones|)`` in Algorithm 2; the plan below
implements the evidently intended operations.)

The fused baseline (:meth:`RunLengthEncoding.decompress_fused`) is a single
``numpy.repeat``, which experiment E2 compares against the columnar plan.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar.column import Column
from ..columnar.ops import runs as _runs
from ..columnar.plan import LengthOf, Plan, PlanBuilder, ScalarAt
from ..errors import DecompressionError
from .base import (
    KERNEL_AGGREGATE,
    KERNEL_FILTER_RANGE,
    KERNEL_GATHER,
    CompressedForm,
    CompressionScheme,
)


def build_rle_decompression_plan() -> Plan:
    """Algorithm 1 of the paper as a reusable, data-independent plan."""
    builder = PlanBuilder(["lengths", "values"],
                          description="RLE decompression (Algorithm 1)")
    builder.step("run_positions", "PrefixSum", col="lengths")
    builder.step("run_positions_trimmed", "PopBack", col="run_positions")
    builder.step("ones", "Ones", length=LengthOf("run_positions_trimmed"))
    builder.step("zeros", "Zeros", length=ScalarAt("run_positions", -1))
    builder.step("pos_delta", "Scatter", values="ones",
                 indices="run_positions_trimmed", base="zeros")
    builder.step("positions", "PrefixSum", col="pos_delta")
    builder.step("decompressed", "Gather", values="values", indices="positions")
    return builder.build("decompressed")


class RunLengthEncoding(CompressionScheme):
    """Classic RLE over maximal runs of equal values.

    Parameters
    ----------
    narrow_lengths:
        Store run lengths in the narrowest unsigned physical dtype (default
        true); the values column always keeps the original dtype.
    """

    name = "RLE"
    #: Algorithm 1 is one fixed operator sequence for every form.
    plan_depends_on_form = False

    def __init__(self, narrow_lengths: bool = True):
        self.narrow_lengths = narrow_lengths

    def parameters(self) -> Dict[str, Any]:
        return {"narrow_lengths": self.narrow_lengths}

    def expected_constituents(self) -> Tuple[str, ...]:
        return ("values", "lengths")

    def kernel_capabilities(self, form: CompressedForm) -> frozenset:
        """Run-domain execution: predicates, gathers and aggregates run on
        the (short) per-run constituents (experiment E10)."""
        return frozenset((KERNEL_FILTER_RANGE, KERNEL_GATHER, KERNEL_AGGREGATE))

    # ------------------------------------------------------------------ #

    def compress(self, column: Column) -> CompressedForm:
        """Split *column* into per-run ``values`` and ``lengths`` columns."""
        self.validate(column)
        if len(column) == 0:
            return self._empty_form(column)
        values = _runs.run_values(column, name="values")
        lengths = _runs.run_lengths(column, name="lengths")
        if self.narrow_lengths:
            lengths = lengths.astype(lengths.narrowest_dtype())
        return CompressedForm(
            scheme=self.name,
            columns={"values": values, "lengths": lengths},
            parameters={"num_runs": len(values)},
            original_length=len(column),
            original_dtype=column.dtype,
        )

    def decompression_plan(self, form: CompressedForm) -> Plan:
        """The paper's Algorithm 1 (independent of the particular form)."""
        return build_rle_decompression_plan()

    def decompress_fused(self, form: CompressedForm) -> Column:
        """The direct kernel: ``numpy.repeat(values, lengths)``."""
        self._check_form(form)
        values = form.constituent("values").values
        lengths = form.constituent("lengths").values
        if len(values) != len(lengths):
            raise DecompressionError(
                f"RLE values and lengths disagree in length: {len(values)} vs {len(lengths)}"
            )
        return self._restore(Column(np.repeat(values, lengths)), form)

    def decompress(self, form: CompressedForm) -> Column:
        self._check_form(form)
        if form.original_length == 0:
            return Column.empty(form.original_dtype)
        return super().decompress(form)

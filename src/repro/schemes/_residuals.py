"""Shared helpers for storing model residuals ("offsets") compactly.

Every model+residual scheme — FOR, patched FOR, piecewise-linear,
piecewise-polynomial — faces the same sub-problem: given an integer residual
column (non-negative for min-referenced models, signed otherwise), store it
narrowly and emit the plan steps that recover it.  This module centralises
that logic so each scheme stays focused on its model.

Residuals can be stored in two layouts:

* ``packed`` — bit-packed at the exact required width (signed residuals are
  zig-zag encoded first); this is the honest-size layout, and it makes the
  "… + NS" in the paper's ``FOR ≡ STEPFUNCTION + NS`` identity literally
  visible as the NS unpack step at the head of the decompression plan;
* ``aligned`` — the narrowest physical power-of-two dtype, which many
  engines prefer for alignment; decompression is a cast.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..columnar import dtypes as _dt
from ..columnar.column import Column
from ..columnar.ops import bitpack as _bitpack
from ..columnar.plan import PlanBuilder
from ..errors import SchemeParameterError


def encode_residuals(residuals: np.ndarray, layout: str = "packed",
                     name: str = "offsets") -> Tuple[Column, Dict[str, Any]]:
    """Encode an integer residual array, returning (column, parameters).

    The returned parameters record everything :func:`add_decode_steps` and
    :func:`decode_residuals` need: the layout, the bit width, the element
    count, and whether zig-zag was applied.
    """
    if layout not in ("packed", "aligned"):
        raise SchemeParameterError(f"residual layout must be 'packed' or 'aligned', got {layout!r}")
    residuals = np.asarray(residuals)
    count = int(residuals.size)
    signed = bool(count and int(residuals.min()) < 0)

    if signed:
        transformed = _bitpack.zigzag_encode(Column(residuals.astype(np.int64))).values
    else:
        transformed = residuals.astype(np.uint64, copy=False)

    width = _dt.bits_needed_unsigned(transformed) if count else 1
    params: Dict[str, Any] = {
        "offsets_layout": layout,
        "offsets_width": width,
        "offsets_count": count,
        "offsets_zigzag": signed,
    }

    if layout == "aligned":
        stored = Column(transformed.astype(_dt.narrowest_unsigned_dtype(width)), name=name)
        return stored, params

    if count == 0:
        return Column(np.empty(0, dtype=np.uint8), name=name), params
    packed = _bitpack.pack_bits(Column(transformed), width=width, name=name)
    return packed, params


def decode_residuals(column: Column, params: Dict[str, Any]) -> np.ndarray:
    """Decode residuals previously encoded by :func:`encode_residuals` (fused path)."""
    layout = params["offsets_layout"]
    count = params["offsets_count"]
    width = params["offsets_width"]
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if layout == "aligned":
        values = column.values.astype(np.uint64)
    else:
        values = _bitpack.unpack_bits(column, width=width, count=count).values
    if params["offsets_zigzag"]:
        return _bitpack.zigzag_decode(Column(values)).values
    return values.astype(np.int64)


def decode_residuals_at(column: Column, params: Dict[str, Any],
                        positions: np.ndarray) -> np.ndarray:
    """Decode only the residuals at *positions* (int64 result).

    The positional counterpart of :func:`decode_residuals`: packed layouts
    extract just the requested values' bits
    (:func:`repro.columnar.ops.bitpack.packed_gather`), aligned layouts
    fancy-index — either way the element-wise arithmetic matches
    :func:`decode_residuals` exactly, so gathering then decoding equals
    decoding then gathering.
    """
    positions = np.asarray(positions)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64)
    if params["offsets_layout"] == "aligned":
        values = column.values[positions].astype(np.uint64)
    else:
        values = _bitpack.packed_gather(column, width=params["offsets_width"],
                                        count=params["offsets_count"],
                                        positions=positions)
    if params["offsets_zigzag"]:
        return _bitpack.zigzag_decode(Column(values)).values
    return values.astype(np.int64)


def add_decode_steps(builder: PlanBuilder, params: Dict[str, Any],
                     input_name: str = "offsets", output_name: str = "offsets_decoded") -> str:
    """Append the residual-decoding steps to *builder*; return the binding name
    of the decoded (signed, int64-ranged) residual column."""
    current = input_name
    if params["offsets_layout"] == "packed":
        # Unpack straight into int64 (when the width allows it) so that the
        # subsequent integer arithmetic stays in the signed domain — mixing
        # uint64 with int64 would silently promote to float64 in NumPy.
        unpack_dtype = np.int64 if params["offsets_width"] < 64 else np.uint64
        builder.step(f"{output_name}_unpacked", "UnpackBits", packed=current,
                     width=params["offsets_width"], count=params["offsets_count"],
                     dtype=unpack_dtype)
        current = f"{output_name}_unpacked"
    if params["offsets_zigzag"]:
        builder.step(output_name, "ZigZagDecode", col=current)
        current = output_name
    return current
